"""Regression gate for the open-loop traffic-scenario benchmark.

Compares a freshly generated ``BENCH_traffic_scenarios.json`` against the
committed baseline and fails (exit 1) when the traffic layer's guarantees
break:

* **reproducibility** — every steady-sweep point's arrival-schedule
  digest must equal the baseline's *exactly*.  The schedule is a pure
  function of (kind, rate, seed, duration); a digest drift means the
  arrival process changed and every committed knee number is stale.
  The in-run regeneration flag must also hold.
* **knee detection** — the fresh sweep must detect a knee (first rate
  held the deadline), the top rate must still blow the deadline (the
  sweep brackets saturation), and the knee must not regress below
  ``baseline x --tolerance``.  The tolerance is sized to absorb one
  grid step of runner noise, not two.
* **accounting** — every point holds ``offered == issued + dropped``
  with zero errors: dropped arrivals are declared, never silent.
* **fairness** — the multi-tenant smoke must shed (it is sized past
  capacity), every tenant must get pages through, and no tenant's shed
  rate may sit further than ``--shed-gap-ceiling`` from the fleet rate.

Usage::

    python benchmarks/check_traffic_scenarios.py BASELINE FRESH [options]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _load(path: str) -> dict:
    return json.loads(pathlib.Path(path).read_text())


def check(baseline: dict, fresh: dict, args) -> list[str]:
    failures: list[str] = []

    base_digests = {
        f"{p['rate']:g}": p["arrival"]["digest"]
        for p in baseline["steady_sweep"]["points"]
    }
    for point in fresh["steady_sweep"]["points"]:
        rate = f"{point['rate']:g}"
        expected = base_digests.get(rate)
        if expected is None:
            failures.append(f"rate {rate}/s not in the committed baseline")
        elif point["arrival"]["digest"] != expected:
            failures.append(
                f"schedule digest drifted at {rate}/s: same seed no "
                f"longer reproduces the committed arrival schedule"
            )
    if not fresh.get("digests_reproduced_in_run", False):
        failures.append(
            "in-run digest regeneration disagreed with the measured sweep"
        )

    for point in fresh["steady_sweep"]["points"]:
        if point["offered"] != point["issued"] + point["dropped"]:
            failures.append(
                f"accounting identity broken at {point['rate']:g}/s: "
                f"offered {point['offered']} != issued {point['issued']} "
                f"+ dropped {point['dropped']}"
            )
        if point["errors"]:
            failures.append(
                f"steady sweep at {point['rate']:g}/s finished with "
                f"{point['errors']} errors"
            )

    knee = fresh["steady_sweep"]["knee_rate_s"]
    baseline_knee = baseline["steady_sweep"]["knee_rate_s"]
    deadline = fresh["steady_sweep"]["deadline_s"]
    if knee is None:
        failures.append("no knee detected: the first rate blew the deadline")
    elif baseline_knee and knee < baseline_knee * args.tolerance:
        failures.append(
            f"knee {knee:.1f}/s regressed below "
            f"{baseline_knee * args.tolerance:.1f}/s (baseline "
            f"{baseline_knee:.1f}/s x tolerance {args.tolerance})"
        )
    top = fresh["steady_sweep"]["points"][-1]
    if top["p99_s"] <= deadline:
        failures.append(
            f"sweep does not bracket saturation: top rate "
            f"{top['rate']:g}/s held the deadline (p99 "
            f"{top['p99_s'] * 1000:.1f} ms <= {deadline * 1000:.0f} ms)"
        )

    flash = fresh["flash_crowd"]
    if flash["arrival"]["hot_count"] <= 0:
        failures.append("flash crowd produced no hot arrivals")
    if flash["errors"]:
        failures.append(
            f"flash crowd finished with {flash['errors']} errors"
        )

    tenants = fresh["multi_tenant"]
    if tenants["fleet_shed_rate"] <= 0:
        failures.append(
            "multi-tenant smoke shed nothing: it is sized past capacity, "
            "so a shed-free run means the overload never happened"
        )
    if tenants["min_pages_served"] <= 0:
        failures.append("a tenant was starved (zero pages served)")
    if tenants["max_shed_rate_gap"] > args.shed_gap_ceiling:
        failures.append(
            f"per-app shed rate gap {tenants['max_shed_rate_gap']:.3f} "
            f"exceeds the fairness ceiling {args.shed_gap_ceiling:.3f}"
        )

    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "baseline", help="committed BENCH_traffic_scenarios.json"
    )
    parser.add_argument("fresh", help="freshly generated result to gate")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.45,
        help="fresh knee must be >= baseline knee x this (default 0.45: "
        "one grid step of runner noise passes, two fail)",
    )
    parser.add_argument(
        "--shed-gap-ceiling",
        type=float,
        default=0.5,
        help="max |per-app shed rate - fleet shed rate| (default 0.5)",
    )
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    fresh = _load(args.fresh)
    failures = check(baseline, fresh, args)

    knee = fresh["steady_sweep"]["knee_rate_s"]
    baseline_knee = baseline["steady_sweep"]["knee_rate_s"]
    print(
        f"knee: fresh {knee if knee is None else f'{knee:.1f}/s'}, "
        f"baseline {baseline_knee:.1f}/s (tolerance {args.tolerance})"
    )
    print(
        f"schedule digests: {len(fresh['steady_sweep']['points'])} points "
        f"checked against the baseline"
    )
    print(
        f"multi-tenant: fleet shed rate "
        f"{fresh['multi_tenant']['fleet_shed_rate']:.3f}, max per-app gap "
        f"{fresh['multi_tenant']['max_shed_rate_gap']:.3f} "
        f"(ceiling {args.shed_gap_ceiling})"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: traffic scenarios within regression bounds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
