"""Component micro-benchmarks (throughput of the building blocks).

Unlike the table/figure benchmarks (which run an experiment once), these
time the hot paths repeatedly, giving honest ops/sec numbers for the SQL
front end, the executor, the crypto, and the invalidation decision — the
costs the simulator's service-time constants abstract.
"""

import random

from repro.analysis.independence import statement_independent
from repro.crypto.cipher import decrypt, encrypt
from repro.sql.formatter import to_sql
from repro.sql.parser import parse
from repro.templates.binding import bind
from repro.workloads import get_application

from benchmarks.conftest import deploy

_SQL = (
    "SELECT i_id, i_title, a_fname, a_lname FROM item, author "
    "WHERE i_a_id = a_id AND i_subject = ? ORDER BY i_title LIMIT 50"
)


def test_micro_parse(benchmark):
    result = benchmark(parse, _SQL)
    assert result.tables


def test_micro_format(benchmark):
    statement = parse(_SQL)
    text = benchmark(to_sql, statement)
    assert text.startswith("SELECT")


def test_micro_bind(benchmark):
    statement = parse(_SQL)
    bound = benchmark(bind, statement, ["history"])
    assert bound.where


def test_micro_execute_point_query(benchmark):
    app = get_application("bookstore")
    instance = app.instantiate(scale=0.2, seed=1)
    query = bind(parse("SELECT i_stock FROM item WHERE i_id = ?"), [7])
    result = benchmark(instance.database.execute, query)
    assert len(result) == 1


def test_micro_execute_join_query(benchmark):
    app = get_application("bookstore")
    instance = app.instantiate(scale=0.2, seed=1)
    query = bind(parse(_SQL), ["history"])
    result = benchmark(instance.database.execute, query)
    assert result.columns


def test_micro_encrypt_decrypt(benchmark):
    key = b"0123456789abcdef0123456789abcdef"
    payload = b"x" * 2000

    def round_trip():
        return decrypt(key, encrypt(key, payload))

    assert benchmark(round_trip) == payload


def test_micro_statement_independence(benchmark):
    app = get_application("bookstore")
    schema = app.registry.schema
    update = bind(
        parse("UPDATE item SET i_stock = ? WHERE i_id = ?"), [10, 5]
    )
    query = bind(parse("SELECT i_stock FROM item WHERE i_id = ?"), [9])
    assert benchmark(statement_independent, schema, update, query)


def test_micro_end_to_end_cached_query(benchmark):
    from repro.dssp import StrategyClass

    node, home, sampler = deploy("bookstore", strategy=StrategyClass.MVIS)
    bound = home.registry.query("getStock").bind([3])
    envelope = home.codec.seal_query(
        bound, home.policy.query_level("getStock")
    )
    node.query(envelope)  # warm the entry

    outcome = benchmark(node.query, envelope)
    assert outcome.cache_hit


def test_micro_invalidation_cost_by_strategy(benchmark, emit):
    """The runtime price of precision: per-update invalidation latency.

    Populates identical caches under each uniform exposure level and times
    one representative update's invalidation pass.  Precision costs CPU at
    the DSSP (per-entry statement/view checks) but saves WAN round trips;
    the simulator's ``dssp_invalidation_s`` constant abstracts exactly this
    number.
    """
    import time

    from repro.dssp import StrategyClass

    timings = {}
    for strategy in (
        StrategyClass.MBS,
        StrategyClass.MTIS,
        StrategyClass.MSIS,
        StrategyClass.MVIS,
    ):
        node, home, sampler = deploy("bookstore", strategy=strategy)
        rng = random.Random(0)
        for _ in range(200):
            for operation in sampler.sample_page(rng):
                if not operation.is_update:
                    level = home.policy.query_level(operation.bound.template.name)
                    node.query(home.codec.seal_query(operation.bound, level))
        entries_before = len(node.cache)
        bound = home.registry.update("setStock").bind([10, 5])
        envelope = home.codec.seal_update(
            bound, home.policy.update_level("setStock")
        )
        node.forward_update(envelope)
        started = time.perf_counter()
        invalidated = node.invalidate_for(envelope)
        elapsed = time.perf_counter() - started
        timings[strategy.name] = (entries_before, invalidated, elapsed)

    lines = [
        f"{'strategy':<8} {'cached views':>13} {'invalidated':>12} "
        f"{'decision time':>14}",
        "-" * 52,
    ]
    for name, (entries, invalidated, elapsed) in timings.items():
        lines.append(
            f"{name:<8} {entries:>13} {invalidated:>12} {elapsed * 1e6:>11.0f} us"
        )
    emit("micro_invalidation_cost", "\n".join(lines))

    def measured():
        return timings

    benchmark.pedantic(measured, rounds=1, iterations=1)
    # Blind wipes everything it sees; precise strategies keep most views.
    assert timings["MBS"][1] == timings["MBS"][0]
    assert timings["MVIS"][1] <= timings["MTIS"][1]


def test_micro_update_with_invalidation(benchmark):
    from repro.dssp import StrategyClass

    node, home, sampler = deploy("bookstore", strategy=StrategyClass.MSIS)
    rng = random.Random(0)
    # Populate a realistic cache to give the engine buckets to scan.
    for _ in range(300):
        for operation in sampler.sample_page(rng):
            if not operation.is_update:
                level = home.policy.query_level(operation.bound.template.name)
                node.query(home.codec.seal_query(operation.bound, level))

    counter = [1000]

    def one_update():
        counter[0] += 1
        bound = home.registry.update("setStock").bind([counter[0] % 400, 5])
        envelope = home.codec.seal_update(
            bound, home.policy.update_level("setStock")
        )
        return node.update(envelope)

    outcome = benchmark(one_update)
    assert outcome.rows_affected >= 0
