"""Component micro-benchmarks (throughput of the building blocks).

Unlike the table/figure benchmarks (which run an experiment once), these
time the hot paths repeatedly, giving honest ops/sec numbers for the SQL
front end, the executor, the crypto, and the invalidation decision — the
costs the simulator's service-time constants abstract.
"""

import random
import time

from repro.analysis.exposure import ExposureLevel
from repro.analysis.independence import statement_independent
from repro.crypto.cipher import decrypt, encrypt
from repro.crypto.envelope import QueryEnvelope, ResultEnvelope
from repro.dssp.cache import ViewCache
from repro.sql.formatter import to_sql
from repro.sql.parser import parse
from repro.templates.binding import bind
from repro.workloads import get_application

from benchmarks.conftest import deploy

_SQL = (
    "SELECT i_id, i_title, a_fname, a_lname FROM item, author "
    "WHERE i_a_id = a_id AND i_subject = ? ORDER BY i_title LIMIT 50"
)


def test_micro_parse(benchmark):
    result = benchmark(parse, _SQL)
    assert result.tables


def test_micro_format(benchmark):
    statement = parse(_SQL)
    text = benchmark(to_sql, statement)
    assert text.startswith("SELECT")


def test_micro_bind(benchmark):
    statement = parse(_SQL)
    bound = benchmark(bind, statement, ["history"])
    assert bound.where


def test_micro_execute_point_query(benchmark):
    app = get_application("bookstore")
    instance = app.instantiate(scale=0.2, seed=1)
    query = bind(parse("SELECT i_stock FROM item WHERE i_id = ?"), [7])
    result = benchmark(instance.database.execute, query)
    assert len(result) == 1


def test_micro_execute_join_query(benchmark):
    app = get_application("bookstore")
    instance = app.instantiate(scale=0.2, seed=1)
    query = bind(parse(_SQL), ["history"])
    result = benchmark(instance.database.execute, query)
    assert result.columns


def test_micro_encrypt_decrypt(benchmark):
    key = b"0123456789abcdef0123456789abcdef"
    payload = b"x" * 2000

    def round_trip():
        return decrypt(key, encrypt(key, payload))

    assert benchmark(round_trip) == payload


def test_micro_statement_independence(benchmark):
    app = get_application("bookstore")
    schema = app.registry.schema
    update = bind(
        parse("UPDATE item SET i_stock = ? WHERE i_id = ?"), [10, 5]
    )
    query = bind(parse("SELECT i_stock FROM item WHERE i_id = ?"), [9])
    assert benchmark(statement_independent, schema, update, query)


def test_micro_end_to_end_cached_query(benchmark):
    from repro.dssp import StrategyClass

    node, home, sampler = deploy("bookstore", strategy=StrategyClass.MVIS)
    bound = home.registry.query("getStock").bind([3])
    envelope = home.codec.seal_query(
        bound, home.policy.query_level("getStock")
    )
    node.query(envelope)  # warm the entry

    outcome = benchmark(node.query, envelope)
    assert outcome.cache_hit


def test_micro_invalidation_cost_by_strategy(benchmark, emit):
    """The runtime price of precision: per-update invalidation latency.

    Populates identical caches under each uniform exposure level and times
    one representative update's invalidation pass.  Precision costs CPU at
    the DSSP (per-entry statement/view checks) but saves WAN round trips;
    the simulator's ``dssp_invalidation_s`` constant abstracts exactly this
    number.
    """
    import time

    from repro.dssp import StrategyClass

    timings = {}
    for strategy in (
        StrategyClass.MBS,
        StrategyClass.MTIS,
        StrategyClass.MSIS,
        StrategyClass.MVIS,
    ):
        node, home, sampler = deploy("bookstore", strategy=strategy)
        rng = random.Random(0)
        for _ in range(200):
            for operation in sampler.sample_page(rng):
                if not operation.is_update:
                    level = home.policy.query_level(operation.bound.template.name)
                    node.query(home.codec.seal_query(operation.bound, level))
        entries_before = len(node.cache)
        bound = home.registry.update("setStock").bind([10, 5])
        envelope = home.codec.seal_update(
            bound, home.policy.update_level("setStock")
        )
        node.forward_update(envelope)
        started = time.perf_counter()
        invalidated = node.invalidate_for(envelope)
        elapsed = time.perf_counter() - started
        timings[strategy.name] = (entries_before, invalidated, elapsed)

    lines = [
        f"{'strategy':<8} {'cached views':>13} {'invalidated':>12} "
        f"{'decision time':>14}",
        "-" * 52,
    ]
    for name, (entries, invalidated, elapsed) in timings.items():
        lines.append(
            f"{name:<8} {entries:>13} {invalidated:>12} {elapsed * 1e6:>11.0f} us"
        )
    emit("micro_invalidation_cost", "\n".join(lines))

    def measured():
        return timings

    benchmark.pedantic(measured, rounds=1, iterations=1)
    # Blind wipes everything it sees; precise strategies keep most views.
    assert timings["MBS"][1] == timings["MBS"][0]
    assert timings["MVIS"][1] <= timings["MTIS"][1]


class _ScanEvictionCache(ViewCache):
    """The seed's eviction algorithm — a full ``min()`` scan of a recency
    clock per victim — kept as the before/after reference for the O(1)
    :class:`ViewCache` LRU."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity=capacity)
        self._recency: dict[str, int] = {}
        self._ticks = 0

    def get(self, key):
        entry = super().get(key)
        if entry is not None:
            self._ticks += 1
            self._recency[key] = self._ticks
        return entry

    def put(self, envelope, result):
        entry = super().put(envelope, result)
        self._ticks += 1
        self._recency[entry.key] = self._ticks
        return entry

    def invalidate(self, key):
        existed = super().invalidate(key)
        if existed:
            self._recency.pop(key, None)
        return existed

    def _maybe_evict(self):
        if self._capacity is None:
            return
        while len(self._entries) > self._capacity:
            victim = min(self._recency, key=self._recency.get)
            self.invalidate(victim)


def _synthetic_query(index: int) -> tuple[QueryEnvelope, ResultEnvelope]:
    envelope = QueryEnvelope(
        app_id="bench",
        level=ExposureLevel.STMT,
        cache_key=f"bench|stmt|SELECT q{index}",
        template_name=f"Q{index % 16}",
    )
    return envelope, ResultEnvelope(app_id="bench", ciphertext=b"sealed")


def _time_evictions(cache, capacity: int, inserts: int) -> float:
    """Mean seconds per capacity-triggered eviction at a full cache."""
    for i in range(capacity):
        cache.put(*_synthetic_query(i))
    started = time.perf_counter()
    for i in range(capacity, capacity + inserts):
        cache.put(*_synthetic_query(i))
    return (time.perf_counter() - started) / inserts


def test_micro_lru_eviction_at_capacity(benchmark, emit):
    """Eviction cost at a 10k-entry cache: O(1) LRU vs the min()-scan.

    Every insert beyond capacity evicts one victim.  The seed picked it by
    scanning the whole recency map (O(n) per eviction — at 10k entries the
    scan dominates the insert); the OrderedDict LRU pops it in O(1).
    """
    capacity = 10_000
    scan_s = _time_evictions(_ScanEvictionCache(capacity), capacity, 300)
    o1_s = _time_evictions(ViewCache(capacity=capacity), capacity, 3000)
    speedup = scan_s / o1_s

    lines = [
        f"{'eviction policy':<22} {'per-eviction':>13}",
        "-" * 37,
        f"{'min()-scan (seed)':<22} {scan_s * 1e6:>10.1f} us",
        f"{'OrderedDict (O(1))':<22} {o1_s * 1e6:>10.1f} us",
        "",
        f"speedup: {speedup:.0f}x at capacity={capacity}",
    ]
    emit("micro_lru_eviction", "\n".join(lines))

    def measured():
        return scan_s, o1_s

    benchmark.pedantic(measured, rounds=1, iterations=1)
    assert speedup >= 5.0, (scan_s, o1_s)


def test_micro_dssp_timing_counters(benchmark, emit):
    """The DsspStats wall-clock counters cover the three DSSP hot paths."""
    from repro.dssp import StrategyClass

    node, home, sampler = deploy("bookstore", strategy=StrategyClass.MSIS)
    rng = random.Random(0)

    def run():
        node.cold_start()
        for _ in range(150):
            for operation in sampler.sample_page(rng):
                if operation.is_update:
                    level = home.policy.update_level(operation.bound.template.name)
                    node.update(home.codec.seal_update(operation.bound, level))
                else:
                    level = home.policy.query_level(operation.bound.template.name)
                    node.query(home.codec.seal_query(operation.bound, level))
        # A repeated identical update re-checks the entries that survived
        # its first pass — exactly the case the decision memo serves.
        bound = home.registry.update("setStock").bind([10, 5])
        envelope = home.codec.seal_update(
            bound, home.policy.update_level("setStock")
        )
        node.update(envelope)
        node.update(envelope)
        return node.stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"lookups             {stats.lookups:>8}   {stats.lookup_time_s * 1e3:>9.2f} ms",
        f"invalidation passes {stats.updates:>8}   {stats.invalidation_time_s * 1e3:>9.2f} ms",
        f"evictions           {stats.evictions:>8}   {stats.eviction_time_s * 1e3:>9.2f} ms",
        f"decision memo rate  {stats.decision_memo_rate:>8.3f}",
    ]
    emit("micro_dssp_timing_counters", "\n".join(lines))
    assert stats.lookup_time_s > 0.0
    assert stats.invalidation_time_s > 0.0
    # Repeated identical (update, entry) pairs hit the memo.
    assert stats.decision_memo_hits > 0


def test_micro_update_with_invalidation(benchmark):
    from repro.dssp import StrategyClass

    node, home, sampler = deploy("bookstore", strategy=StrategyClass.MSIS)
    rng = random.Random(0)
    # Populate a realistic cache to give the engine buckets to scan.
    for _ in range(300):
        for operation in sampler.sample_page(rng):
            if not operation.is_update:
                level = home.policy.query_level(operation.bound.template.name)
                node.query(home.codec.seal_query(operation.bound, level))

    counter = [1000]

    def one_update():
        counter[0] += 1
        bound = home.registry.update("setStock").bind([counter[0] % 400, 5])
        envelope = home.codec.seal_update(
            bound, home.policy.update_level("setStock")
        )
        return node.update(envelope)

    outcome = benchmark(one_update)
    assert outcome.rows_affected >= 0
