"""Pipelined transport + batched fan-out: the throughput benchmark.

Measures the two halves of the concurrent hot path on a live localhost
topology (one home server, two DSSP nodes, asyncio sockets end to end):

* **Request pipelining** — the same recorded trace replayed serially
  (one request in flight per connection) and with ``pipeline=8``.  A
  fixed per-request service latency is injected at the DSSP servers via
  the deterministic fault hook, standing in for the WAN/database round
  trip the paper's deployment pays (Section 7): localhost RTTs are so
  small that raw socket replay is CPU-bound, which would measure the
  interpreter, not the protocol.  Under injected latency the serial
  client pays the stall once per request; the pipelined client overlaps
  up to ``window`` stalls per connection, which is exactly the claim.
* **Invalidation batch coalescing** — a burst of updates with distinct
  target rows fanned out to a subscriber once with batching (coalesce
  dwell enabled) and once with singleton frames, counting frames on the
  wire per delivered invalidation from the home's own push metrics.

The JSON artifact (``results/BENCH_net_pipeline.json``) is committed and
checked in CI by ``benchmarks/check_net_pipeline.py``: the pipelined
speedup and the batched frame ratio are regression-gated against this
baseline, so a transport change that quietly serializes the window or
un-batches the stream turns the build red.
"""

from __future__ import annotations

import asyncio
import json

from repro.analysis.exposure import ExposurePolicy
from repro.crypto import Keyring
from repro.crypto.envelope import EnvelopeCodec
from repro.dssp import DsspNode, HomeServer
from repro.dssp.invalidation import StrategyClass
from repro.net import DsspNetServer, HomeNetServer, WireClient, run_load
from repro.workloads import get_application
from repro.workloads.trace import Trace, record_trace

from benchmarks.conftest import BENCH_SCALE, once

APP = "bookstore"
PAGES = 200  # <= trace length: avoids INSERT-replay collisions on wrap
CLIENTS = 4
NODES = 2
PIPELINE = 8
#: Injected per-request service latency at each DSSP server (seconds).
#: Large against localhost RTT, small against the run: the workload is
#: latency-bound like the paper's, not interpreter-bound.
SERVICE_LATENCY_S = 0.02

#: Fan-out measurement: one burst of updates, each hitting a different
#: item row, so every update produces a distinct invalidation.
FANOUT_BURST = 24
FANOUT_COALESCE_S = 0.05

MODES = (
    # name, pipeline window (None = serial transport), batched fan-out
    ("serial", None, False),
    ("pipelined", PIPELINE, False),
    ("pipelined_batched", PIPELINE, True),
)


async def _service_latency(frame, request_id):
    await asyncio.sleep(SERVICE_LATENCY_S)


async def _measure_mode(spec, trace_json: str, pipeline, batched):
    policy = ExposurePolicy.uniform(
        spec.registry, StrategyClass.MVIS.exposure_level
    )
    keyring = Keyring(APP, b"b" * 32)
    # Fresh data per mode: the trace's updates mutate the master copy.
    instance = spec.instantiate(scale=BENCH_SCALE, seed=1)
    home = HomeServer(APP, instance.database, spec.registry, policy, keyring)
    home_net = HomeNetServer(home, batch_pushes=batched)
    await home_net.start()
    servers, clients = [], []
    try:
        for index in range(NODES):
            server = DsspNetServer(
                DsspNode(),
                node_id=f"dssp-{index}",
                fault_hook=_service_latency,
                batch_invalidations=batched,
            )
            server.register_application(APP, spec.registry, home_net.address)
            await server.start()
            servers.append(server)
            clients.append(WireClient(*server.address, pipeline=pipeline))
        trace = Trace.from_json(trace_json).bind(spec.registry)
        report = await run_load(
            clients,
            EnvelopeCodec(keyring),
            policy,
            trace,
            clients=CLIENTS,
            pages=PAGES,
            pipeline=pipeline or 1,
        )
        invalidations = sum(
            server.node.stats.invalidations for server in servers
        )
        return report.with_invalidations(invalidations)
    finally:
        for client in clients:
            await client.aclose()
        for server in servers:
            await server.stop()
        await home_net.stop()


async def _measure_fanout(spec, *, batched: bool) -> dict:
    """Frames on the wire per delivered invalidation, one subscriber.

    A burst of ``setStock`` updates — each against a different item row —
    lands on the home back to back.  With coalescing the dwell drains the
    burst into few INVALIDATE_BATCH frames; without it every invalidation
    rides its own frame (ratio exactly 1.0).
    """
    policy = ExposurePolicy.uniform(
        spec.registry, StrategyClass.MVIS.exposure_level
    )
    keyring = Keyring(APP, b"b" * 32)
    instance = spec.instantiate(scale=BENCH_SCALE, seed=1)
    home = HomeServer(APP, instance.database, spec.registry, policy, keyring)
    home_net = HomeNetServer(
        home,
        batch_pushes=batched,
        push_coalesce_s=FANOUT_COALESCE_S if batched else 0.0,
    )
    await home_net.start()
    node_server = DsspNetServer(
        DsspNode(), node_id="dssp-0", batch_invalidations=batched
    )
    node_server.register_application(APP, spec.registry, home_net.address)
    await node_server.start()
    updater = WireClient(*home_net.address)
    try:
        deadline = asyncio.get_running_loop().time() + 5.0
        while home_net.subscriber_count < 1:
            if asyncio.get_running_loop().time() > deadline:
                raise AssertionError("subscriber never connected")
            await asyncio.sleep(0.01)
        template = spec.registry.update("setStock")
        for index in range(FANOUT_BURST):
            bound = template.bind([100 + index, index + 1])
            sealed = home.codec.seal_update(
                bound, policy.update_level("setStock")
            )
            await updater.update(sealed, request_id=f"stock-{index}")
        while node_server.stream_pushes_applied < FANOUT_BURST:
            if asyncio.get_running_loop().time() > deadline:
                raise AssertionError("burst never fully delivered")
            await asyncio.sleep(0.01)
        counters = home_net.metrics.snapshot()["counters"]
        frames = int(counters["home.push_frames"])
        delivered = int(counters["home.pushes_sent"])
        return {
            "invalidations": delivered,
            "frames": frames,
            "frames_per_invalidation": frames / delivered,
        }
    finally:
        await updater.aclose()
        await node_server.stop()
        await home_net.stop()


def _experiment() -> dict:
    spec = get_application(APP)
    recorder = spec.instantiate(scale=BENCH_SCALE, seed=1)
    trace_json = record_trace(
        recorder.sampler, PAGES, seed=1, application=APP
    ).to_json()

    async def run_all():
        modes = {}
        for name, pipeline, batched in MODES:
            modes[name] = await _measure_mode(
                spec, trace_json, pipeline, batched
            )
        fanout = {
            "batched": await _measure_fanout(spec, batched=True),
            "unbatched": await _measure_fanout(spec, batched=False),
        }
        return modes, fanout

    modes, fanout = asyncio.run(run_all())
    serial = modes["serial"].throughput_pages_s
    return {
        "topology": {
            "application": APP,
            "scale": BENCH_SCALE,
            "pages": PAGES,
            "clients": CLIENTS,
            "nodes": NODES,
            "pipeline": PIPELINE,
            "service_latency_ms": SERVICE_LATENCY_S * 1000,
        },
        "modes": {
            name: {
                "pipeline": report.pipeline,
                "batched": name.endswith("batched"),
                "throughput_pages_s": report.throughput_pages_s,
                "p50_ms": report.p50_s * 1000,
                "p90_ms": report.p90_s * 1000,
                "p99_ms": report.p99_s * 1000,
                "hit_rate": report.hit_rate,
                "errors": report.errors,
                "invalidations": report.invalidations,
            }
            for name, report in modes.items()
        },
        "speedup_pipelined_vs_serial": (
            modes["pipelined"].throughput_pages_s / serial
        ),
        "speedup_batched_vs_serial": (
            modes["pipelined_batched"].throughput_pages_s / serial
        ),
        "fanout": fanout,
    }


def _render(result: dict) -> str:
    lines = [
        f"{'mode':<18} {'pipe':>4} {'thr/s':>8} {'p50 ms':>8} "
        f"{'p90 ms':>8} {'p99 ms':>8} {'hit rate':>9} {'errors':>7}",
        "-" * 76,
    ]
    for name, mode in result["modes"].items():
        lines.append(
            f"{name:<18} {mode['pipeline']:>4} "
            f"{mode['throughput_pages_s']:>8.1f} {mode['p50_ms']:>8.2f} "
            f"{mode['p90_ms']:>8.2f} {mode['p99_ms']:>8.2f} "
            f"{mode['hit_rate']:>9.3f} {mode['errors']:>7}"
        )
    lines.append("")
    lines.append(
        f"speedup pipelined vs serial: "
        f"{result['speedup_pipelined_vs_serial']:.2f}x"
    )
    for kind in ("batched", "unbatched"):
        fan = result["fanout"][kind]
        lines.append(
            f"fan-out {kind:<9}: {fan['frames']} frames / "
            f"{fan['invalidations']} invalidations = "
            f"{fan['frames_per_invalidation']:.3f} frames/invalidation"
        )
    return "\n".join(lines)


def test_net_pipeline(benchmark, emit, results_dir):
    result = once(benchmark, _experiment)
    emit("net_pipeline", _render(result))
    artifact = results_dir / "BENCH_net_pipeline.json"
    artifact.write_text(json.dumps(result, indent=2) + "\n")

    for mode in result["modes"].values():
        assert mode["errors"] == 0

    # The headline claims, asserted where they are produced: pipelining
    # overlaps the injected service latency for a >= 2x win, and
    # coalescing provably shrinks the invalidation stream's framing.
    assert result["speedup_pipelined_vs_serial"] >= 2.0, result
    batched = result["fanout"]["batched"]["frames_per_invalidation"]
    unbatched = result["fanout"]["unbatched"]["frames_per_invalidation"]
    assert unbatched == 1.0
    assert batched < unbatched, result["fanout"]
