"""Figure 8 cross-validation — the discrete-event simulator agrees.

The Figure 8 sweep uses the analytic queueing model for speed.  This
benchmark validates it against the full discrete-event simulation: at a
population the analytic model places *between* MBS's and MVIS's SLA
ceilings for the bookstore (~350 users), the DES must show MVIS meeting
the 2 s / 90% SLA while MBS violates it — and p90 must order
MVIS ≤ MTIS ≤ MBS.
"""

from repro.dssp import StrategyClass
from repro.simulation import SimulationParams, simulate_users

from benchmarks.conftest import deploy, once

USERS = 350
DES_PARAMS = SimulationParams(duration_s=150.0)

STRATEGIES = (StrategyClass.MVIS, StrategyClass.MTIS, StrategyClass.MBS)


def test_fig8_des_validation(benchmark, emit):
    def experiment():
        results = {}
        for strategy in STRATEGIES:
            node, home, sampler = deploy("bookstore", strategy=strategy)
            report = simulate_users(
                node, home, sampler, USERS, DES_PARAMS, seed=7
            )
            results[strategy] = report
        return results

    results = once(benchmark, experiment)
    lines = [
        f"bookstore, {USERS} users, {DES_PARAMS.duration_s:.0f} virtual s "
        "(discrete-event simulation)",
        f"{'strategy':<8} {'pages':>7} {'p90 (s)':>9} {'hit rate':>9} "
        f"{'home util':>10} {'SLA met':>8}",
        "-" * 56,
    ]
    for strategy, report in results.items():
        lines.append(
            f"{strategy.name:<8} {report.pages_completed:>7} "
            f"{report.p90:>9.3f} {report.dssp.hit_rate:>9.3f} "
            f"{report.home_utilization:>10.2f} "
            f"{str(report.meets_sla(DES_PARAMS)):>8}"
        )
    emit("fig8_des_validation", "\n".join(lines))

    mvis = results[StrategyClass.MVIS]
    mtis = results[StrategyClass.MTIS]
    mbs = results[StrategyClass.MBS]
    # The discriminating population: precise invalidation survives, blind
    # invalidation saturates the home server and blows the SLA.
    assert mvis.meets_sla(DES_PARAMS)
    assert not mbs.meets_sla(DES_PARAMS)
    # p90 ordering mirrors the analytic strategy gradient.
    assert mvis.p90 <= mtis.p90 <= mbs.p90
    # The mechanism is home-server saturation, not the DSSP.
    assert mbs.home_utilization > mvis.home_utilization
    assert mbs.home_utilization > 0.9
