"""Ablation — integrity-constraint refinement (paper Section 4.5) on vs off.

The primary-key and foreign-key rules force A = 0 for additional
update/query template pairs.  This benchmark quantifies their effect on
(a) the Table 7 zero-pair counts and (b) runtime hit rate / scalability
under MTIS, where template-level decisions are all the DSSP has.
"""

from repro.analysis import characterize_application, summarize_characterization
from repro.dssp import StrategyClass
from repro.workloads import APPLICATIONS, get_application

from benchmarks.conftest import once
from benchmarks.sweep import bench_sweep, bench_task


def test_ablation_integrity_constraints(benchmark, emit, sim_params):
    def experiment():
        static = {}
        for name in APPLICATIONS:
            registry = get_application(name).registry
            with_c = summarize_characterization(
                name, characterize_application(registry, True)
            )
            without_c = summarize_characterization(
                name, characterize_application(registry, False)
            )
            static[name] = (with_c.zero, without_c.zero, with_c.total_pairs)

        tasks = [
            bench_task(
                "bookstore",
                strategy=StrategyClass.MTIS,
                use_integrity_constraints=use_constraints,
                tag=use_constraints,
            )
            for use_constraints in (True, False)
        ]
        runtime = {
            cell.tag: (cell.behavior.hit_rate, cell.users)
            for cell in bench_sweep(tasks, params=sim_params)
        }
        return static, runtime

    static, runtime = once(benchmark, experiment)

    lines = [
        f"{'application':<12} {'zero pairs (with)':>18} {'zero pairs (w/o)':>17} "
        f"{'total':>7}",
        "-" * 58,
    ]
    for name, (with_c, without_c, total) in static.items():
        lines.append(f"{name:<12} {with_c:>18} {without_c:>17} {total:>7}")
    lines.append("")
    lines.append("bookstore under MTIS:")
    for flag, (hit_rate, users) in runtime.items():
        label = "with constraints" if flag else "without constraints"
        lines.append(f"  {label:<22} hit rate {hit_rate:.3f}, scalability {users}")
    emit("ablation_integrity_constraints", "\n".join(lines))

    for name, (with_c, without_c, _) in static.items():
        assert with_c >= without_c, name
    # The rules must matter somewhere (the paper's toystore examples are
    # bookstore-shaped: key-selected reads + insert-heavy order flow).
    assert any(w > wo for w, wo, _ in static.values())
    assert runtime[True][0] >= runtime[False][0]  # hit rate
    assert runtime[True][1] >= runtime[False][1]  # scalability
