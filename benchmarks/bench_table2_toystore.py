"""Paper Table 2 — invalidations under the four information regimes.

Seeds the DSSP cache with Q1('toy5'), Q2(5), Q2(7), Q3(1) of the
simple-toystore application, applies update U1(5), and reports which
cached results each regime invalidates.  Expected (paper Table 2)::

    blind    -> all of Q1, Q2, Q3            (4 invalidations)
    template -> all Q1, all Q2               (3)
    stmt     -> all Q1, Q2 if toy_id = 5     (2)
    view     -> Q1/Q2 only if they involve 5 (2 here; 0 for U1(3))
"""

from repro.analysis.exposure import ExposureLevel, ExposurePolicy
from repro.crypto import Keyring
from repro.dssp import DsspNode, HomeServer
from repro.storage.backends import wrap_database
from repro.workloads import simple_toystore_spec

from benchmarks.conftest import once

LEVELS = (
    ExposureLevel.BLIND,
    ExposureLevel.TEMPLATE,
    ExposureLevel.STMT,
    ExposureLevel.VIEW,
)


def _run_regime(
    level: ExposureLevel, update_param: int, backend: str = "memory"
) -> tuple[int, list[str]]:
    spec = simple_toystore_spec()
    instance = spec.instantiate(scale=0.5, seed=7)
    policy = ExposurePolicy.uniform(spec.registry, level)
    # Table 2's invalidation counts are storage-independent; running the
    # regimes over the sqlite backend (--backend sqlite) demonstrates it.
    database = wrap_database(backend, instance.database)
    home = HomeServer(
        "toystore", database, spec.registry, policy, Keyring("toystore")
    )
    node = DsspNode()
    node.register_application(home)
    seeds = [
        spec.registry.query("Q1").bind(["toy5"]),
        spec.registry.query("Q2").bind([5]),
        spec.registry.query("Q2").bind([7]),
        spec.registry.query("Q3").bind([1]),
    ]
    for bound in seeds:
        node.query(
            home.codec.seal_query(bound, policy.query_level(bound.template.name))
        )
    update = spec.registry.update("U1").bind([update_param])
    outcome = node.update(
        home.codec.seal_update(update, policy.update_level("U1"))
    )
    survivors = sorted(
        entry.template_name or "<blind>"
        for entry in node.cache.entries_for_app("toystore")
    )
    return outcome.invalidated, survivors


def test_table2_invalidation_regimes(benchmark, emit, bench_backend):
    def experiment():
        lines = [
            f"{'regime':<10} {'invalidated':>12}  surviving cached views"
            f"  [backend={bench_backend}]",
            "-" * 60,
        ]
        counts = {}
        for level in LEVELS:
            invalidated, survivors = _run_regime(
                level, update_param=5, backend=bench_backend
            )
            counts[level] = invalidated
            lines.append(
                f"{level.label:<10} {invalidated:>12}  {', '.join(survivors) or '-'}"
            )
        invalidated, survivors = _run_regime(
            ExposureLevel.VIEW, update_param=3, backend=bench_backend
        )
        lines.append(
            f"{'view U1(3)':<10} {invalidated:>12}  {', '.join(survivors) or '-'}"
        )
        return counts, "\n".join(lines)

    counts, table = once(benchmark, experiment)
    emit("table2_invalidation_regimes", table)

    assert counts[ExposureLevel.BLIND] == 4
    assert counts[ExposureLevel.TEMPLATE] == 3
    assert counts[ExposureLevel.STMT] == 2
    assert counts[ExposureLevel.VIEW] <= 2
