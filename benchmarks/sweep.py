"""Benchmark-harness façade over the parallel sweep runner.

The figure/ablation benchmarks build grids of :class:`SweepTask` cells and
hand them to :func:`bench_sweep`, which applies the harness knobs
(``REPRO_BENCH_SCALE``, ``REPRO_BENCH_PAGES``, ``REPRO_SWEEP_WORKERS``)
and fans the cells out across worker processes — the grids are
embarrassingly parallel, so wall clock drops roughly linearly in the CPU
count.  On a single-CPU host the runner degrades to a serial loop with
identical results.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.simulation import SimulationParams, SweepResult, SweepTask
from repro.simulation.sweep import run_sweep

from benchmarks.conftest import BENCH_PAGES, BENCH_SCALE

__all__ = ["bench_sweep", "bench_task"]


def bench_task(app_name: str, **kwargs) -> SweepTask:
    """A sweep cell with the harness's default pages/scale/seed."""
    kwargs.setdefault("pages", BENCH_PAGES)
    kwargs.setdefault("scale", BENCH_SCALE)
    kwargs.setdefault("seed", 5)
    return SweepTask(app_name=app_name, **kwargs)


def bench_sweep(
    tasks: Sequence[SweepTask],
    params: SimulationParams | None = None,
    workers: int | None = None,
) -> list[SweepResult]:
    """Run the grid (parallel when CPUs allow); results in task order."""
    return run_sweep(tasks, params=params, workers=workers)
