"""Measured scalability of the *networked* DSSP, per strategy class.

Stands up a real localhost topology — one home server, two DSSP nodes,
asyncio sockets end to end — and drives it with the closed-loop load
generator, replaying one shared recorded trace for every strategy class
so the operation streams are identical.

Two things to see in the table:

* the measured hit-rate gradient matches the in-process experiments
  (``MVIS >= MSIS >= MTIS >= MBS``) — the service layer preserves the
  paper's invalidation semantics;
* each measured run's :class:`CacheBehavior` feeds ``predict_p90``, tying
  live socket measurements back to the analytic model of Figure 8.

Localhost latencies are not the paper's WAN latencies, so the analytic
p90 column is in model units — the cross-check is that it *computes* from
measured behavior, not that it equals wall-clock time.
"""

from __future__ import annotations

import asyncio

from repro.analysis.exposure import ExposurePolicy
from repro.crypto import Keyring
from repro.crypto.envelope import EnvelopeCodec
from repro.dssp import DsspNode, HomeServer
from repro.net import DsspNetServer, HomeNetServer, WireClient, run_load
from repro.simulation.scalability import find_scalability, predict_p90
from repro.workloads import get_application
from repro.workloads.trace import Trace, record_trace

from benchmarks.conftest import BENCH_SCALE, STRATEGY_ORDER, once

APP = "bookstore"
PAGES = 300  # <= trace length: avoids INSERT-replay collisions on wrap
CLIENTS = 8
NODES = 2
USERS_FOR_MODEL = 100


async def _measure_strategy(strategy, spec, trace_json: str):
    level = strategy.exposure_level
    policy = ExposurePolicy.uniform(spec.registry, level)
    keyring = Keyring(APP, b"b" * 32)
    # Fresh data per strategy: the trace's updates mutate the master copy.
    instance = spec.instantiate(scale=BENCH_SCALE, seed=1)
    home = HomeServer(APP, instance.database, spec.registry, policy, keyring)
    home_net = HomeNetServer(home)
    await home_net.start()
    servers, clients = [], []
    try:
        for index in range(NODES):
            server = DsspNetServer(DsspNode(), node_id=f"dssp-{index}")
            server.register_application(APP, spec.registry, home_net.address)
            await server.start()
            servers.append(server)
            clients.append(WireClient(*server.address))
        trace = Trace.from_json(trace_json).bind(spec.registry)
        report = await run_load(
            clients,
            EnvelopeCodec(keyring),
            policy,
            trace,
            clients=CLIENTS,
            pages=PAGES,
        )
        invalidations = sum(
            server.node.stats.invalidations for server in servers
        )
        return report.with_invalidations(invalidations)
    finally:
        for client in clients:
            await client.aclose()
        for server in servers:
            await server.stop()
        await home_net.stop()


def _sweep():
    spec = get_application(APP)
    recorder = spec.instantiate(scale=BENCH_SCALE, seed=1)
    trace_json = record_trace(
        recorder.sampler, PAGES, seed=1, application=APP
    ).to_json()

    async def run_all():
        results = {}
        for strategy in STRATEGY_ORDER:
            results[strategy] = await _measure_strategy(
                strategy, spec, trace_json
            )
        return results

    return asyncio.run(run_all())


def _render(results, sim_params) -> str:
    lines = [
        f"{'strategy':<6} {'pages':>6} {'thr/s':>8} {'p50 ms':>8} "
        f"{'p90 ms':>8} {'hit rate':>9} {'errors':>7} {'model p90 s':>12} "
        f"{'model users':>12}",
        "-" * 85,
    ]
    for strategy, report in results.items():
        behavior = report.behavior()
        model_p90 = predict_p90(USERS_FOR_MODEL, sim_params, behavior)
        users = find_scalability(sim_params, behavior)
        lines.append(
            f"{strategy.name:<6} {report.pages:>6} "
            f"{report.throughput_pages_s:>8.1f} "
            f"{report.p50_s * 1000:>8.2f} {report.p90_s * 1000:>8.2f} "
            f"{report.hit_rate:>9.3f} {report.errors:>7} "
            f"{model_p90:>12.3f} {users:>12}"
        )
    return "\n".join(lines)


def test_net_loadgen_strategies(benchmark, emit, sim_params):
    results = once(benchmark, _sweep)
    emit("net_loadgen_strategies", _render(results, sim_params))

    for report in results.values():
        assert report.pages > 0
        assert report.queries > 0
        # The page budget never wraps the trace, so every operation must
        # succeed — any error would be a service-layer defect.
        assert report.errors == 0

    # The networked deployment must preserve the paper's headline signal:
    # fine-grained invalidation keeps far more of the cache than blind
    # invalidation.  (Concurrent socket replay makes the *exact* ordering
    # among the three fine strategies noisy, unlike the deterministic
    # in-process sweep of bench_fig8, so only the robust gap is asserted.)
    blind = results[STRATEGY_ORDER[-1]]
    for strategy in STRATEGY_ORDER[:-1]:
        assert results[strategy].hit_rate > 3 * blind.hit_rate, strategy

    # Measured behavior plugs into the analytic model: the "max users in
    # SLA" search must rank fine-grained strategies above blind.
    scalability = {
        s: find_scalability(sim_params, results[s].behavior())
        for s in STRATEGY_ORDER
    }
    for strategy in STRATEGY_ORDER[:-1]:
        assert scalability[strategy] > scalability[STRATEGY_ORDER[-1]], (
            scalability
        )
