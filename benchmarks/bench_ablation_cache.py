"""Ablation — cold-start vs warm cache.

Every paper experiment starts the DSSP with a cold cache (Section 5.2).
This ablation measures how much that choice depresses the observed hit rate
by comparing the first measurement window against a second window over the
already-warm cache, under MVIS and under MBS (where constant wipes keep the
cache permanently cold).
"""

from repro.dssp import StrategyClass
from repro.simulation import measure_cache_behavior

from benchmarks.conftest import BENCH_PAGES, deploy, once


def test_ablation_cold_vs_warm_cache(benchmark, emit):
    def experiment():
        results = {}
        for strategy in (StrategyClass.MVIS, StrategyClass.MBS):
            node, home, sampler = deploy("bookstore", strategy=strategy)
            cold = measure_cache_behavior(
                node, home, sampler, pages=BENCH_PAGES // 2, seed=5
            )
            warm = measure_cache_behavior(
                node,
                home,
                sampler,
                pages=BENCH_PAGES // 2,
                seed=6,
                cold_start=False,
            )
            results[strategy] = (cold.hit_rate, warm.hit_rate)
        return results

    results = once(benchmark, experiment)
    lines = [
        f"{'strategy':<8} {'cold-window hit rate':>21} {'warm-window hit rate':>21}",
        "-" * 54,
    ]
    for strategy, (cold, warm) in results.items():
        lines.append(f"{strategy.name:<8} {cold:>21.3f} {warm:>21.3f}")
    emit("ablation_cold_vs_warm", "\n".join(lines))

    mvis_cold, mvis_warm = results[StrategyClass.MVIS]
    mbs_cold, mbs_warm = results[StrategyClass.MBS]
    # A warm cache helps a precise strategy...
    assert mvis_warm > mvis_cold
    # ...but cannot help a blind one: every update wipes it anyway.
    assert abs(mbs_warm - mbs_cold) < 0.08
