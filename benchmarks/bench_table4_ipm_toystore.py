"""Paper Table 4 — IPM characterization of the elaborate toystore.

Regenerates the full characterization matrix and checks every cell against
the paper's published values.
"""

from repro.analysis import characterize_application, format_ipm_table
from repro.workloads import toystore_spec

from benchmarks.conftest import once

#: (update, query) -> (a_is_zero, b_equals_a, c_equals_b), from Table 4.
PAPER_TABLE_4 = {
    ("U1", "Q1"): (False, True, False),  # A=1, B=A, C<B
    ("U1", "Q2"): (False, False, True),  # A=1, B<A, C=B
    ("U1", "Q3"): (True, True, True),  # A=0
    ("U2", "Q1"): (True, True, True),
    ("U2", "Q2"): (True, True, True),
    ("U2", "Q3"): (False, False, True),  # A=1, B<A, C=B
}


def test_table4_ipm_characterization(benchmark, emit):
    registry = toystore_spec().registry

    def experiment():
        characterization = characterize_application(registry)
        return characterization, format_ipm_table(characterization)

    characterization, table = once(benchmark, experiment)
    emit("table4_ipm_toystore", table)

    for (update, query), expected in PAPER_TABLE_4.items():
        pair = characterization.pair(update, query)
        assert (pair.a_is_zero, pair.b_equals_a, pair.c_equals_b) == expected, (
            f"{update}/{query} diverges from paper Table 4"
        )
