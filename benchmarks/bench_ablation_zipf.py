"""Ablation — Zipf vs uniform book popularity (the paper's TPC-W change).

The paper replaces TPC-W's uniform book popularity with the Brynjolfsson
et al. Zipf law.  Skew concentrates queries on few parameters, which raises
cache hit rates and therefore scalability; this ablation quantifies that by
re-running the bookstore with the popularity exponent forced to 0
(uniform).
"""

from repro.dssp import StrategyClass
from repro.simulation import find_scalability, measure_cache_behavior
from repro.workloads.zipf import BRYNJOLFSSON_EXPONENT, ZipfSampler

from benchmarks.conftest import BENCH_PAGES, deploy, once


def test_ablation_zipf_popularity(benchmark, emit, sim_params):
    def run(exponent: float):
        node, home, sampler = deploy("bookstore", strategy=StrategyClass.MVIS)
        sampler.zipf = ZipfSampler(sampler.zipf.n, exponent)
        behavior = measure_cache_behavior(
            node, home, sampler, pages=BENCH_PAGES, seed=5
        )
        return behavior.hit_rate, find_scalability(sim_params, behavior=behavior)

    def experiment():
        return {
            "zipf (0.871)": run(BRYNJOLFSSON_EXPONENT),
            "strong zipf (1.5)": run(1.5),
            "uniform (0.0)": run(0.0),
        }

    results = once(benchmark, experiment)
    lines = [
        f"{'popularity':<18} {'hit rate':>9} {'scalability':>12}",
        "-" * 42,
    ]
    for label, (hit, users) in results.items():
        lines.append(f"{label:<18} {hit:>9.3f} {users:>12}")
    emit("ablation_zipf_popularity", "\n".join(lines))

    zipf_hit, zipf_users = results["zipf (0.871)"]
    strong_hit, strong_users = results["strong zipf (1.5)"]
    uniform_hit, uniform_users = results["uniform (0.0)"]
    assert zipf_hit > uniform_hit
    assert strong_hit > zipf_hit
    assert zipf_users >= uniform_users
    assert strong_users >= zipf_users
