"""Ablation — Zipf vs uniform book popularity (the paper's TPC-W change).

The paper replaces TPC-W's uniform book popularity with the Brynjolfsson
et al. Zipf law.  Skew concentrates queries on few parameters, which raises
cache hit rates and therefore scalability; this ablation quantifies that by
re-running the bookstore with the popularity exponent forced to 0
(uniform).
"""

from repro.dssp import StrategyClass
from repro.workloads.zipf import BRYNJOLFSSON_EXPONENT

from benchmarks.conftest import once
from benchmarks.sweep import bench_sweep, bench_task


def test_ablation_zipf_popularity(benchmark, emit, sim_params):
    def experiment():
        grid = {
            "zipf (0.871)": BRYNJOLFSSON_EXPONENT,
            "strong zipf (1.5)": 1.5,
            "uniform (0.0)": 0.0,
        }
        tasks = [
            bench_task(
                "bookstore",
                strategy=StrategyClass.MVIS,
                zipf_exponent=exponent,
                tag=label,
            )
            for label, exponent in grid.items()
        ]
        return {
            cell.tag: (cell.behavior.hit_rate, cell.users)
            for cell in bench_sweep(tasks, params=sim_params)
        }

    results = once(benchmark, experiment)
    lines = [
        f"{'popularity':<18} {'hit rate':>9} {'scalability':>12}",
        "-" * 42,
    ]
    for label, (hit, users) in results.items():
        lines.append(f"{label:<18} {hit:>9.3f} {users:>12}")
    emit("ablation_zipf_popularity", "\n".join(lines))

    zipf_hit, zipf_users = results["zipf (0.871)"]
    strong_hit, strong_users = results["strong zipf (1.5)"]
    uniform_hit, uniform_users = results["uniform (0.0)"]
    assert zipf_hit > uniform_hit
    assert strong_hit > zipf_hit
    assert zipf_users >= uniform_users
    assert strong_users >= zipf_users
