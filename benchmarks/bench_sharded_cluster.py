"""Extension — sharded DSSP cluster vs client-partitioned fleet.

``bench_extension_cluster`` quantifies the *dilution* story: partitioning
one client population across N independent caches shrinks each node's
effective working set, so fleet hit rate decays with N.  This benchmark
adds the other arm of the experiment: the same workload over a
:class:`~repro.dssp.cluster.ShardedDsspCluster`, where a consistent-hash
ring places *view keys* (template buckets), every client's request for a
given view lands on the one owning shard, and invalidations fan out only
to shards holding affected buckets.

With per-node capacity bounded (the regime where placement matters), the
fleet flips from dilution to speedup: N shards act as one logical cache
of N times the capacity, so the sharded hit rate is non-decreasing in N
while the partitioned hit rate falls.

The JSON artifact (``results/BENCH_sharded_cluster.json``) is committed
and regression-gated in CI by ``benchmarks/check_sharded_cluster.py``:
the sharded-vs-partitioned gain at the largest fleet and the sharded
monotonicity are what the gate protects.
"""

from __future__ import annotations

import json

from repro.analysis.exposure import ExposurePolicy
from repro.crypto import Keyring
from repro.dssp import HomeServer, StrategyClass
from repro.dssp.cluster import (
    DsspCluster,
    ShardedDsspCluster,
    measure_cluster_behavior,
)
from repro.simulation import find_scalability
from repro.workloads import get_application

from benchmarks.conftest import BENCH_PAGES, BENCH_SCALE, once

NODE_COUNTS = (1, 2, 4, 8)
#: Per-node cache capacity (views).  Small enough that one node cannot
#: hold the working set: the regime where total fleet capacity — and
#: therefore placement — decides the hit rate.
CAPACITY = 64
CLIENTS = 48


def _behavior(cluster_cls, nodes: int):
    app = get_application("bookstore")
    instance = app.instantiate(scale=BENCH_SCALE, seed=1)
    policy = ExposurePolicy.uniform(
        app.registry, StrategyClass.MVIS.exposure_level
    )
    home = HomeServer(
        "bookstore",
        instance.database,
        app.registry,
        policy,
        Keyring("bookstore"),
    )
    cluster = cluster_cls(nodes=nodes, cache_capacity=CAPACITY)
    cluster.register_application(home)
    return measure_cluster_behavior(
        cluster, home, instance.sampler, pages=BENCH_PAGES,
        clients=CLIENTS, seed=5,
    )


def _experiment(sim_params):
    result = {
        "capacity_per_node": CAPACITY,
        "clients": CLIENTS,
        "pages": BENCH_PAGES,
        "scale": BENCH_SCALE,
        "node_counts": list(NODE_COUNTS),
        "partitioned": {},
        "sharded": {},
    }
    for nodes in NODE_COUNTS:
        for key, cluster_cls in (
            ("partitioned", DsspCluster),
            ("sharded", ShardedDsspCluster),
        ):
            behavior = _behavior(cluster_cls, nodes)
            result[key][str(nodes)] = {
                "hit_rate": behavior.hit_rate,
                "scalability_users": find_scalability(
                    sim_params, behavior=behavior
                ),
            }
    last = str(NODE_COUNTS[-1])
    result["sharded_gain_at_max"] = (
        result["sharded"][last]["hit_rate"]
        - result["partitioned"][last]["hit_rate"]
    )
    return result


def _render(result) -> str:
    lines = [
        f"{'nodes':>6} {'partitioned':>12} {'sharded':>9} "
        f"{'part users':>11} {'shard users':>12}",
        "-" * 56,
    ]
    for nodes in result["node_counts"]:
        part = result["partitioned"][str(nodes)]
        shard = result["sharded"][str(nodes)]
        lines.append(
            f"{nodes:>6} {part['hit_rate']:>12.3f} "
            f"{shard['hit_rate']:>9.3f} "
            f"{part['scalability_users']:>11} "
            f"{shard['scalability_users']:>12}"
        )
    lines.append(
        f"sharded gain at {result['node_counts'][-1]} nodes: "
        f"{result['sharded_gain_at_max']:+.3f} hit rate"
    )
    return "\n".join(lines)


def test_sharded_cluster_speedup(benchmark, emit, results_dir, sim_params):
    result = once(benchmark, lambda: _experiment(sim_params))
    emit("sharded_cluster", _render(result))
    artifact = results_dir / "BENCH_sharded_cluster.json"
    artifact.write_text(json.dumps(result, indent=2) + "\n")

    counts = [str(n) for n in result["node_counts"]]
    sharded = [result["sharded"][n]["hit_rate"] for n in counts]
    partitioned = [result["partitioned"][n]["hit_rate"] for n in counts]

    # One node is one node: both deployments are the same machine, so
    # they must measure (nearly) the same cache.
    assert abs(sharded[0] - partitioned[0]) < 0.02

    # The flip: sharding is non-decreasing in N (one logical cache of
    # N x CAPACITY), while partitioning dilutes.
    for fewer, more in zip(sharded, sharded[1:]):
        assert more >= fewer - 0.02
    assert sharded[-1] > sharded[0]
    assert partitioned[-1] < partitioned[0]
    assert result["sharded_gain_at_max"] > 0.1
