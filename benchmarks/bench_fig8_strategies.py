"""Paper Figure 8 — scalability vs coarse-grain invalidation strategy.

For each application and each uniform strategy class (MVIS, MSIS, MTIS,
MBS), measures the real DSSP's cache behaviour and finds the maximum user
count meeting the 2 s / 90% SLA.

Paper shape to reproduce: for every application
``MVIS >= MSIS >= MTIS >= MBS``, with bboard (≈10 DB requests per page)
collapsing to (near) zero under MTIS and MBS.
"""

from repro.simulation import find_scalability, measure_cache_behavior
from repro.workloads import APPLICATIONS

from benchmarks.conftest import BENCH_PAGES, STRATEGY_ORDER, deploy, once


def _figure8(sim_params):
    results = {}
    for name in APPLICATIONS:
        per_strategy = {}
        for strategy in STRATEGY_ORDER:
            node, home, sampler = deploy(name, strategy=strategy)
            behavior = measure_cache_behavior(
                node, home, sampler, pages=BENCH_PAGES, seed=5
            )
            users = find_scalability(sim_params, behavior=behavior)
            per_strategy[strategy] = (users, behavior)
        results[name] = per_strategy
    return results


def _render(results) -> str:
    lines = [
        f"{'application':<12} {'strategy':<6} {'scalability':>12} "
        f"{'hit rate':>9} {'inval/upd':>10}",
        "-" * 56,
    ]
    for name, per_strategy in results.items():
        for strategy, (users, behavior) in per_strategy.items():
            lines.append(
                f"{name:<12} {strategy.name:<6} {users:>12} "
                f"{behavior.hit_rate:>9.3f} "
                f"{behavior.invalidations_per_update:>10.2f}"
            )
    return "\n".join(lines)


def test_fig8_strategy_scalability(benchmark, emit, sim_params):
    results = once(benchmark, lambda: _figure8(sim_params))
    emit("fig8_strategy_scalability", _render(results))

    for name, per_strategy in results.items():
        users = [per_strategy[s][0] for s in STRATEGY_ORDER]
        assert users == sorted(users, reverse=True), (
            f"{name}: gradient violated: {users}"
        )
        hit_rates = [per_strategy[s][1].hit_rate for s in STRATEGY_ORDER]
        assert hit_rates == sorted(hit_rates, reverse=True), name

    # Blanket encryption badly hurts scalability (paper Section 5.3).
    for name, per_strategy in results.items():
        best = per_strategy[STRATEGY_ORDER[0]][0]
        worst = per_strategy[STRATEGY_ORDER[-1]][0]
        assert worst < best, name

    # bboard collapses under template-level and blind strategies.
    from repro.dssp import StrategyClass

    bboard = results["bboard"]
    assert bboard[StrategyClass.MTIS][0] <= 0.2 * bboard[StrategyClass.MVIS][0]
    assert bboard[StrategyClass.MBS][0] <= 0.2 * bboard[StrategyClass.MVIS][0]
