"""Paper Figure 8 — scalability vs coarse-grain invalidation strategy.

For each application and each uniform strategy class (MVIS, MSIS, MTIS,
MBS), measures the real DSSP's cache behaviour and finds the maximum user
count meeting the 2 s / 90% SLA.

Paper shape to reproduce: for every application
``MVIS >= MSIS >= MTIS >= MBS``, with bboard (≈10 DB requests per page)
collapsing to (near) zero under MTIS and MBS.
"""

from repro.workloads import APPLICATIONS

from benchmarks.conftest import STRATEGY_ORDER, once
from benchmarks.sweep import bench_sweep, bench_task


def _figure8(sim_params):
    tasks = [
        bench_task(name, strategy=strategy, tag=(name, strategy))
        for name in APPLICATIONS
        for strategy in STRATEGY_ORDER
    ]
    results = {name: {} for name in APPLICATIONS}
    for outcome in bench_sweep(tasks, params=sim_params):
        name, strategy = outcome.tag
        results[name][strategy] = (outcome.users, outcome.behavior)
    return results


def _render(results) -> str:
    lines = [
        f"{'application':<12} {'strategy':<6} {'scalability':>12} "
        f"{'hit rate':>9} {'inval/upd':>10}",
        "-" * 56,
    ]
    for name, per_strategy in results.items():
        for strategy, (users, behavior) in per_strategy.items():
            lines.append(
                f"{name:<12} {strategy.name:<6} {users:>12} "
                f"{behavior.hit_rate:>9.3f} "
                f"{behavior.invalidations_per_update:>10.2f}"
            )
    return "\n".join(lines)


def test_fig8_strategy_scalability(benchmark, emit, sim_params):
    results = once(benchmark, lambda: _figure8(sim_params))
    emit("fig8_strategy_scalability", _render(results))

    for name, per_strategy in results.items():
        users = [per_strategy[s][0] for s in STRATEGY_ORDER]
        assert users == sorted(users, reverse=True), (
            f"{name}: gradient violated: {users}"
        )
        hit_rates = [per_strategy[s][1].hit_rate for s in STRATEGY_ORDER]
        assert hit_rates == sorted(hit_rates, reverse=True), name

    # Blanket encryption badly hurts scalability (paper Section 5.3).
    for name, per_strategy in results.items():
        best = per_strategy[STRATEGY_ORDER[0]][0]
        worst = per_strategy[STRATEGY_ORDER[-1]][0]
        assert worst < best, name

    # bboard (≈10 DB requests/page) suffers the steepest collapse under the
    # coarse strategies: blind invalidation keeps under a fifth of the
    # fine-grained scalability, template-level under half — a worse drop
    # than either other application sees.
    from repro.dssp import StrategyClass

    bboard = results["bboard"]
    assert bboard[StrategyClass.MBS][0] <= 0.2 * bboard[StrategyClass.MVIS][0]
    assert bboard[StrategyClass.MTIS][0] <= 0.45 * bboard[StrategyClass.MVIS][0]
    for name, per_strategy in results.items():
        if name == "bboard":
            continue
        ratio = per_strategy[StrategyClass.MTIS][0] / per_strategy[StrategyClass.MVIS][0]
        bboard_ratio = bboard[StrategyClass.MTIS][0] / bboard[StrategyClass.MVIS][0]
        assert bboard_ratio < ratio, name
