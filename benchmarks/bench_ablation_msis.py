"""Ablation — MSIS parameter reasoning: interval satisfiability vs
equality-only matching.

The minimal statement-inspection strategy needs *some* way to compare
update and query parameters.  The cheapest implementation matches equality
predicates only (enough for the paper's Table 2 example); ours additionally
does interval satisfiability over range predicates.  This ablation measures
what the richer reasoning buys on the range-heavy parts of the workloads
(date windows in bboard, ranges in searches).
"""

from repro.dssp import StrategyClass
from repro.simulation import find_scalability, measure_cache_behavior
from repro.workloads import APPLICATIONS

from benchmarks.conftest import BENCH_PAGES, deploy, once


def test_ablation_msis_parameter_reasoning(benchmark, emit, sim_params):
    def experiment():
        results = {}
        for name in APPLICATIONS:
            per_mode = {}
            for equality_only in (False, True):
                node, home, sampler = deploy(
                    name,
                    strategy=StrategyClass.MSIS,
                    equality_only_independence=equality_only,
                )
                behavior = measure_cache_behavior(
                    node, home, sampler, pages=BENCH_PAGES, seed=5
                )
                per_mode[equality_only] = (
                    behavior.hit_rate,
                    behavior.invalidations_per_update,
                    find_scalability(sim_params, behavior=behavior),
                )
            results[name] = per_mode
        return results

    results = once(benchmark, experiment)

    lines = [
        f"{'application':<12} {'reasoning':<14} {'hit rate':>9} "
        f"{'inval/upd':>10} {'scalability':>12}",
        "-" * 62,
    ]
    for name, per_mode in results.items():
        for equality_only, (hit, inval, users) in per_mode.items():
            mode = "equality-only" if equality_only else "intervals"
            lines.append(
                f"{name:<12} {mode:<14} {hit:>9.3f} {inval:>10.2f} {users:>12}"
            )
    emit("ablation_msis_reasoning", "\n".join(lines))

    for name, per_mode in results.items():
        full_hit, full_inval, full_users = per_mode[False]
        eq_hit, eq_inval, eq_users = per_mode[True]
        # Richer reasoning never invalidates more and never scales worse.
        assert full_inval <= eq_inval + 1e-9, name
        assert full_hit >= eq_hit - 1e-9, name
        assert full_users >= eq_users, name
