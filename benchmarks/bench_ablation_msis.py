"""Ablation — MSIS parameter reasoning: interval satisfiability vs
equality-only matching.

The minimal statement-inspection strategy needs *some* way to compare
update and query parameters.  The cheapest implementation matches equality
predicates only (enough for the paper's Table 2 example); ours additionally
does interval satisfiability over range predicates.  This ablation measures
what the richer reasoning buys on the range-heavy parts of the workloads
(date windows in bboard, ranges in searches).
"""

from repro.dssp import StrategyClass
from repro.workloads import APPLICATIONS

from benchmarks.conftest import once
from benchmarks.sweep import bench_sweep, bench_task


def test_ablation_msis_parameter_reasoning(benchmark, emit, sim_params):
    def experiment():
        tasks = [
            bench_task(
                name,
                strategy=StrategyClass.MSIS,
                equality_only_independence=equality_only,
                tag=(name, equality_only),
            )
            for name in APPLICATIONS
            for equality_only in (False, True)
        ]
        results = {name: {} for name in APPLICATIONS}
        for cell in bench_sweep(tasks, params=sim_params):
            name, equality_only = cell.tag
            results[name][equality_only] = (
                cell.behavior.hit_rate,
                cell.behavior.invalidations_per_update,
                cell.users,
            )
        return results

    results = once(benchmark, experiment)

    lines = [
        f"{'application':<12} {'reasoning':<14} {'hit rate':>9} "
        f"{'inval/upd':>10} {'scalability':>12}",
        "-" * 62,
    ]
    for name, per_mode in results.items():
        for equality_only, (hit, inval, users) in per_mode.items():
            mode = "equality-only" if equality_only else "intervals"
            lines.append(
                f"{name:<12} {mode:<14} {hit:>9.3f} {inval:>10.2f} {users:>12}"
            )
    emit("ablation_msis_reasoning", "\n".join(lines))

    for name, per_mode in results.items():
        full_hit, full_inval, full_users = per_mode[False]
        eq_hit, eq_inval, eq_users = per_mode[True]
        # Richer reasoning never invalidates more and never scales worse.
        assert full_inval <= eq_inval + 1e-9, name
        assert full_hit >= eq_hit - 1e-9, name
        assert full_users >= eq_users, name
