"""Ablation — finite cache capacity (LRU eviction) at the DSSP.

The paper's prototype caches everything; a production DSSP shares its
memory across many applications.  This ablation sweeps the view-cache
capacity and reports the hit rate knee, showing how much cache the
bookstore workload actually needs before invalidation (not eviction)
becomes the binding constraint.
"""

from repro.dssp import StrategyClass

from benchmarks.conftest import once
from benchmarks.sweep import bench_sweep, bench_task

CAPACITIES = (25, 50, 100, 200, 400, None)


def test_ablation_cache_capacity(benchmark, emit):
    def experiment():
        tasks = [
            bench_task(
                "bookstore",
                strategy=StrategyClass.MVIS,
                cache_capacity=capacity,
                tag=capacity,
            )
            for capacity in CAPACITIES
        ]
        return {
            cell.tag: (cell.behavior.hit_rate, cell.resident_views)
            for cell in bench_sweep(tasks)
        }

    results = once(benchmark, experiment)
    lines = [
        f"{'capacity':>9} {'hit rate':>9} {'resident views':>15}",
        "-" * 37,
    ]
    for capacity, (hit_rate, resident) in results.items():
        label = "inf" if capacity is None else str(capacity)
        lines.append(f"{label:>9} {hit_rate:>9.3f} {resident:>15}")
    emit("ablation_cache_capacity", "\n".join(lines))

    rates = [results[c][0] for c in CAPACITIES]
    # Hit rate is monotone (non-strictly) in capacity.
    for smaller, larger in zip(rates, rates[1:]):
        assert smaller <= larger + 0.02
    # A tiny cache visibly hurts; an unbounded one is the ceiling.
    assert results[25][0] < results[None][0]
    # Residency respects the cap.
    for capacity in CAPACITIES:
        if capacity is not None:
            assert results[capacity][1] <= capacity
