"""Ablation — finite cache capacity (LRU eviction) at the DSSP.

The paper's prototype caches everything; a production DSSP shares its
memory across many applications.  This ablation sweeps the view-cache
capacity and reports the hit rate knee, showing how much cache the
bookstore workload actually needs before invalidation (not eviction)
becomes the binding constraint.
"""

import random

from repro.analysis.exposure import ExposurePolicy
from repro.crypto import Keyring
from repro.dssp import DsspNode, HomeServer, StrategyClass
from repro.simulation import measure_cache_behavior
from repro.workloads import get_application

from benchmarks.conftest import BENCH_PAGES, BENCH_SCALE, once

CAPACITIES = (25, 50, 100, 200, 400, None)


def _run(capacity):
    app = get_application("bookstore")
    instance = app.instantiate(scale=BENCH_SCALE, seed=1)
    policy = ExposurePolicy.uniform(
        app.registry, StrategyClass.MVIS.exposure_level
    )
    home = HomeServer(
        "bookstore", instance.database, app.registry, policy, Keyring("bookstore")
    )
    node = DsspNode(cache_capacity=capacity)
    node.register_application(home)
    behavior = measure_cache_behavior(
        node, home, instance.sampler, pages=BENCH_PAGES, seed=5
    )
    return behavior.hit_rate, len(node.cache)


def test_ablation_cache_capacity(benchmark, emit):
    def experiment():
        return {capacity: _run(capacity) for capacity in CAPACITIES}

    results = once(benchmark, experiment)
    lines = [
        f"{'capacity':>9} {'hit rate':>9} {'resident views':>15}",
        "-" * 37,
    ]
    for capacity, (hit_rate, resident) in results.items():
        label = "inf" if capacity is None else str(capacity)
        lines.append(f"{label:>9} {hit_rate:>9.3f} {resident:>15}")
    emit("ablation_cache_capacity", "\n".join(lines))

    rates = [results[c][0] for c in CAPACITIES]
    # Hit rate is monotone (non-strictly) in capacity.
    for smaller, larger in zip(rates, rates[1:]):
        assert smaller <= larger + 0.02
    # A tiny cache visibly hurts; an unbounded one is the ceiling.
    assert results[25][0] < results[None][0]
    # Residency respects the cap.
    for capacity in CAPACITIES:
        if capacity is not None:
            assert results[capacity][1] <= capacity
