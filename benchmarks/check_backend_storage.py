"""Regression gate for the storage-backend throughput benchmark.

Compares a freshly generated ``BENCH_backend_storage.json`` against the
committed baseline and fails (exit 1) when the subsystem's headline
claims regress:

* SQLite must still bulk-load the full large tier (>= ``--large-floor``
  rows, default one million) — the durable-master capacity claim;
* every throughput metric of every (tier, backend) cell must stay within
  ``--tolerance`` of the committed baseline (a ratio floor, generous by
  default because CI machines vary);
* the memory backend must not have become slower than SQLite at point
  queries on the small tier — the wrapped engine's indexed fast path.

Usage::

    python benchmarks/check_backend_storage.py BASELINE FRESH [options]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

METRICS = (
    "load_rows_per_s",
    "point_queries_per_s",
    "ordered_queries_per_s",
    "updates_per_s",
)


def _load(path: str) -> dict:
    return json.loads(pathlib.Path(path).read_text())


def check(baseline: dict, fresh: dict, args) -> list[str]:
    failures: list[str] = []

    large = str(fresh["large_rows"])
    loaded = fresh["tiers"][large]["sqlite"]["rows_loaded"]
    if loaded < args.large_floor:
        failures.append(
            f"sqlite large tier loaded only {loaded:,} rows "
            f"(floor {args.large_floor:,})"
        )

    for tier, by_kind in fresh["tiers"].items():
        base_tier = baseline["tiers"].get(tier)
        if base_tier is None:
            continue  # row counts were overridden; nothing to compare
        for kind, measured in by_kind.items():
            for metric in METRICS:
                floor = base_tier[kind][metric] * args.tolerance
                if measured[metric] < floor:
                    failures.append(
                        f"{kind}@{tier} {metric} {measured[metric]:,.0f}/s "
                        f"regressed below {floor:,.0f}/s (baseline "
                        f"{base_tier[kind][metric]:,.0f} x {args.tolerance})"
                    )

    small = str(fresh["small_rows"])
    memory_point = fresh["tiers"][small]["memory"]["point_queries_per_s"]
    sqlite_point = fresh["tiers"][small]["sqlite"]["point_queries_per_s"]
    if memory_point < sqlite_point * 0.5:
        failures.append(
            f"memory point queries ({memory_point:,.0f}/s) fell far below "
            f"sqlite ({sqlite_point:,.0f}/s): indexed fast path broken?"
        )

    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_backend_storage.json")
    parser.add_argument("fresh", help="freshly generated result to gate")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="fresh throughput must be >= baseline x this (default 0.25)",
    )
    parser.add_argument(
        "--large-floor",
        type=int,
        default=1_000_000,
        help="minimum rows the sqlite large tier must load (default 1M)",
    )
    args = parser.parse_args(argv)

    failures = check(_load(args.baseline), _load(args.fresh), args)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("backend-storage gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
