"""Tracing overhead: the span recorder must be free when head-sampled.

Replays the same recorded trace over the live localhost topology from
``bench_net_pipeline`` (one home, two DSSP nodes, pipelined clients,
injected per-request service latency so the run is latency-bound like
the paper's deployment) twice:

* **untraced** — no recorder anywhere; the baseline throughput.
* **traced_1pct** — every process (client, both DSSP nodes, home) runs a
  :class:`~repro.obs.trace.SpanRecorder` at 1% head sampling writing
  JSON-lines span logs, the configuration a production fleet would run.

The claim under gate: at 1% sampling the traced run keeps >= 95% of the
untraced throughput.  Head sampling decides per trace id before any span
object exists, so 99% of requests pay one hash and a context-variable
read — the instrumentation must not tax the hot path it observes.

The JSON artifact (``results/BENCH_tracing_overhead.json``) is committed
and checked in CI by ``benchmarks/check_tracing_overhead.py``.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
from pathlib import Path

from repro.analysis.exposure import ExposurePolicy
from repro.crypto import Keyring
from repro.crypto.envelope import EnvelopeCodec
from repro.dssp import DsspNode, HomeServer
from repro.dssp.invalidation import StrategyClass
from repro.net import DsspNetServer, HomeNetServer, WireClient, run_load
from repro.obs import SpanRecorder, SpanSink
from repro.workloads import get_application
from repro.workloads.trace import Trace, record_trace

from benchmarks.conftest import BENCH_SCALE, once

APP = "bookstore"
PAGES = 200
CLIENTS = 4
NODES = 2
PIPELINE = 8
SAMPLE_RATE = 0.01
#: Interleaved rounds per mode; the best round is kept.  Run-to-run
#: drift on a shared host (several percent, monotone within a process)
#: exceeds the effect under measurement, so a single untraced-then-
#: traced pass would attribute the drift to the recorder.  Alternating
#: the modes and keeping each mode's best round cancels it.
ROUNDS = 2
#: Injected per-request service latency at each DSSP server (seconds) —
#: same rationale as bench_net_pipeline: localhost replay is otherwise
#: CPU-bound and would measure the interpreter, not the recorder.
SERVICE_LATENCY_S = 0.02


async def _service_latency(frame, request_id):
    await asyncio.sleep(SERVICE_LATENCY_S)


async def _measure(spec, trace_json: str, span_dir: Path | None):
    """One full load run; ``span_dir`` None means tracing disabled."""

    def tracer(node_id: str) -> SpanRecorder | None:
        if span_dir is None:
            return None
        sink = SpanSink(span_dir / f"{node_id}.spans.jsonl")
        return SpanRecorder(node_id, sink, sample_rate=SAMPLE_RATE)

    policy = ExposurePolicy.uniform(
        spec.registry, StrategyClass.MVIS.exposure_level
    )
    keyring = Keyring(APP, b"b" * 32)
    instance = spec.instantiate(scale=BENCH_SCALE, seed=1)
    home = HomeServer(APP, instance.database, spec.registry, policy, keyring)
    home_net = HomeNetServer(home, tracer=tracer("home"))
    await home_net.start()
    servers, clients = [], []
    recorders = [home_net.tracer]
    client_tracer = tracer("client")
    recorders.append(client_tracer)
    try:
        for index in range(NODES):
            server = DsspNetServer(
                DsspNode(),
                node_id=f"dssp-{index}",
                fault_hook=_service_latency,
                tracer=tracer(f"dssp-{index}"),
            )
            server.register_application(APP, spec.registry, home_net.address)
            await server.start()
            servers.append(server)
            recorders.append(server.tracer)
            clients.append(
                WireClient(
                    *server.address, pipeline=PIPELINE, tracer=client_tracer
                )
            )
        trace = Trace.from_json(trace_json).bind(spec.registry)
        report = await run_load(
            clients,
            EnvelopeCodec(keyring),
            policy,
            trace,
            clients=CLIENTS,
            pages=PAGES,
            pipeline=PIPELINE,
        )
        spans = 0
        if span_dir is not None:
            for recorder in recorders:
                recorder.close()
            spans = sum(
                len(path.read_text().splitlines())
                for path in span_dir.glob("*.spans.jsonl")
            )
        return report, spans
    finally:
        for client in clients:
            await client.aclose()
        for server in servers:
            await server.stop()
        await home_net.stop()


def _experiment() -> dict:
    spec = get_application(APP)
    recorder = spec.instantiate(scale=BENCH_SCALE, seed=1)
    trace_json = record_trace(
        recorder.sampler, PAGES, seed=1, application=APP
    ).to_json()

    async def run_rounds():
        untraced_rounds, traced_rounds = [], []
        for _ in range(ROUNDS):
            report, _ = await _measure(spec, trace_json, None)
            untraced_rounds.append(report)
            with tempfile.TemporaryDirectory() as tmp:
                report, counted = await _measure(spec, trace_json, Path(tmp))
            traced_rounds.append((report, counted))
        best_untraced = max(
            untraced_rounds, key=lambda report: report.throughput_pages_s
        )
        best_traced, spans = max(
            traced_rounds,
            key=lambda pair: pair[0].throughput_pages_s,
        )
        return best_untraced, best_traced, spans

    untraced, traced, spans = asyncio.run(run_rounds())
    ratio = traced.throughput_pages_s / untraced.throughput_pages_s
    return {
        "topology": {
            "application": APP,
            "scale": BENCH_SCALE,
            "pages": PAGES,
            "clients": CLIENTS,
            "nodes": NODES,
            "pipeline": PIPELINE,
            "service_latency_ms": SERVICE_LATENCY_S * 1000,
            "sample_rate": SAMPLE_RATE,
        },
        "modes": {
            "untraced": {
                "throughput_pages_s": untraced.throughput_pages_s,
                "p50_ms": untraced.p50_s * 1000,
                "p99_ms": untraced.p99_s * 1000,
                "errors": untraced.errors,
            },
            "traced_1pct": {
                "throughput_pages_s": traced.throughput_pages_s,
                "p50_ms": traced.p50_s * 1000,
                "p99_ms": traced.p99_s * 1000,
                "errors": traced.errors,
                "spans_recorded": spans,
            },
        },
        "throughput_ratio_traced_vs_untraced": ratio,
        "overhead_fraction": 1.0 - ratio,
    }


def _render(result: dict) -> str:
    lines = [
        f"{'mode':<14} {'thr/s':>8} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'errors':>7} {'spans':>7}",
        "-" * 58,
    ]
    for name, mode in result["modes"].items():
        lines.append(
            f"{name:<14} {mode['throughput_pages_s']:>8.1f} "
            f"{mode['p50_ms']:>8.2f} {mode['p99_ms']:>8.2f} "
            f"{mode['errors']:>7} {mode.get('spans_recorded', 0):>7}"
        )
    lines.append("")
    lines.append(
        f"traced/untraced throughput ratio: "
        f"{result['throughput_ratio_traced_vs_untraced']:.3f} "
        f"(overhead {result['overhead_fraction'] * 100:.1f}%)"
    )
    return "\n".join(lines)


def test_tracing_overhead(benchmark, emit, results_dir):
    result = once(benchmark, _experiment)
    emit("tracing_overhead", _render(result))
    artifact = results_dir / "BENCH_tracing_overhead.json"
    artifact.write_text(json.dumps(result, indent=2) + "\n")

    for mode in result["modes"].values():
        assert mode["errors"] == 0
    # 1% sampling really sampled: some spans, far fewer than one per
    # request (a full-rate run would record several spans per request).
    spans = result["modes"]["traced_1pct"]["spans_recorded"]
    requests = PAGES * CLIENTS
    assert 0 < spans < requests, spans

    # The headline claim, asserted where it is produced: head-sampled
    # tracing costs at most 5% of throughput on the latency-bound path.
    assert result["overhead_fraction"] <= 0.05, result
