"""Shared benchmark harness.

Every paper table/figure has one module here.  Each benchmark runs the
regenerating computation once (``benchmark.pedantic`` with a single round —
these are experiments, not microbenchmarks), prints the regenerated rows,
and also writes them under ``benchmarks/results/`` so the artifacts survive
pytest's output capturing.

Knobs (environment variables):

* ``REPRO_BENCH_SCALE``  — data-size multiplier (default 0.2).
* ``REPRO_BENCH_PAGES``  — pages streamed per cache-behaviour measurement
  (default 1500; raise for tighter hit-rate estimates).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.analysis.exposure import ExposurePolicy
from repro.crypto import Keyring
from repro.dssp import DsspNode, HomeServer, StrategyClass
from repro.simulation import SimulationParams
from repro.workloads import get_application

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))
BENCH_PAGES = int(os.environ.get("REPRO_BENCH_PAGES", "1500"))


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        choices=("memory", "sqlite"),
        default="memory",
        help="storage backend for the home's master copy, in benchmarks "
        "that honor it (e.g. bench_table2_toystore)",
    )


@pytest.fixture(scope="session")
def bench_backend(request) -> str:
    """The ``--backend`` option: which engine holds the master copy."""
    return request.config.getoption("--backend")

STRATEGY_ORDER = (
    StrategyClass.MVIS,
    StrategyClass.MSIS,
    StrategyClass.MTIS,
    StrategyClass.MBS,
)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a regenerated artifact and persist it under results/."""

    def write(name: str, text: str) -> None:
        print(f"\n===== {name} =====\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return write


@pytest.fixture(scope="session")
def sim_params() -> SimulationParams:
    return SimulationParams()


def deploy(
    app_name: str,
    policy: ExposurePolicy | None = None,
    strategy: StrategyClass | None = None,
    scale: float | None = None,
    seed: int = 1,
    use_integrity_constraints: bool = True,
    equality_only_independence: bool = False,
    predicate_index: bool = False,
):
    """Build (node, home, sampler) for an application under a policy."""
    app = get_application(app_name)
    instance = app.instantiate(scale=scale or BENCH_SCALE, seed=seed)
    if policy is None:
        assert strategy is not None
        policy = ExposurePolicy.uniform(app.registry, strategy.exposure_level)
    home = HomeServer(
        app_name,
        instance.database,
        app.registry,
        policy,
        Keyring(app_name, b"bench-key-" + app_name.encode().ljust(22, b"0")),
    )
    node = DsspNode(
        use_integrity_constraints=use_integrity_constraints,
        equality_only_independence=equality_only_independence,
        predicate_index=predicate_index,
    )
    node.register_application(home)
    return node, home, instance.sampler


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
