"""Paper Table 7 — IPM characterization counts for the three applications.

The scraped paper text lost Table 7's numeric cells; the prose claims we
can check are (a) the majority of U/Q pairs fall in the A=B=C=0 column for
every application, (b) B=A and/or C=B hold for the majority of the
remaining pairs, and (c) for the bookstore, the analysis frees ~21 of 28
query-result encryptions (Section 5.4).
"""

from repro.analysis import (
    characterize_application,
    design_exposure_policy,
    format_summary_table,
    summarize_characterization,
)
from repro.workloads import APPLICATIONS, get_application

from benchmarks.conftest import once


def test_table7_ipm_counts(benchmark, emit):
    def experiment():
        summaries = []
        free_counts = {}
        for name in APPLICATIONS:
            registry = get_application(name).registry
            characterization = characterize_application(registry)
            summaries.append(summarize_characterization(name, characterization))
            result = design_exposure_policy(registry)
            free_counts[name] = (
                result.encrypted_result_count(),
                len(registry.queries),
            )
        table = format_summary_table(summaries)
        extra = "\n".join(
            f"{name}: {freed}/{total} query-result encryptions are free "
            "(paper: 21/28 for bookstore)"
            for name, (freed, total) in free_counts.items()
        )
        return summaries, free_counts, table + "\n\n" + extra

    summaries, free_counts, table = once(benchmark, experiment)
    emit("table7_ipm_apps", table)

    for summary in summaries:
        assert summary.zero > summary.total_pairs / 2, summary.application
        nonzero = summary.total_pairs - summary.zero
        with_equalities = (
            summary.b_lt_a_c_eq_b + summary.b_eq_a_c_lt_b + summary.b_eq_a_c_eq_b
        )
        assert with_equalities >= nonzero / 2, summary.application

    freed, total = free_counts["bookstore"]
    assert total == 28
    assert 18 <= freed <= 24  # paper: 21
