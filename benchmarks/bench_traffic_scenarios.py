"""Traffic scenarios: the knee curve, measured open-loop (ISSUE PR 10).

A closed-loop generator self-throttles: when the service slows down the
clients stop asking, so the measured throughput follows capacity and the
overload region is invisible.  This benchmark drives the live localhost
topology *open-loop* — requests launch on a seeded arrival schedule
whether or not earlier ones finished — so offered load is an independent
variable and the knee (the last offered rate whose p99 still holds the
deadline) is a real, measurable point.

Three measurements land in ``results/BENCH_traffic_scenarios.json``:

* **steady knee sweep** — Poisson arrivals at ascending rates over one
  deployment with an injected per-request service latency; the sweep
  reports p50/p90/p99, offered vs achieved rate, and drop rate per
  point, and the detected knee.
* **flash crowd** — the mid-run spike concentrated on the hottest query
  template; headline books plus the schedule's hot-arrival count.
* **multi-tenant fairness** — one heavy + three light applications on a
  deliberately small DSSP at ~2x capacity; per-app served/shed books
  prove shedding is tenant-blind.

Reproducibility is part of the artifact: every point carries its arrival
schedule's sha256 digest, and the digest is regenerated in-run to prove
the process is a pure function of (kind, rate, seed, duration).  The
committed baseline is gated by ``benchmarks/check_traffic_scenarios.py``:
the digests must match the baseline *exactly* (same seed ⇒ same schedule,
byte for byte, on any machine), the knee must still be detected, and it
must not regress below tolerance.
"""

from __future__ import annotations

import asyncio
import json

from repro.net.scenarios import (
    deploy_scenario,
    run_scenario,
    scenario_arrivals,
    sweep_scenario,
)
from repro.obs import per_app_counters

from benchmarks.conftest import BENCH_SCALE, once

SEED = 31
#: Ascending offered rates for the steady sweep (pages/s).  Chosen so the
#: low end sits far under capacity and the high end far past it: the knee
#: must land strictly inside the sweep on any plausible runner.
SWEEP_RATES = [20.0, 40.0, 80.0, 160.0, 320.0]
SWEEP_DURATION_S = 1.5
#: Page deadline for knee detection.  The injected service latency puts
#: a sub-capacity page's p99 at 0.16-0.39 s across the grid (the 160/s
#: point queues transiently near capacity), so the deadline clears every
#: sub-capacity point with real headroom while the saturated 320/s point
#: (measured p99 ~0.7 s, a third of arrivals dropped) blows it cleanly.
DEADLINE_S = 0.50
SERVICE_LATENCY_S = 0.02
#: Past this many launched-but-unfinished pages the open loop drops new
#: arrivals (and says so in the books) instead of queueing unboundedly.
MAX_OUTSTANDING = 64

FLASH_RATE = 30.0
FLASH_DURATION_S = 1.5

TENANT_RATE = 220.0
TENANT_DURATION_S = 2.0


async def _steady_sweep() -> dict:
    deployment = await deploy_scenario(
        "steady",
        scale=BENCH_SCALE,
        seed=SEED,
        trace_pages=1200,
        service_latency_s=SERVICE_LATENCY_S,
    )
    try:
        return await sweep_scenario(
            deployment,
            rates=SWEEP_RATES,
            duration_s=SWEEP_DURATION_S,
            deadline_s=DEADLINE_S,
            max_outstanding=MAX_OUTSTANDING,
        )
    finally:
        await deployment.stop()


async def _flash_crowd() -> dict:
    deployment = await deploy_scenario(
        "flash_crowd",
        scale=BENCH_SCALE,
        seed=SEED,
        trace_pages=300,
        service_latency_s=SERVICE_LATENCY_S,
    )
    try:
        report = await run_scenario(
            deployment,
            rate=FLASH_RATE,
            duration_s=FLASH_DURATION_S,
            max_outstanding=MAX_OUTSTANDING,
        )
    finally:
        await deployment.stop()
    return report.to_dict()


async def _multi_tenant() -> dict:
    deployment = await deploy_scenario(
        "multi_tenant",
        scale=BENCH_SCALE,
        seed=SEED,
        trace_pages=700,
        service_latency_s=0.01,
        max_in_flight=4,
    )
    try:
        report = await run_scenario(
            deployment,
            rate=TENANT_RATE,
            duration_s=TENANT_DURATION_S,
            max_outstanding=96,
        )
        snapshot = deployment.server_snapshot()
    finally:
        await deployment.stop()
    served = per_app_counters(snapshot, "server.app_requests")
    shed = per_app_counters(snapshot, "server.app_shed")
    total_requests = sum(served.values()) or 1.0
    fleet_shed_rate = sum(shed.values()) / total_requests
    shed_rates = {
        app: shed.get(app, 0.0) / served[app] for app in sorted(served)
    }
    return {
        "report": report.to_dict(),
        "server_requests": {k: int(v) for k, v in sorted(served.items())},
        "server_shed": {k: int(v) for k, v in sorted(shed.items())},
        "fleet_shed_rate": fleet_shed_rate,
        "max_shed_rate_gap": max(
            (abs(rate - fleet_shed_rate) for rate in shed_rates.values()),
            default=0.0,
        ),
        "min_pages_served": min(
            books["pages"] for books in report.per_app.values()
        ),
    }


def _regenerate_digests() -> dict[str, str]:
    """The sweep's schedules, regenerated from scratch.

    ``check_traffic_scenarios.py`` compares these against both the
    in-run points and the committed baseline: equality proves the
    arrival process is a pure function of (kind, rate, seed, duration),
    i.e. the schedule is reproducible byte for byte.
    """
    return {
        f"{rate:g}": scenario_arrivals("steady", rate, SEED)
        .schedule(SWEEP_DURATION_S)
        .digest()
        for rate in SWEEP_RATES
    }


def _experiment() -> dict:
    async def run_all():
        return (
            await _steady_sweep(),
            await _flash_crowd(),
            await _multi_tenant(),
        )

    sweep, flash, tenants = asyncio.run(run_all())
    digests = _regenerate_digests()
    return {
        "config": {
            "seed": SEED,
            "scale": BENCH_SCALE,
            "rates": SWEEP_RATES,
            "duration_s": SWEEP_DURATION_S,
            "deadline_s": DEADLINE_S,
            "service_latency_ms": SERVICE_LATENCY_S * 1000,
            "max_outstanding": MAX_OUTSTANDING,
        },
        "steady_sweep": sweep,
        "schedule_digests": digests,
        "digests_reproduced_in_run": all(
            point["arrival"]["digest"] == digests[f"{point['rate']:g}"]
            for point in sweep["points"]
        ),
        "flash_crowd": flash,
        "multi_tenant": tenants,
    }


def _render(result: dict) -> str:
    sweep = result["steady_sweep"]
    lines = [
        f"{'rate/s':>7} {'offered/s':>10} {'achieved/s':>11} "
        f"{'drop%':>6} {'p50 ms':>8} {'p90 ms':>8} {'p99 ms':>8}",
        "-" * 64,
    ]
    for point in sweep["points"]:
        lines.append(
            f"{point['rate']:>7.0f} {point['offered_rate_s']:>10.1f} "
            f"{point['achieved_rate_s']:>11.1f} "
            f"{point['drop_rate'] * 100:>6.1f} "
            f"{point['p50_s'] * 1000:>8.1f} {point['p90_s'] * 1000:>8.1f} "
            f"{point['p99_s'] * 1000:>8.1f}"
        )
    lines.append("")
    knee = sweep["knee_rate_s"]
    lines.append(
        f"knee: {knee:.1f}/s offered with p99 <= "
        f"{sweep['deadline_s'] * 1000:.0f} ms"
        if knee is not None
        else "knee: not detected"
    )
    flash = result["flash_crowd"]
    lines.append(
        f"flash crowd: {flash['pages']} pages, "
        f"{flash['arrival']['hot_count']} hot arrivals, "
        f"p99 {flash['p99_s'] * 1000:.1f} ms"
    )
    tenants = result["multi_tenant"]
    lines.append(
        f"multi-tenant: fleet shed rate "
        f"{tenants['fleet_shed_rate']:.3f}, max per-app gap "
        f"{tenants['max_shed_rate_gap']:.3f}, min pages served "
        f"{tenants['min_pages_served']}"
    )
    return "\n".join(lines)


def test_traffic_scenarios(benchmark, emit, results_dir):
    result = once(benchmark, _experiment)
    emit("traffic_scenarios", _render(result))
    artifact = results_dir / "BENCH_traffic_scenarios.json"
    artifact.write_text(json.dumps(result, indent=2) + "\n")

    sweep = result["steady_sweep"]
    # The knee must land strictly inside the sweep: detected (the first
    # rate held the deadline) but not at the top (the last rate blew it)
    # — otherwise the sweep isn't bracketing saturation and the number
    # is an artifact of the rate grid.
    assert sweep["knee_rate_s"] is not None, sweep
    assert sweep["points"][-1]["p99_s"] > DEADLINE_S, sweep

    # Open-loop accounting identity, every point.
    for point in sweep["points"]:
        assert point["offered"] == point["issued"] + point["dropped"]
        assert point["errors"] == 0, point

    # Same seed ⇒ same schedule, regenerated inside this very run.
    assert result["digests_reproduced_in_run"], result["schedule_digests"]

    # Shedding sheds (the scenario is sized past capacity) without
    # starving anyone.
    assert result["multi_tenant"]["fleet_shed_rate"] > 0
    assert result["multi_tenant"]["min_pages_served"] > 0
