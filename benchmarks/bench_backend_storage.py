"""Storage-backend throughput: memory vs SQLite at 10k and 1M rows.

One synthetic indexed table is bulk-loaded at two sizes into both
backends; the benchmark then measures point-query, ordered-query, and
strict-model update throughput with *distinct* pre-parsed statements (so
the result memo cannot answer for the engine).  The JSON artifact
(``results/BENCH_backend_storage.json``) is committed and gated in CI by
``benchmarks/check_backend_storage.py`` — the headline claims being that
SQLite bulk-loads a million-row master and that neither engine's
throughput regresses.

Knobs: ``REPRO_BENCH_STORAGE_SMALL`` / ``REPRO_BENCH_STORAGE_LARGE``
override the row counts (e.g. for a quick local run).
"""

from __future__ import annotations

import json
import os
import time

from repro.schema import Column, ColumnType, Schema, TableSchema
from repro.sql.parser import parse
from repro.storage.backends import BACKENDS, create_backend

from benchmarks.conftest import once

SMALL_ROWS = int(os.environ.get("REPRO_BENCH_STORAGE_SMALL", "10000"))
LARGE_ROWS = int(os.environ.get("REPRO_BENCH_STORAGE_LARGE", "1000000"))
POINT_OPS = 1000
ORDERED_OPS = 100
UPDATE_OPS = 1000
#: The memory engine applies an update by scanning the table (O(rows) per
#: statement), so at the large tier it gets a reduced op count — the
#: throughput metric is per-op, and the measured gap vs SQLite's indexed
#: UPDATE is exactly the result the artifact is meant to show.  The op
#: counts land in the JSON so the cap is explicit, not silent.
LARGE_MEMORY_UPDATE_OPS = 20
#: rank values fall in [0, RANK_MOD); updates assign values beyond it so
#: every update is an effective change (counted, invalidating).
RANK_MOD = 1009


def make_schema() -> Schema:
    return Schema(
        [
            TableSchema(
                "inventory",
                (
                    Column("item_id", ColumnType.INTEGER),
                    Column("grp", ColumnType.TEXT),
                    Column("rank", ColumnType.INTEGER),
                ),
                primary_key=("item_id",),
            )
        ]
    )


def make_rows(count: int):
    return [(i, f"g{i % 97}", (i * 31) % RANK_MOD) for i in range(count)]


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def measure(kind: str, rows, update_ops: int = UPDATE_OPS) -> dict:
    count = len(rows)
    backend = create_backend(kind, make_schema())
    try:
        load_seconds = _timed(lambda: backend.load("inventory", rows))

        step = max(1, count // POINT_OPS)
        point = [
            parse(f"SELECT * FROM inventory WHERE item_id = {k}")
            for k in range(0, count, step)
        ][:POINT_OPS]
        point_seconds = _timed(lambda: [backend.execute(s) for s in point])

        ordered = [
            parse(
                f"SELECT item_id, rank FROM inventory WHERE grp = 'g{g % 97}' "
                "ORDER BY rank DESC LIMIT 10"
            )
            for g in range(ORDERED_OPS)
        ]
        ordered_seconds = _timed(
            lambda: [backend.execute(s) for s in ordered]
        )

        step = max(1, count // update_ops)
        updates = [
            parse(
                f"UPDATE inventory SET rank = {RANK_MOD + i} "
                f"WHERE item_id = {k}"
            )
            for i, k in enumerate(range(0, count, step))
        ][:update_ops]
        update_seconds = _timed(lambda: [backend.apply(u) for u in updates])

        return {
            "update_ops": len(updates),
            "rows_loaded": backend.row_count("inventory"),
            "load_seconds": round(load_seconds, 4),
            "load_rows_per_s": round(count / load_seconds, 1),
            "point_queries_per_s": round(len(point) / point_seconds, 1),
            "ordered_queries_per_s": round(
                len(ordered) / ordered_seconds, 1
            ),
            "updates_per_s": round(len(updates) / update_seconds, 1),
        }
    finally:
        backend.close()


def _experiment() -> dict:
    result = {
        "small_rows": SMALL_ROWS,
        "large_rows": LARGE_ROWS,
        "tiers": {},
    }
    for count in (SMALL_ROWS, LARGE_ROWS):
        rows = make_rows(count)
        result["tiers"][str(count)] = {
            kind: measure(
                kind,
                rows,
                update_ops=(
                    LARGE_MEMORY_UPDATE_OPS
                    if kind == "memory" and count > SMALL_ROWS
                    else UPDATE_OPS
                ),
            )
            for kind in BACKENDS
        }
    return result


def _render(result) -> str:
    lines = [
        f"{'rows':>9} {'backend':>8} {'load/s':>10} {'point/s':>9} "
        f"{'ordered/s':>10} {'update/s':>9}",
        "-" * 60,
    ]
    for count, by_kind in result["tiers"].items():
        for kind, m in by_kind.items():
            lines.append(
                f"{count:>9} {kind:>8} {m['load_rows_per_s']:>10,.0f} "
                f"{m['point_queries_per_s']:>9,.0f} "
                f"{m['ordered_queries_per_s']:>10,.0f} "
                f"{m['updates_per_s']:>9,.0f}"
            )
    return "\n".join(lines)


def test_backend_storage_throughput(benchmark, emit, results_dir):
    result = once(benchmark, _experiment)
    emit("backend_storage", _render(result))
    artifact = results_dir / "BENCH_backend_storage.json"
    artifact.write_text(json.dumps(result, indent=2) + "\n")

    large = result["tiers"][str(LARGE_ROWS)]
    assert large["sqlite"]["rows_loaded"] == LARGE_ROWS
    for count, by_kind in result["tiers"].items():
        for kind, m in by_kind.items():
            assert m["rows_loaded"] == int(count), (kind, count)
            for metric in (
                "load_rows_per_s",
                "point_queries_per_s",
                "ordered_queries_per_s",
                "updates_per_s",
            ):
                assert m[metric] > 0, (kind, count, metric)
