"""Paper Figure 3 — the security-scalability tradeoff (bookstore).

X axis: number of query templates whose results are encrypted.  Y axis:
scalability (max users within the SLA).  Three named points:

* **No Encryption** — everything exposed (x = 0);
* **Our Approach** — the methodology's outcome: the analysis-recommended
  templates encrypted, scalability unchanged (paper: x = 21 of 28);
* **Full Encryption** — everything blind (x = 28, scalability collapses).

The curve between them encrypts templates in analysis-recommended order
first (free reductions), then the scalability-impacting ones — showing the
flat region the paper's shortcut exploits, followed by the drop.
"""

from repro.analysis.exposure import ExposureLevel, ExposurePolicy
from repro.analysis.methodology import design_exposure_policy
from repro.workloads import get_application

from benchmarks.conftest import once
from benchmarks.sweep import bench_sweep, bench_task

#: Query-template counts at which the curve is sampled (plus the three
#: named points).  Keep sparse: each sample is a full DSSP measurement.
SAMPLE_COUNTS = (0, 5, 10, 15, 20, 24, 28)


def _curve_baseline(registry):
    """Free reductions computed against the curve's all-exposed updates.

    The curve keeps update templates at maximum exposure (its x-axis counts
    *query* templates only), so the zero-cost query reductions must be
    derived under those update levels — Step 2b's freeness is relative to
    the whole assignment.
    """
    from repro.analysis.ipm import characterize_application
    from repro.analysis.methodology import reduce_exposure_levels

    characterization = characterize_application(registry)
    reduced = reduce_exposure_levels(
        characterization, ExposurePolicy.maximum_exposure(registry)
    )
    free = [
        q.name
        for q in registry.queries
        if reduced.query_level(q.name) < ExposureLevel.VIEW
    ]
    costly = [q.name for q in registry.queries if q.name not in free]
    return reduced, free, costly


def _policy_encrypting(registry, curve_levels, free, costly, count: int):
    """Encrypt the results of the first ``count`` templates.

    The free set is encrypted at its zero-cost levels; once the free set is
    exhausted, further templates are reduced to ``template`` exposure —
    results *and* parameters hidden, the security an administrator would
    actually want — which is where the scalability price starts being paid.
    """
    policy = ExposurePolicy.maximum_exposure(registry)
    for name in free[:count]:
        policy = policy.with_query_level(name, curve_levels.query_level(name))
    for name in costly[: max(0, count - len(free))]:
        policy = policy.with_query_level(name, ExposureLevel.TEMPLATE)
    return policy


def test_fig3_security_scalability_tradeoff(benchmark, emit, sim_params):
    registry = get_application("bookstore").registry

    def experiment():
        outcome = design_exposure_policy(registry)
        curve_levels, free_names, costly_names = _curve_baseline(registry)
        free = len(free_names)
        # Every point of the curve (plus the two named endpoints) is an
        # independent deployment — one sweep task each.
        tasks = [
            bench_task(
                "bookstore",
                policy=_policy_encrypting(
                    registry, curve_levels, free_names, costly_names, count
                ),
                tag=count,
            )
            for count in sorted(set(SAMPLE_COUNTS) | {free})
        ]
        tasks.append(
            bench_task("bookstore", policy=outcome.final, tag="our_approach")
        )
        tasks.append(
            bench_task(
                "bookstore",
                policy=ExposurePolicy.full_encryption(registry),
                tag="full_encryption",
            )
        )
        by_tag = {
            cell.tag: cell.users
            for cell in bench_sweep(tasks, params=sim_params)
        }
        our_approach = by_tag.pop("our_approach")
        full_encryption = by_tag.pop("full_encryption")
        return free, by_tag, our_approach, full_encryption

    free, curve, our_approach, full_encryption = once(benchmark, experiment)

    lines = [
        f"{'#templates encrypted':>21} {'scalability':>12}",
        "-" * 35,
    ]
    for count, users in sorted(curve.items()):
        marker = ""
        if count == 0:
            marker = "   <- No Encryption"
        if count == free:
            marker = "   <- analysis-recommended set"
        lines.append(f"{count:>21} {users:>12}{marker}")
    lines.append(f"{'Our Approach':>21} {our_approach:>12}   (final policy)")
    lines.append(f"{'Full Encryption':>21} {full_encryption:>12}   (all blind)")
    emit("fig3_security_scalability_tradeoff", "\n".join(lines))

    no_encryption = curve[0]
    at_recommended = curve[free]
    # The flat region: encrypting the recommended set costs (almost) nothing.
    assert at_recommended >= 0.9 * no_encryption, (no_encryption, at_recommended)
    assert our_approach >= 0.9 * no_encryption
    # Full encryption collapses scalability (paper Figure 3's right edge).
    assert full_encryption < 0.75 * no_encryption
    # Encrypting past the recommended set starts costing scalability.
    assert curve[28] <= at_recommended
