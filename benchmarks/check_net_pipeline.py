"""Regression gate for the pipelined-transport benchmark.

Compares a freshly generated ``BENCH_net_pipeline.json`` against the
committed baseline and fails (exit 1) when the transport's headline
numbers regress:

* the pipelined speedup must clear the absolute acceptance floor
  (>= 2x by default — the PR's claim, not a relative drift bound), and
  stay within ``--tolerance`` of the committed baseline's speedup;
* batched fan-out must still send measurably fewer frames per delivered
  invalidation than singleton pushes (strictly below 1.0, and below the
  ``--fanout-ceiling``);
* every measured mode must complete with zero load-generator errors.

Usage::

    python benchmarks/check_net_pipeline.py BASELINE FRESH [options]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _load(path: str) -> dict:
    return json.loads(pathlib.Path(path).read_text())


def check(baseline: dict, fresh: dict, args) -> list[str]:
    failures: list[str] = []

    for name, mode in fresh["modes"].items():
        if mode["errors"]:
            failures.append(
                f"mode {name!r} finished with {mode['errors']} errors"
            )

    speedup = fresh["speedup_pipelined_vs_serial"]
    if speedup < args.speedup_floor:
        failures.append(
            f"pipelined speedup {speedup:.2f}x is below the acceptance "
            f"floor of {args.speedup_floor:.2f}x"
        )
    allowed = baseline["speedup_pipelined_vs_serial"] * args.tolerance
    if speedup < allowed:
        failures.append(
            f"pipelined speedup {speedup:.2f}x regressed below "
            f"{allowed:.2f}x (baseline "
            f"{baseline['speedup_pipelined_vs_serial']:.2f}x x tolerance "
            f"{args.tolerance})"
        )

    batched = fresh["fanout"]["batched"]["frames_per_invalidation"]
    unbatched = fresh["fanout"]["unbatched"]["frames_per_invalidation"]
    if not batched < unbatched:
        failures.append(
            f"batched fan-out ({batched:.3f} frames/invalidation) is not "
            f"below singleton pushes ({unbatched:.3f})"
        )
    if batched > args.fanout_ceiling:
        failures.append(
            f"batched fan-out ratio {batched:.3f} exceeds the ceiling of "
            f"{args.fanout_ceiling:.3f} frames/invalidation"
        )

    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_net_pipeline.json")
    parser.add_argument("fresh", help="freshly generated result to gate")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.6,
        help="fresh speedup must be >= baseline speedup x this "
        "(default 0.6: absorbs shared-runner noise, catches a "
        "serialized window)",
    )
    parser.add_argument(
        "--speedup-floor",
        type=float,
        default=2.0,
        help="absolute minimum pipelined speedup (default 2.0)",
    )
    parser.add_argument(
        "--fanout-ceiling",
        type=float,
        default=0.5,
        help="maximum batched frames/invalidation (default 0.5)",
    )
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    fresh = _load(args.fresh)
    failures = check(baseline, fresh, args)

    print(
        f"pipelined speedup: fresh "
        f"{fresh['speedup_pipelined_vs_serial']:.2f}x, baseline "
        f"{baseline['speedup_pipelined_vs_serial']:.2f}x "
        f"(floor {args.speedup_floor:.2f}x, tolerance {args.tolerance})"
    )
    print(
        f"batched fan-out: fresh "
        f"{fresh['fanout']['batched']['frames_per_invalidation']:.3f} "
        f"frames/invalidation vs unbatched "
        f"{fresh['fanout']['unbatched']['frames_per_invalidation']:.3f} "
        f"(ceiling {args.fanout_ceiling:.3f})"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: benchmark within regression bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
