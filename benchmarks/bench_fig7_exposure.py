"""Paper Figure 7 — exposure levels before and after the static analysis.

For each application, plots (as text) every query and update template's
exposure level: the *initial* level mandated by compulsory encryption of
highly-sensitive data (the dashed lines — California SB 1386 requires only
a little encryption), and the *final* level after Step 2b's free reductions
(the solid lines).  The area between them is the security gained for free.
"""

from repro.analysis.exposure import ExposureLevel
from repro.analysis.methodology import design_exposure_policy
from repro.workloads import APPLICATIONS, get_application

from benchmarks.conftest import once

_LEVEL_ORDER = ["blind", "template", "stmt", "view"]


def _render_app(name: str, registry, result) -> str:
    lines = [f"--- {name} ---"]
    for kind, templates in (
        ("query", registry.queries),
        ("update", registry.updates),
    ):
        rows = []
        for template in templates:
            if kind == "query":
                initial = result.initial.query_level(template.name)
                final = result.final.query_level(template.name)
            else:
                initial = result.initial.update_level(template.name)
                final = result.final.update_level(template.name)
            rows.append((template.name, initial, final))
        # Figure 7 sorts templates by increasing exposure.
        rows.sort(key=lambda row: (row[2], row[1], row[0]))
        lines.append(f"  {kind} templates (initial -> final):")
        for template_name, initial, final in rows:
            arrow = "  == " if initial == final else "  -> "
            lines.append(
                f"    {template_name:<28} {initial.label:>8}{arrow}{final.label}"
            )
        reduced = sum(1 for _, i, f in rows if f < i)
        lines.append(f"  ({reduced} of {len(rows)} {kind} templates reduced)")
    return "\n".join(lines)


def test_fig7_exposure_reduction(benchmark, emit):
    def experiment():
        out = {}
        for name in APPLICATIONS:
            registry = get_application(name).registry
            out[name] = (registry, design_exposure_policy(registry))
        return out

    results = once(benchmark, experiment)
    text = "\n\n".join(
        _render_app(name, registry, result)
        for name, (registry, result) in results.items()
    )
    emit("fig7_exposure_reduction", text)

    for name, (registry, result) in results.items():
        # Step 1 touches only a few templates (little compulsory encryption).
        initial_reduced = sum(
            1
            for q in registry.queries
            if result.initial.query_level(q.name) < ExposureLevel.VIEW
        )
        assert initial_reduced <= len(registry.queries) / 3, name

        # Step 2b achieves a substantial additional reduction.
        final_reduced = sum(
            1
            for q in registry.queries
            if result.final.query_level(q.name) < ExposureLevel.VIEW
        )
        assert final_reduced >= len(registry.queries) / 2, name
        assert final_reduced > initial_reduced, name

        # Levels never increase.
        for q in registry.queries:
            assert result.final.query_level(q.name) <= result.initial.query_level(
                q.name
            )
        for u in registry.updates:
            assert result.final.update_level(
                u.name
            ) <= result.initial.update_level(u.name)
