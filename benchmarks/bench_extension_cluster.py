"""Extension — multi-node DSSP deployments (the Figure 1 architecture).

The paper evaluates a single DSSP node; its architecture diagram shows a
fleet close to the clients.  This benchmark partitions the client
population across 1/2/4/8 nodes (with invalidation fan-out) and measures
the fleet hit rate and home-server-bound scalability.

Expected result: cache partitioning *dilutes* each node's working set, so
the home server absorbs more misses as the fleet grows — scalability is
flat-to-decreasing in node count while the home server is the bottleneck.
This quantifies how much the paper's scalability story depends on cache
*sharing*, not just cache placement.
"""

from repro.analysis.exposure import ExposurePolicy
from repro.crypto import Keyring
from repro.dssp import HomeServer, StrategyClass
from repro.dssp.cluster import DsspCluster, measure_cluster_behavior
from repro.simulation import find_scalability
from repro.workloads import get_application

from benchmarks.conftest import BENCH_PAGES, BENCH_SCALE, once

NODE_COUNTS = (1, 2, 4, 8)


def _run(nodes: int):
    app = get_application("bookstore")
    instance = app.instantiate(scale=BENCH_SCALE, seed=1)
    policy = ExposurePolicy.uniform(
        app.registry, StrategyClass.MVIS.exposure_level
    )
    home = HomeServer(
        "bookstore", instance.database, app.registry, policy, Keyring("bookstore")
    )
    cluster = DsspCluster(nodes=nodes)
    cluster.register_application(home)
    behavior = measure_cluster_behavior(
        cluster, home, instance.sampler, pages=BENCH_PAGES, clients=48, seed=5
    )
    return behavior


def test_extension_cluster_dilution(benchmark, emit, sim_params):
    def experiment():
        results = {}
        for nodes in NODE_COUNTS:
            behavior = _run(nodes)
            users = find_scalability(sim_params, behavior=behavior)
            results[nodes] = (behavior.hit_rate, users)
        return results

    results = once(benchmark, experiment)
    lines = [
        f"{'nodes':>6} {'fleet hit rate':>15} {'scalability':>12}",
        "-" * 36,
    ]
    for nodes, (hit_rate, users) in results.items():
        lines.append(f"{nodes:>6} {hit_rate:>15.3f} {users:>12}")
    emit("extension_cluster_dilution", "\n".join(lines))

    hit_rates = [results[n][0] for n in NODE_COUNTS]
    # Dilution: fleet hit rate decreases (weakly) with node count.
    for fewer, more in zip(hit_rates, hit_rates[1:]):
        assert more <= fewer + 0.02
    assert hit_rates[-1] < hit_rates[0]
    # Scalability never improves from partitioning a home-bound system.
    users = [results[n][1] for n in NODE_COUNTS]
    assert users[-1] <= users[0]
