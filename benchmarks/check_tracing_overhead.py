"""Regression gate for the tracing-overhead benchmark.

Compares a freshly generated ``BENCH_tracing_overhead.json`` against the
committed baseline and fails (exit 1) when head-sampled tracing starts
taxing the hot path:

* the traced/untraced throughput ratio must clear the absolute
  acceptance floor (>= 0.95 by default — the PR's <= 5% overhead claim);
* the fresh ratio must stay within ``--tolerance`` of the committed
  baseline's ratio, so a recorder change that quietly doubles the cost
  turns the build red even while still under the absolute floor;
* both runs must complete with zero load-generator errors, and the
  traced run must actually have recorded spans (a gate over a silently
  disabled recorder measures nothing).

Usage::

    python benchmarks/check_tracing_overhead.py BASELINE FRESH [options]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _load(path: str) -> dict:
    return json.loads(pathlib.Path(path).read_text())


def check(baseline: dict, fresh: dict, args) -> list[str]:
    failures: list[str] = []

    for name, mode in fresh["modes"].items():
        if mode["errors"]:
            failures.append(
                f"mode {name!r} finished with {mode['errors']} errors"
            )

    spans = fresh["modes"]["traced_1pct"]["spans_recorded"]
    if spans <= 0:
        failures.append(
            "traced run recorded zero spans — the recorder was disabled, "
            "so the overhead measurement is vacuous"
        )

    ratio = fresh["throughput_ratio_traced_vs_untraced"]
    if ratio < args.ratio_floor:
        failures.append(
            f"traced/untraced throughput ratio {ratio:.3f} is below the "
            f"acceptance floor of {args.ratio_floor:.3f} "
            f"(overhead {100 * (1 - ratio):.1f}% > "
            f"{100 * (1 - args.ratio_floor):.1f}%)"
        )
    allowed = baseline["throughput_ratio_traced_vs_untraced"] * args.tolerance
    if ratio < allowed:
        failures.append(
            f"throughput ratio {ratio:.3f} regressed below {allowed:.3f} "
            f"(baseline "
            f"{baseline['throughput_ratio_traced_vs_untraced']:.3f} x "
            f"tolerance {args.tolerance})"
        )

    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "baseline", help="committed BENCH_tracing_overhead.json"
    )
    parser.add_argument("fresh", help="freshly generated result to gate")
    parser.add_argument(
        "--ratio-floor",
        type=float,
        default=0.95,
        help="absolute minimum traced/untraced throughput ratio "
        "(default 0.95: the <= 5%% overhead claim)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.93,
        help="fresh ratio must be >= baseline ratio x this (default "
        "0.93: absorbs shared-runner noise, catches a recorder that "
        "got expensive)",
    )
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    fresh = _load(args.fresh)
    failures = check(baseline, fresh, args)

    print(
        f"tracing overhead: fresh ratio "
        f"{fresh['throughput_ratio_traced_vs_untraced']:.3f} "
        f"({100 * fresh['overhead_fraction']:.1f}% overhead), baseline "
        f"{baseline['throughput_ratio_traced_vs_untraced']:.3f} "
        f"(floor {args.ratio_floor:.3f}, tolerance {args.tolerance})"
    )
    print(
        f"traced run recorded "
        f"{fresh['modes']['traced_1pct']['spans_recorded']} spans at "
        f"{fresh['topology']['sample_rate']:.0%} sampling"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: benchmark within regression bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
