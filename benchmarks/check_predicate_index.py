"""Regression gate for the predicate-index benchmark.

Compares a freshly generated ``BENCH_predicate_index.json`` against the
committed baseline and fails (exit 1) when the index's headline claims
regress:

* per strategy, the index-on arm must match the sweep arm exactly on hit
  rate and invalidations per update — the index is a pure cost
  optimization, any behavioral divergence is a correctness bug;
* per strategy, the per-update check reduction must clear
  ``--reduction-floor`` and stay within ``--tolerance`` of the committed
  baseline's;
* the index must have actually fired (non-zero narrowing and postings).

Usage::

    python benchmarks/check_predicate_index.py BASELINE FRESH [options]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _load(path: str) -> dict:
    return json.loads(pathlib.Path(path).read_text())


def check(baseline: dict, fresh: dict, args) -> list[str]:
    failures: list[str] = []
    for name, entry in fresh["strategies"].items():
        swept, indexed = entry["sweep"], entry["indexed"]
        if indexed["hit_rate"] != swept["hit_rate"]:
            failures.append(
                f"{name}: hit rate diverged (indexed "
                f"{indexed['hit_rate']:.4f} vs sweep "
                f"{swept['hit_rate']:.4f}) — behavioral bug, not a perf "
                "regression"
            )
        if (
            indexed["invalidations_per_update"]
            != swept["invalidations_per_update"]
        ):
            failures.append(
                f"{name}: invalidations/update diverged (indexed "
                f"{indexed['invalidations_per_update']:.4f} vs sweep "
                f"{swept['invalidations_per_update']:.4f})"
            )
        reduction = entry["check_reduction"]
        if reduction < args.reduction_floor:
            failures.append(
                f"{name}: check reduction {reduction:.2f}x is below the "
                f"acceptance floor of {args.reduction_floor:.2f}x"
            )
        allowed = (
            baseline["strategies"][name]["check_reduction"] * args.tolerance
        )
        if reduction < allowed:
            failures.append(
                f"{name}: check reduction {reduction:.2f}x regressed below "
                f"{allowed:.2f}x (baseline "
                f"{baseline['strategies'][name]['check_reduction']:.2f}x x "
                f"tolerance {args.tolerance})"
            )
        if indexed["index_narrowed"] <= 0 or indexed["index_postings"] <= 0:
            failures.append(f"{name}: the index never narrowed anything")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "baseline", help="committed BENCH_predicate_index.json"
    )
    parser.add_argument("fresh", help="freshly generated result to gate")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.6,
        help="fresh reduction must be >= baseline x this (default 0.6)",
    )
    parser.add_argument(
        "--reduction-floor",
        type=float,
        default=1.1,
        help="absolute minimum per-update check reduction (default 1.1x)",
    )
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    fresh = _load(args.fresh)
    failures = check(baseline, fresh, args)

    for name, entry in fresh["strategies"].items():
        print(
            f"{name}: check reduction fresh {entry['check_reduction']:.2f}x, "
            f"baseline "
            f"{baseline['strategies'][name]['check_reduction']:.2f}x "
            f"(floor {args.reduction_floor:.2f}x, tolerance "
            f"{args.tolerance})"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: benchmark within regression bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
