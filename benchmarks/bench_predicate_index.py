"""Extension — predicate-indexed invalidation vs the bucket sweep.

The invalidation engine's stmt/view-exposure cost is per-entry: every
update visits every resident entry of every non-independent template
bucket and runs the decision procedure.  The predicate index keys each
entry by its bound selection values, so an update visits only the
entries its pinned values could touch — O(affected) instead of
O(bucket) — while invalidating the *identical* set (the equivalence the
hypothesis suite proves).

This benchmark measures both arms on the Zipf bookstore workload at
``stmt`` and ``view`` exposure:

* per-update decision cost (entries visited per update — the fan-out
  the index shrinks) and wall-clock invalidation time;
* hit rate and invalidations per update, which must *match* between
  arms (the index is a pure cost optimization).

The JSON artifact (``results/BENCH_predicate_index.json``) is committed
and regression-gated in CI by ``benchmarks/check_predicate_index.py``:
the per-update check reduction and the on/off behavioral equality are
what the gate protects.
"""

from __future__ import annotations

import json

from repro.dssp import StrategyClass
from repro.simulation.scalability import measure_cache_behavior

from benchmarks.conftest import BENCH_PAGES, deploy, once

STRATEGIES = (StrategyClass.MSIS, StrategyClass.MVIS)
SEED = 5


def _measure(strategy: StrategyClass, predicate_index: bool) -> dict:
    node, home, sampler = deploy(
        "bookstore", strategy=strategy, predicate_index=predicate_index
    )
    behavior = measure_cache_behavior(
        node, home, sampler, pages=BENCH_PAGES, seed=SEED
    )
    stats = node.stats
    updates = stats.updates or 1
    return {
        "hit_rate": behavior.hit_rate,
        "invalidations_per_update": stats.invalidations / updates,
        "checks_per_update": stats.invalidation_checks / updates,
        "invalidation_time_s": stats.invalidation_time_s,
        "index_lookups": stats.index_lookups,
        "index_narrowed": stats.index_narrowed,
        "index_postings": node.cache.index_postings(),
    }


def _experiment() -> dict:
    result: dict = {"pages": BENCH_PAGES, "seed": SEED, "strategies": {}}
    for strategy in STRATEGIES:
        swept = _measure(strategy, predicate_index=False)
        indexed = _measure(strategy, predicate_index=True)
        result["strategies"][strategy.name] = {
            "sweep": swept,
            "indexed": indexed,
            "check_reduction": (
                swept["checks_per_update"]
                / max(indexed["checks_per_update"], 1e-9)
            ),
        }
    result["min_check_reduction"] = min(
        entry["check_reduction"] for entry in result["strategies"].values()
    )
    return result


def _render(result) -> str:
    lines = [
        f"{'strategy':>8} {'arm':>8} {'hit rate':>9} {'inval/upd':>10} "
        f"{'checks/upd':>11} {'narrowed':>9}",
        "-" * 62,
    ]
    for name, entry in result["strategies"].items():
        for arm in ("sweep", "indexed"):
            row = entry[arm]
            lines.append(
                f"{name:>8} {arm:>8} {row['hit_rate']:>9.3f} "
                f"{row['invalidations_per_update']:>10.3f} "
                f"{row['checks_per_update']:>11.2f} "
                f"{row['index_narrowed']:>9}"
            )
        lines.append(
            f"{name:>8} check reduction: {entry['check_reduction']:.2f}x"
        )
    return "\n".join(lines)


def test_predicate_index_reduces_invalidation_cost(
    benchmark, emit, results_dir
):
    result = once(benchmark, _experiment)
    emit("predicate_index", _render(result))
    artifact = results_dir / "BENCH_predicate_index.json"
    artifact.write_text(json.dumps(result, indent=2) + "\n")

    for name, entry in result["strategies"].items():
        swept, indexed = entry["sweep"], entry["indexed"]
        # Pure cost optimization: observable behavior must match.
        assert indexed["hit_rate"] == swept["hit_rate"], name
        assert (
            indexed["invalidations_per_update"]
            == swept["invalidations_per_update"]
        ), name
        # The point of the index: fewer per-entry decisions per update.
        assert entry["check_reduction"] > 1.1, (name, entry)
        assert indexed["index_narrowed"] > 0, name
        assert indexed["index_postings"] > 0, name
