"""Regression gate for the sharded-cluster benchmark.

Compares a freshly generated ``BENCH_sharded_cluster.json`` against the
committed baseline and fails (exit 1) when the sharded cluster's headline
claims regress:

* the sharded hit rate must be non-decreasing in node count (within
  ``--monotonic-slack``) — the single-logical-cache property;
* at the largest fleet, sharded must beat partitioned by at least
  ``--gain-floor`` hit rate (the flip from dilution to speedup), and the
  gain must stay within ``--tolerance`` of the committed baseline's;
* at one node, sharded and partitioned must agree (same machine).

Usage::

    python benchmarks/check_sharded_cluster.py BASELINE FRESH [options]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _load(path: str) -> dict:
    return json.loads(pathlib.Path(path).read_text())


def check(baseline: dict, fresh: dict, args) -> list[str]:
    failures: list[str] = []
    counts = [str(n) for n in fresh["node_counts"]]
    sharded = [fresh["sharded"][n]["hit_rate"] for n in counts]
    partitioned = [fresh["partitioned"][n]["hit_rate"] for n in counts]

    if abs(sharded[0] - partitioned[0]) > 0.02:
        failures.append(
            f"single-node parity broken: sharded {sharded[0]:.3f} vs "
            f"partitioned {partitioned[0]:.3f}"
        )

    for fewer, more, nodes in zip(sharded, sharded[1:], counts[1:]):
        if more < fewer - args.monotonic_slack:
            failures.append(
                f"sharded hit rate fell to {more:.3f} at {nodes} nodes "
                f"(was {fewer:.3f}; slack {args.monotonic_slack})"
            )

    gain = fresh["sharded_gain_at_max"]
    if gain < args.gain_floor:
        failures.append(
            f"sharded gain {gain:.3f} at {counts[-1]} nodes is below the "
            f"acceptance floor of {args.gain_floor:.3f}"
        )
    allowed = baseline["sharded_gain_at_max"] * args.tolerance
    if gain < allowed:
        failures.append(
            f"sharded gain {gain:.3f} regressed below {allowed:.3f} "
            f"(baseline {baseline['sharded_gain_at_max']:.3f} x tolerance "
            f"{args.tolerance})"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "baseline", help="committed BENCH_sharded_cluster.json"
    )
    parser.add_argument("fresh", help="freshly generated result to gate")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.6,
        help="fresh gain must be >= baseline gain x this (default 0.6)",
    )
    parser.add_argument(
        "--gain-floor",
        type=float,
        default=0.1,
        help="absolute minimum sharded-vs-partitioned hit-rate gain at "
        "the largest fleet (default 0.1)",
    )
    parser.add_argument(
        "--monotonic-slack",
        type=float,
        default=0.02,
        help="tolerated hit-rate dip between consecutive fleet sizes",
    )
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    fresh = _load(args.fresh)
    failures = check(baseline, fresh, args)

    counts = [str(n) for n in fresh["node_counts"]]
    print(
        f"sharded gain at {counts[-1]} nodes: fresh "
        f"{fresh['sharded_gain_at_max']:.3f}, baseline "
        f"{baseline['sharded_gain_at_max']:.3f} "
        f"(floor {args.gain_floor:.3f}, tolerance {args.tolerance})"
    )
    print(
        "sharded hit rates: "
        + " ".join(
            f"{n}:{fresh['sharded'][n]['hit_rate']:.3f}" for n in counts
        )
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: benchmark within regression bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
