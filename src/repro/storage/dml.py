"""Application of update statements (INSERT / DELETE / UPDATE) to table data.

Enforces the paper's update model (Section 2.1):

* insertions fully specify a row;
* deletions select rows by an arithmetic predicate over one relation;
* modifications change only **non-key** attributes of the row selected by an
  **equality predicate over the full primary key** (strict mode).

Integrity constraints enforced: primary-key uniqueness, NOT NULL (and
implicit NOT NULL of key columns), and foreign-key existence on insert and
on parent delete (restrict semantics, optional).
"""

from __future__ import annotations

from repro.errors import (
    ExecutionError,
    ForeignKeyViolation,
    NotNullViolation,
    PrimaryKeyViolation,
    UnsupportedSqlError,
)
from repro.schema.schema import Schema
from repro.schema.table import TableSchema
from repro.sql.ast import (
    ColumnRef,
    Comparison,
    ComparisonOp,
    Delete,
    Insert,
    Literal,
    Parameter,
    Scalar,
    Update,
)
from repro.storage.rows import Row

__all__ = [
    "apply_insert",
    "apply_delete",
    "apply_update",
    "validate_insert_row",
    "validate_update_assignments",
]


def _literal_value(value: Literal | Parameter, context: str) -> Scalar:
    if isinstance(value, Parameter):
        raise ExecutionError(f"unbound parameter in {context}")
    return value.value


def _key_of(table: TableSchema, row: Row) -> tuple[Scalar, ...]:
    return tuple(row[table.position(column)] for column in table.primary_key)


def validate_insert_row(schema: Schema, insert: Insert) -> tuple[TableSchema, Row]:
    """Validate an INSERT's shape and values; return the coerced row.

    Shared by every backend so that the column-coverage, NOT NULL, and type
    checks — and the order they fire in — are engine-independent.

    Raises:
        UnsupportedSqlError: unknown or missing columns.
        NotNullViolation: NULL in a NOT NULL or key column.
        TypeMismatchError: value not storable in the column's type.
    """
    table = schema.table(insert.table)
    provided = dict(zip(insert.columns, insert.values))
    unknown = set(insert.columns) - set(table.column_names)
    if unknown:
        raise UnsupportedSqlError(
            f"INSERT into {table.name!r} names unknown columns {sorted(unknown)}"
        )
    missing = set(table.column_names) - set(insert.columns)
    if missing:
        raise UnsupportedSqlError(
            f"INSERT must fully specify a row; missing columns {sorted(missing)} "
            f"of table {table.name!r}"
        )

    row_values: list[Scalar] = []
    for column in table.columns:
        value = _literal_value(provided[column.name], "INSERT VALUES")
        if value is None:
            if not column.nullable or table.is_key_column(column.name):
                raise NotNullViolation(
                    f"column {table.name}.{column.name} cannot be NULL"
                )
            row_values.append(None)
        else:
            row_values.append(column.type.coerce(value))
    return table, tuple(row_values)


def apply_insert(
    schema: Schema,
    data: dict[str, list[Row]],
    insert: Insert,
    enforce_foreign_keys: bool = True,
    indexes=None,
) -> int:
    """Insert one fully-specified row; returns 1 (rows affected).

    With ``indexes`` (a :class:`~repro.storage.indexes.DatabaseIndexes`),
    duplicate-key and parent-existence checks are O(1) instead of scans,
    and all index structures are maintained.

    Raises:
        PrimaryKeyViolation: duplicate key.
        ForeignKeyViolation: referenced parent row missing.
        NotNullViolation: NULL in a NOT NULL or key column.
    """
    table, row = validate_insert_row(schema, insert)

    if table.primary_key:
        new_key = _key_of(table, row)
        if indexes is not None and indexes.primary.indexes_table(table.name):
            duplicate = indexes.primary.contains(table.name, new_key)
        else:
            duplicate = any(
                _key_of(table, existing) == new_key
                for existing in data.get(table.name, ())
            )
        if duplicate:
            raise PrimaryKeyViolation(
                f"duplicate primary key {new_key!r} in table {table.name!r}"
            )

    if enforce_foreign_keys:
        _check_outgoing_foreign_keys(schema, data, table, row, indexes)

    data.setdefault(table.name, []).append(row)
    if indexes is not None:
        indexes.add(table.name, row)
    return 1


def _check_outgoing_foreign_keys(
    schema: Schema,
    data: dict[str, list[Row]],
    table: TableSchema,
    row: Row,
    indexes=None,
) -> None:
    for foreign_key in table.foreign_keys:
        value = row[table.position(foreign_key.column)]
        if value is None:
            continue  # NULL FK is permitted
        target = schema.table(foreign_key.ref_table)
        if (
            indexes is not None
            and indexes.primary.indexes_table(target.name)
            and indexes.primary.single_column_key(target.name)
        ):
            # FKs reference single-column primary keys (schema-validated).
            exists = indexes.primary.contains_value(
                target.name, foreign_key.ref_column, value
            )
        else:
            position = target.position(foreign_key.ref_column)
            exists = any(
                parent[position] == value
                for parent in data.get(target.name, ())
            )
        if not exists:
            raise ForeignKeyViolation(
                f"{foreign_key.describe(table.name)}: no parent row with "
                f"{foreign_key.ref_column} = {value!r}"
            )


def apply_delete(
    schema: Schema,
    data: dict[str, list[Row]],
    delete: Delete,
    enforce_foreign_keys: bool = False,
    indexes=None,
) -> int:
    """Delete rows matching the predicate; returns the number removed.

    With ``enforce_foreign_keys`` (restrict semantics), refuses to remove a
    row that is still referenced by a child table.
    """
    table = schema.table(delete.table)
    rows = data.get(table.name, [])
    check = _compile_predicate(table, delete.where)
    keep: list[Row] = []
    removed: list[Row] = []
    for row in rows:
        (removed if check(row) else keep).append(row)
    if not removed:
        return 0
    if enforce_foreign_keys:
        incoming = schema.foreign_keys_into(table.name)
        for row in removed:
            _check_no_children(schema, data, table, row, incoming)
    data[table.name] = keep
    if indexes is not None:
        for row in removed:
            indexes.remove(table.name, row)
    return len(removed)


def _check_no_children(
    schema: Schema,
    data: dict[str, list[Row]],
    table: TableSchema,
    row: Row,
    incoming,
) -> None:
    for owner_name, foreign_key in incoming:
        owner = schema.table(owner_name)
        position = owner.position(foreign_key.column)
        value = row[table.position(foreign_key.ref_column)]
        if any(child[position] == value for child in data.get(owner_name, ())):
            raise ForeignKeyViolation(
                f"cannot delete {table.name} row: still referenced via "
                f"{foreign_key.describe(owner_name)}"
            )


def apply_update(
    schema: Schema,
    data: dict[str, list[Row]],
    update: Update,
    strict_model: bool = True,
    indexes=None,
) -> int:
    """Apply a modification; returns the number of rows changed.

    In strict mode (the paper's model), requires the WHERE clause to be an
    equality over the full primary key and forbids assignments to key
    columns.
    """
    table = schema.table(update.table)
    if strict_model:
        _check_modification_model(table, update)

    assignments = [
        (table.position(column_name), scalar)
        for column_name, scalar in validate_update_assignments(table, update)
    ]

    check = _compile_predicate(table, update.where)
    rows = data.get(table.name, [])
    changed = 0
    for index, row in enumerate(rows):
        if not check(row):
            continue
        new_row = list(row)
        for position, scalar in assignments:
            new_row[position] = scalar
        if tuple(new_row) != row:
            replacement = tuple(new_row)
            rows[index] = replacement
            if indexes is not None:
                indexes.replace(table.name, row, replacement)
            changed += 1
    return changed


def validate_update_assignments(
    table: TableSchema, update: Update
) -> tuple[tuple[str, Scalar], ...]:
    """Validate SET values (NOT NULL, type); return coerced (column, value).

    Shared by every backend, like :func:`validate_insert_row`.
    """
    assignments: list[tuple[str, Scalar]] = []
    for column_name, value in update.assignments:
        column = table.column(column_name)
        scalar = _literal_value(value, "SET clause")
        if scalar is None:
            if not column.nullable or table.is_key_column(column_name):
                raise NotNullViolation(
                    f"column {table.name}.{column_name} cannot be NULL"
                )
        else:
            scalar = column.type.coerce(scalar)
        assignments.append((column_name, scalar))
    return tuple(assignments)


def _check_modification_model(table: TableSchema, update: Update) -> None:
    """Enforce: equality predicate over the full primary key, non-key SETs."""
    for column_name, _ in update.assignments:
        if table.is_key_column(column_name):
            raise UnsupportedSqlError(
                f"modification of key column {table.name}.{column_name} is "
                "outside the paper's update model"
            )
    matched: set[str] = set()
    for comparison in update.where:
        if comparison.op is not ComparisonOp.EQ or comparison.is_join():
            raise UnsupportedSqlError(
                "modifications must select rows via equality on the primary key"
            )
        for ref in comparison.column_refs():
            matched.add(ref.column)
    if set(table.primary_key) - matched:
        raise UnsupportedSqlError(
            f"modification WHERE clause must cover the full primary key "
            f"{table.primary_key} of {table.name!r}"
        )


def _compile_predicate(table: TableSchema, where: tuple[Comparison, ...]):
    """Compile a single-table predicate into a row → bool callable."""

    def side(value):
        if isinstance(value, Literal):
            constant = value.value
            return lambda row: constant
        if isinstance(value, Parameter):
            raise ExecutionError("unbound parameter in update predicate")
        if isinstance(value, ColumnRef):
            if value.table is not None and value.table != table.name:
                raise UnsupportedSqlError(
                    f"update predicate references foreign table {value.table!r}"
                )
            position = table.position(value.column)
            return lambda row: row[position]
        raise ExecutionError(f"bad predicate operand {value!r}")

    compiled = [(c.op, side(c.left), side(c.right)) for c in where]

    def check(row: Row) -> bool:
        return all(op.holds(l(row), r(row)) for op, l, r in compiled)

    return check
