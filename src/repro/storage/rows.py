"""Rows and query results.

A stored row is a plain tuple of scalars, positionally aligned with its
table's column order.  A :class:`ResultSet` is what query execution returns
and what the DSSP caches: a column header plus row tuples, with multiset
semantics (paper Section 2.1 — projection does not eliminate duplicates).

Two result sets are *equivalent* when they contain the same rows; order is
significant only if the producing query had an ORDER BY (the ``ordered``
flag).  This is exactly the notion of "the view changed" that invalidation
correctness (paper Section 2.2) is defined against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.ast import Scalar

__all__ = ["ResultSet", "Row", "sort_key"]

#: A stored or result row.
Row = tuple[Scalar, ...]


def sort_key(row: Row) -> tuple:
    """Total-order key over heterogeneous rows (NULLs sort last).

    Used both to canonicalize unordered results for comparison and by the
    executor's ORDER BY (ascending form).
    """
    key = []
    for value in row:
        if value is None:
            key.append((2, 0, ""))
        elif isinstance(value, str):
            key.append((1, 0, value))
        else:
            key.append((0, value, ""))
    return tuple(key)


@dataclass(frozen=True)
class ResultSet:
    """An immutable query result.

    Attributes:
        columns: Display names of the output columns.
        rows: Result rows, in execution order.
        ordered: True if the producing query had an ORDER BY (or top-k),
            making row order part of the result's identity.
    """

    columns: tuple[str, ...]
    rows: tuple[Row, ...]
    ordered: bool = False
    _signature: tuple[Row, ...] = field(
        init=False, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        if self.ordered:
            signature = self.rows
        else:
            signature = tuple(sorted(self.rows, key=sort_key))
        object.__setattr__(self, "_signature", signature)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    @property
    def empty(self) -> bool:
        """True if the result has no rows."""
        return not self.rows

    def signature(self) -> tuple[Row, ...]:
        """Canonical row sequence: sorted when unordered, as-is when ordered."""
        return self._signature

    def equivalent(self, other: "ResultSet") -> bool:
        """True if this result denotes the same view contents as ``other``.

        Multiset comparison for unordered results, sequence comparison for
        ordered ones.  Column headers must match — results of different
        queries are never equivalent.
        """
        return (
            self.columns == other.columns
            and self.ordered == other.ordered
            and self.signature() == other.signature()
        )

    def column_values(self, column: str) -> tuple[Scalar, ...]:
        """Return all values of the named output column, in row order.

        Raises:
            KeyError: if the column is not part of this result.
        """
        try:
            position = self.columns.index(column)
        except ValueError:
            raise KeyError(column) from None
        return tuple(row[position] for row in self.rows)
