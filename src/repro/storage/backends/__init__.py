"""Pluggable storage backends for the home's master database.

The home server only needs a small surface from its database — execute a
bound SELECT, apply a bound update, clone/snapshot for the oracle, a
version stamp for memoization.  :class:`Backend` captures that surface;
:class:`InMemoryBackend` adapts the existing pure-Python engine and
:class:`SqliteBackend` compiles the same dialect to stdlib SQLite for
durable, million-row masters.  ``create_backend`` is the registry the CLI
and harnesses go through (``--backend {memory,sqlite}``).

Both backends share one canonical ORDER BY/LIMIT semantics (see
:mod:`repro.storage.backends.base`), which is what makes them
row-for-row interchangeable — the differential parity suite holds them
to it.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import WorkloadError
from repro.schema.schema import Schema
from repro.storage.backends.base import Backend, CanonicalOrderer
from repro.storage.backends.memory import InMemoryBackend
from repro.storage.backends.sqlite import SqliteBackend
from repro.storage.database import Database

__all__ = [
    "BACKENDS",
    "Backend",
    "CanonicalOrderer",
    "InMemoryBackend",
    "SqliteBackend",
    "create_backend",
    "wrap_database",
]

#: Registered backend kinds, as accepted by ``--backend``.
BACKENDS = ("memory", "sqlite")


def create_backend(
    kind: str,
    schema: Schema,
    *,
    path: str | Path | None = None,
    enforce_foreign_keys: bool = True,
    strict_model: bool = True,
) -> Backend:
    """Build an empty backend of the given kind over ``schema``."""
    if kind == "memory":
        return InMemoryBackend.create(
            schema,
            enforce_foreign_keys=enforce_foreign_keys,
            strict_model=strict_model,
        )
    if kind == "sqlite":
        return SqliteBackend(
            schema,
            path=path,
            enforce_foreign_keys=enforce_foreign_keys,
            strict_model=strict_model,
        )
    raise WorkloadError(
        f"unknown storage backend {kind!r}; expected one of {BACKENDS}"
    )


def wrap_database(
    kind: str, database: Database, *, path: str | Path | None = None
) -> Backend:
    """Put a generated in-memory database behind a backend of ``kind``.

    ``memory`` wraps the database in place; ``sqlite`` copies it into a
    SQLite store at ``path`` (or in memory) — unless the path already
    holds data, in which case the durable contents win (restart survival).
    """
    if kind == "memory":
        return InMemoryBackend(database)
    if kind == "sqlite":
        return SqliteBackend.from_database(database, path=path)
    raise WorkloadError(
        f"unknown storage backend {kind!r}; expected one of {BACKENDS}"
    )
