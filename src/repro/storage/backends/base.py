"""The storage-backend seam: protocol + canonical ORDER BY/LIMIT semantics.

A :class:`Backend` is exactly what the home server needs from its master
database (duck-type compatible with :class:`~repro.storage.database.Database`):
execute a bound SELECT to a :class:`~repro.storage.rows.ResultSet`, apply a
bound update statement, bulk-load trusted rows, snapshot/clone for the
oracle, and expose a monotone version stamp for result memoization.

**Canonical ordering.**  The one place engines legitimately disagree is tie
order under ORDER BY (and therefore *which* rows a LIMIT keeps when ties
straddle the cutoff): the in-memory engine breaks ties by join order,
SQLite by whatever its scan produces.  Backends therefore execute the
order/limit-free *core* of an ordered query and apply one shared,
deterministic canonicalization in Python:

1. sort all rows by the full projected row's :func:`sort_key` (ascending,
   the global tie-break);
2. stable-sort per ORDER BY key, last key first, descending keys reversed;
3. slice LIMIT.

Both backends run the identical step 1–3 code, so their ordered results
are row-for-row identical — the property the differential parity suite
asserts.  The raw :class:`~repro.storage.database.Database` keeps its
original (join-order tie) behaviour; canonicalization lives only at the
backend seam.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, replace
from typing import Protocol, runtime_checkable

from repro.errors import ExecutionError
from repro.schema.schema import Schema
from repro.sql.ast import Parameter, Select, Statement
from repro.storage.rows import ResultSet, Row, sort_key

__all__ = ["Backend", "CanonicalOrderer"]


@runtime_checkable
class Backend(Protocol):
    """What the home (and the oracle) needs from a master database."""

    #: Registry name of the backend kind ("memory", "sqlite", ...).
    name: str
    schema: Schema

    @property
    def version(self) -> int:
        """Monotone counter, incremented by every effective update."""
        ...

    def execute(self, select: Select) -> ResultSet: ...

    def apply(self, statement: Statement) -> int: ...

    def load(self, table: str, rows: Iterable[Row]) -> None: ...

    def rows(self, table: str) -> tuple[Row, ...]: ...

    def row_count(self, table: str) -> int: ...

    def total_rows(self) -> int: ...

    def clone(self) -> "Backend": ...

    def snapshot(self) -> dict[str, tuple[Row, ...]]: ...

    def restore(self, snapshot: dict[str, tuple[Row, ...]]) -> None: ...

    def close(self) -> None: ...


@dataclass(frozen=True, slots=True)
class _Plan:
    """How to canonicalize one ordered select.

    ``core`` is the order/limit-free statement actually executed; ``strip``
    how many sort-only columns were appended to its projection (removed
    again after sorting); ``positions`` where each ORDER BY key lives in
    the core result (None = resolve against the result's columns at run
    time, the aggregate case, where keys must already be projected).
    """

    core: Select
    strip: int
    positions: tuple[int, ...] | None


class CanonicalOrderer:
    """Shared ORDER BY/LIMIT canonicalization for all backends.

    Plans are memoized per statement identity (bound statements are shared
    objects — template binding is memoized), so the popular statements that
    dominate a workload compile their core select once.  Keeping a strong
    reference to the original statement pins its ``id`` for the lifetime of
    the memo entry, making identity keys safe.
    """

    #: Plan-memo entries kept before a wholesale clear.
    PLAN_MEMO_LIMIT = 2048

    def __init__(self) -> None:
        self._plans: dict[int, tuple[Select, _Plan]] = {}

    def execute(
        self, select: Select, run_core: Callable[[Select], ResultSet]
    ) -> ResultSet:
        """Execute ``select`` through ``run_core`` with canonical ordering.

        Unordered, unlimited selects pass through untouched.
        """
        if not select.order_by and select.limit is None:
            return run_core(select)
        if isinstance(select.limit, Parameter):
            raise ExecutionError("unbound parameter in LIMIT")
        plan = self._plan(select)
        result = run_core(plan.core)
        width = len(result.columns) - plan.strip
        if plan.positions is not None:
            positions = plan.positions
        else:
            # Aggregate path: ORDER BY keys must be output columns, same
            # rule (and error) as the in-memory executor.
            positions = tuple(
                self._output_position(result.columns, item.column.qualified())
                for item in select.order_by
            )
        rows = sorted(result.rows, key=sort_key)
        for item, position in reversed(list(zip(select.order_by, positions))):
            rows.sort(
                key=lambda row, p=position: sort_key((row[p],)),
                reverse=item.descending,
            )
        if select.limit is not None:
            rows = rows[: select.limit]
        if plan.strip:
            final_rows = tuple(row[:width] for row in rows)
        else:
            final_rows = tuple(rows)
        return ResultSet(
            columns=result.columns[:width],
            rows=final_rows,
            ordered=True,
        )

    # -- planning ------------------------------------------------------------

    def _plan(self, select: Select) -> _Plan:
        key = id(select)
        hit = self._plans.get(key)
        if hit is not None and hit[0] is select:
            return hit[1]
        if select.has_aggregate() or select.group_by:
            plan = _Plan(
                core=replace(select, order_by=(), limit=None),
                strip=0,
                positions=None,
            )
        else:
            # Append the ORDER BY columns to the projection so the sort can
            # read them, then strip that tail after sorting.  Appending even
            # already-projected keys keeps the positions static regardless
            # of how ``*`` expands.
            extra = tuple(item.column for item in select.order_by)
            plan = _Plan(
                core=replace(
                    select,
                    items=select.items + extra,
                    order_by=(),
                    limit=None,
                ),
                strip=len(extra),
                positions=tuple(range(-len(extra), 0)) if extra else (),
            )
        if len(self._plans) >= self.PLAN_MEMO_LIMIT:
            self._plans.clear()
        self._plans[key] = (select, plan)
        return plan

    @staticmethod
    def _output_position(columns: tuple[str, ...], name: str) -> int:
        try:
            return columns.index(name)
        except ValueError:
            raise ExecutionError(
                f"ORDER BY column {name!r} must appear in the "
                "aggregate select list"
            ) from None
