"""The SQLite backend: durable master databases on the stdlib engine.

Implements the :class:`~repro.storage.backends.base.Backend` protocol over
:mod:`sqlite3`, driven by the :class:`~repro.sql.dialect.SqliteDialect`
compiler.  The design goal is *observational equivalence* with the
in-memory engine — same results, same affected-row counts, same exception
types in the same order — which the differential parity suite enforces.
Three decisions follow from it:

* **Constraints are checked in Python, before SQLite runs the statement.**
  NOT NULL / type / statement-shape checks reuse the exact validators of
  :mod:`repro.storage.dml`; primary-key and foreign-key existence are O(1)
  indexed point SELECTs.  SQLite's own FK enforcement stays off
  (``PRAGMA foreign_keys = OFF``) because its semantics differ from the
  paper's model — e.g. modifications are never FK-checked there.
* **Ordering is canonicalized in Python** via the shared
  :class:`~repro.storage.backends.base.CanonicalOrderer`, so ORDER BY tie
  order and LIMIT cutoffs cannot depend on SQLite scan order.
* **Modifications carry an effective-change guard** (``AND NOT (col IS ?
  ...)``) so ``rowcount`` counts only rows the update actually changed,
  like the in-memory engine — the invalidation layer keys off that count.

Durability: with a file path, the connection runs in autocommit with WAL
journaling, so every acked update is on disk when ``apply`` returns; a
process that dies and reopens the same path resumes from the last acked
state (the chaos oracle's home-kill scenario proves this end to end).
"""

from __future__ import annotations

import sqlite3
from collections.abc import Iterable
from pathlib import Path

from repro.errors import (
    ExecutionError,
    ForeignKeyViolation,
    PrimaryKeyViolation,
)
from repro.obs.trace import span as trace_span
from repro.schema.schema import Schema
from repro.schema.table import TableSchema
from repro.sql.ast import Delete, Insert, Select, Statement, Update
from repro.sql.dialect import CompiledSelect, SqliteDialect
from repro.storage.backends.base import CanonicalOrderer
from repro.storage.database import Database
from repro.storage.dml import (
    _check_modification_model,
    validate_insert_row,
    validate_update_assignments,
)
from repro.storage.rows import ResultSet, Row

__all__ = ["SqliteBackend"]


class SqliteBackend:
    """A master database persisted in SQLite (stdlib, zero new deps).

    Args:
        schema: The relational schema (DDL is derived from it).
        path: Database file; None keeps everything in ``:memory:``.
            Reopening an existing file resumes its durable contents.
        enforce_foreign_keys: FK existence on INSERT / restrict on parent
            DELETE, enforced Python-side (see module docstring).
        strict_model: Enforce the paper's modification model.
    """

    name = "sqlite"

    #: Result-memo entries kept before clearing (mirrors ``Database``).
    RESULT_MEMO_LIMIT = 2048

    def __init__(
        self,
        schema: Schema,
        path: str | Path | None = None,
        enforce_foreign_keys: bool = True,
        strict_model: bool = True,
    ) -> None:
        self.schema = schema
        self.enforce_foreign_keys = enforce_foreign_keys
        self.strict_model = strict_model
        self.path = Path(path) if path is not None else None
        self._dialect = SqliteDialect(schema)
        self._orderer = CanonicalOrderer()
        self._connection = sqlite3.connect(
            str(self.path) if self.path is not None else ":memory:",
            isolation_level=None,  # autocommit: each DML is durable on return
        )
        self._connection.execute("PRAGMA foreign_keys = OFF")
        if self.path is not None:
            self._connection.execute("PRAGMA journal_mode = WAL")
            self._connection.execute("PRAGMA synchronous = NORMAL")
        for ddl in self._dialect.create_schema():
            self._connection.execute(ddl)
        self._version = 0
        self._table_versions: dict[str, int] = dict.fromkeys(
            schema.table_names, 0
        )
        self._result_memo: dict[
            tuple[int, tuple[int, ...]], tuple[Select, ResultSet]
        ] = {}
        self._compiled: dict[int, tuple[Select, CompiledSelect]] = {}

    @classmethod
    def from_database(
        cls, database: Database, path: str | Path | None = None
    ) -> "SqliteBackend":
        """Open a backend at ``path`` and seed it from ``database`` if empty.

        A non-empty existing file wins: its durable contents are resumed
        and the generator state is ignored (the restart-survival path).
        """
        backend = cls(
            database.schema,
            path=path,
            enforce_foreign_keys=database.enforce_foreign_keys,
            strict_model=database.strict_model,
        )
        if backend.total_rows() == 0:
            backend.populate_from(database)
        return backend

    def populate_from(self, database: Database) -> None:
        """Bulk-copy every table of an in-memory database (trusted rows)."""
        for table in self.schema.table_names:
            rows = database.rows(table)
            if rows:
                self.load(table, rows)
        self._version = database.version

    # -- introspection -------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone counter, incremented by every effective update."""
        return self._version

    def rows(self, table: str) -> tuple[Row, ...]:
        """Return a snapshot of the rows currently stored in ``table``."""
        table_schema = self.schema.table(table)
        names = ", ".join(f'"{c.name}"' for c in table_schema.columns)
        cursor = self._connection.execute(
            f'SELECT {names} FROM "{table_schema.name}"'
        )
        return tuple(cursor.fetchall())

    def row_count(self, table: str) -> int:
        table_schema = self.schema.table(table)
        cursor = self._connection.execute(
            f'SELECT COUNT(*) FROM "{table_schema.name}"'
        )
        return cursor.fetchone()[0]

    def total_rows(self) -> int:
        return sum(self.row_count(name) for name in self.schema.table_names)

    # -- loading -------------------------------------------------------------

    def load(self, table: str, rows: Iterable[Row]) -> None:
        """Bulk-load pre-validated rows inside one transaction."""
        table_schema = self.schema.table(table)
        width = len(table_schema.columns)
        sql = self._dialect.compile_insert_row(table_schema)
        checked = []
        for row in rows:
            if len(row) != width:
                raise ExecutionError(
                    f"row width {len(row)} does not match table {table!r} "
                    f"width {width}"
                )
            checked.append(tuple(row))
        self._connection.execute("BEGIN")
        try:
            self._connection.executemany(sql, checked)
        except BaseException:
            self._connection.execute("ROLLBACK")
            raise
        self._connection.execute("COMMIT")
        self._table_versions[table] += 1

    # -- queries -------------------------------------------------------------

    def execute(self, select: Select) -> ResultSet:
        """Execute a fully-bound query and return its result."""
        with trace_span("storage.execute", backend=self.name) as execute_span:
            versions = tuple(
                self._table_versions.get(ref.name, 0) for ref in select.tables
            )
            key = (id(select), versions)
            hit = self._result_memo.get(key)
            if hit is not None and hit[0] is select:
                execute_span.set("memo_hit", True)
                return hit[1]
            execute_span.set("memo_hit", False)
            result = self._orderer.execute(select, self._run_core)
            if len(self._result_memo) >= self.RESULT_MEMO_LIMIT:
                self._result_memo.clear()
            self._result_memo[key] = (select, result)
            return result

    def _run_core(self, core: Select) -> ResultSet:
        compiled = self._compile(core)
        cursor = self._connection.execute(compiled.sql, compiled.params)
        return ResultSet(
            columns=compiled.columns,
            rows=tuple(cursor.fetchall()),
            ordered=False,
        )

    def _compile(self, core: Select) -> CompiledSelect:
        key = id(core)
        hit = self._compiled.get(key)
        if hit is not None and hit[0] is core:
            return hit[1]
        compiled = self._dialect.compile_select(core)
        if len(self._compiled) >= self.RESULT_MEMO_LIMIT:
            self._compiled.clear()
        self._compiled[key] = (core, compiled)
        return compiled

    # -- updates -------------------------------------------------------------

    def apply(self, statement: Statement) -> int:
        """Apply a fully-bound update; returns the number of affected rows."""
        if isinstance(statement, Insert):
            affected = self._apply_insert(statement)
        elif isinstance(statement, Delete):
            affected = self._apply_delete(statement)
        elif isinstance(statement, Update):
            affected = self._apply_update(statement)
        else:
            raise ExecutionError("apply() takes an update statement, not a query")
        if affected:
            self._version += 1
            self._table_versions[statement.table] += 1
        return affected

    def _apply_insert(self, insert: Insert) -> int:
        table, row = validate_insert_row(self.schema, insert)
        if table.primary_key:
            key = tuple(
                row[table.position(column)] for column in table.primary_key
            )
            if self._pk_exists(table, key):
                raise PrimaryKeyViolation(
                    f"duplicate primary key {key!r} in table {table.name!r}"
                )
        if self.enforce_foreign_keys:
            for foreign_key in table.foreign_keys:
                value = row[table.position(foreign_key.column)]
                if value is None:
                    continue  # NULL FK is permitted
                if not self._value_exists(
                    foreign_key.ref_table, foreign_key.ref_column, value
                ):
                    raise ForeignKeyViolation(
                        f"{foreign_key.describe(table.name)}: no parent row "
                        f"with {foreign_key.ref_column} = {value!r}"
                    )
        self._connection.execute(
            self._dialect.compile_insert_row(table), row
        )
        return 1

    def _apply_delete(self, delete: Delete) -> int:
        table = self.schema.table(delete.table)
        if self.enforce_foreign_keys:
            incoming = self.schema.foreign_keys_into(table.name)
            for owner_name, foreign_key in incoming:
                sql, params = self._dialect.compile_select_column(
                    table, foreign_key.ref_column, delete.where
                )
                values = [
                    value
                    for (value,) in self._connection.execute(sql, params)
                ]
                for value in values:
                    if self._value_exists(
                        owner_name, foreign_key.column, value
                    ):
                        raise ForeignKeyViolation(
                            f"cannot delete {table.name} row: still "
                            f"referenced via {foreign_key.describe(owner_name)}"
                        )
        sql, params = self._dialect.compile_delete(table, delete.where)
        cursor = self._connection.execute(sql, params)
        return cursor.rowcount

    def _apply_update(self, update: Update) -> int:
        table = self.schema.table(update.table)
        if self.strict_model:
            _check_modification_model(table, update)
        assignments = validate_update_assignments(table, update)
        sql, params = self._dialect.compile_update(
            table, assignments, update.where
        )
        cursor = self._connection.execute(sql, params)
        return cursor.rowcount

    def _pk_exists(self, table: TableSchema, key: tuple) -> bool:
        where = " AND ".join(f'"{name}" = ?' for name in table.primary_key)
        cursor = self._connection.execute(
            f'SELECT 1 FROM "{table.name}" WHERE {where} LIMIT 1', key
        )
        return cursor.fetchone() is not None

    def _value_exists(self, table: str, column: str, value) -> bool:
        cursor = self._connection.execute(
            f'SELECT 1 FROM "{table}" WHERE "{column}" = ? LIMIT 1', (value,)
        )
        return cursor.fetchone() is not None

    # -- cloning / snapshots -------------------------------------------------

    def clone(self) -> "SqliteBackend":
        """Copy into an independent in-memory backend (same schema)."""
        other = SqliteBackend(
            self.schema,
            path=None,
            enforce_foreign_keys=self.enforce_foreign_keys,
            strict_model=self.strict_model,
        )
        self._connection.backup(other._connection)
        other._version = self._version
        other._table_versions = dict(self._table_versions)
        return other

    def snapshot(self) -> dict[str, tuple[Row, ...]]:
        """Return an immutable copy of all table contents."""
        return {name: self.rows(name) for name in self.schema.table_names}

    def restore(self, snapshot: dict[str, tuple[Row, ...]]) -> None:
        """Replace all table contents with a snapshot taken earlier."""
        self._connection.execute("BEGIN")
        try:
            for name, rows in snapshot.items():
                table = self.schema.table(name)
                self._connection.execute(f'DELETE FROM "{table.name}"')
                if rows:
                    self._connection.executemany(
                        self._dialect.compile_insert_row(table), rows
                    )
        except BaseException:
            self._connection.execute("ROLLBACK")
            raise
        self._connection.execute("COMMIT")
        self._version += 1
        for name in self._table_versions:
            self._table_versions[name] += 1

    def close(self) -> None:
        """Release the connection (safe to call more than once)."""
        self._connection.close()

    def __deepcopy__(self, memo) -> "SqliteBackend":
        clone = self.clone()
        memo[id(self)] = clone
        return clone
