"""The in-memory backend: the existing Python engine behind the seam.

Thin adapter around :class:`~repro.storage.database.Database` that adds the
shared canonical ORDER BY/LIMIT semantics (see
:mod:`repro.storage.backends.base`).  Everything else — execution,
constraints, indexing, the per-table-version result memo — is the wrapped
engine, unchanged.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.obs.trace import span as trace_span
from repro.schema.schema import Schema
from repro.sql.ast import Select, Statement
from repro.storage.backends.base import CanonicalOrderer
from repro.storage.database import Database
from repro.storage.rows import ResultSet, Row

__all__ = ["InMemoryBackend"]


class InMemoryBackend:
    """Pure-Python multiset engine, adapted to the :class:`Backend` protocol."""

    name = "memory"

    #: Result-memo entries kept before clearing (mirrors ``Database``).
    RESULT_MEMO_LIMIT = 2048

    def __init__(self, database: Database) -> None:
        self.database = database
        self._orderer = CanonicalOrderer()
        # The wrapped engine memoizes only the *core* result; canonical
        # re-sorting would otherwise run again per repeat, so the finished
        # (sorted, limited) ResultSet is memoized here the same way the
        # sqlite backend does it.
        self._result_memo: dict[
            tuple[int, tuple[int, ...]], tuple[Select, ResultSet]
        ] = {}

    @classmethod
    def create(
        cls,
        schema: Schema,
        *,
        enforce_foreign_keys: bool = True,
        strict_model: bool = True,
    ) -> "InMemoryBackend":
        return cls(
            Database(
                schema,
                enforce_foreign_keys=enforce_foreign_keys,
                strict_model=strict_model,
            )
        )

    # -- protocol surface ----------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self.database.schema

    @property
    def enforce_foreign_keys(self) -> bool:
        return self.database.enforce_foreign_keys

    @property
    def strict_model(self) -> bool:
        return self.database.strict_model

    @property
    def version(self) -> int:
        return self.database.version

    def execute(self, select: Select) -> ResultSet:
        with trace_span("storage.execute", backend=self.name) as execute_span:
            versions = tuple(
                self.database.table_version(ref.name) for ref in select.tables
            )
            key = (id(select), versions)
            hit = self._result_memo.get(key)
            if hit is not None and hit[0] is select:
                execute_span.set("memo_hit", True)
                return hit[1]
            execute_span.set("memo_hit", False)
            result = self._orderer.execute(select, self.database.execute)
            if len(self._result_memo) >= self.RESULT_MEMO_LIMIT:
                self._result_memo.clear()
            self._result_memo[key] = (select, result)
            return result

    def apply(self, statement: Statement) -> int:
        return self.database.apply(statement)

    def load(self, table: str, rows: Iterable[Row]) -> None:
        self.database.load(table, rows)

    def rows(self, table: str) -> tuple[Row, ...]:
        return self.database.rows(table)

    def row_count(self, table: str) -> int:
        return self.database.row_count(table)

    def total_rows(self) -> int:
        return self.database.total_rows()

    def clone(self) -> "InMemoryBackend":
        return InMemoryBackend(self.database.clone())

    def snapshot(self) -> dict[str, tuple[Row, ...]]:
        return self.database.snapshot()

    def restore(self, snapshot: dict[str, tuple[Row, ...]]) -> None:
        self.database.restore(snapshot)

    def close(self) -> None:  # nothing to release
        return None
