"""In-memory multiset relational engine.

This is the substrate under both the home server (master copies) and the
correctness oracle used by the tests: a small but complete executor for the
paper's dialect — SPJ queries with conjunctive predicates, order-by, top-k,
aggregation and group-by — plus DML application with primary-key,
foreign-key, NOT NULL, and modification-statement enforcement.

Entry points: :class:`~repro.storage.database.Database` (the raw engine)
and :mod:`repro.storage.backends` (the pluggable-backend seam the home
server and CLI go through: ``memory`` wraps this engine, ``sqlite``
compiles the same dialect to stdlib SQLite).
"""

from repro.storage.database import Database
from repro.storage.executor import QueryExecutor
from repro.storage.rows import ResultSet, Row

__all__ = ["Database", "QueryExecutor", "ResultSet", "Row"]
