"""The in-memory database: schema + data + execution facade.

A :class:`Database` is used in two roles:

* as the **master copy** inside the home server (queries on cache miss,
  updates applied directly — paper Figure 2);
* as a disposable **oracle** in tests and in the view-inspection strategy's
  correctness proofs: ``clone()`` then ``apply()`` lets callers compare
  ``Q[D]`` against ``Q[D + U]`` exactly as the paper's correctness
  definition requires.
"""

from __future__ import annotations

import copy
from collections.abc import Iterable

from repro.errors import ExecutionError
from repro.schema.schema import Schema
from repro.sql.ast import Delete, Insert, Select, Statement, Update
from repro.storage.dml import apply_delete, apply_insert, apply_update
from repro.storage.executor import QueryExecutor
from repro.storage.indexes import DatabaseIndexes
from repro.storage.rows import ResultSet, Row

__all__ = ["Database"]


class Database:
    """Mutable in-memory database over an immutable :class:`Schema`.

    Args:
        schema: The relational schema.
        enforce_foreign_keys: Check FK existence on INSERT (and restrict
            parent deletes when True).  The benchmark generators build
            FK-consistent data, so this defaults to True.
        strict_model: Enforce the paper's modification model (equality on
            the full primary key, non-key assignments only).
    """

    def __init__(
        self,
        schema: Schema,
        enforce_foreign_keys: bool = True,
        strict_model: bool = True,
    ) -> None:
        self.schema = schema
        self.enforce_foreign_keys = enforce_foreign_keys
        self.strict_model = strict_model
        self._data: dict[str, list[Row]] = {name: [] for name in schema.table_names}
        self._indexes = DatabaseIndexes(schema)
        self._executor = QueryExecutor(schema)
        self._version = 0
        # Re-executing an unchanged query against unchanged tables must
        # return the same (immutable) result, so execute() memoizes per
        # statement identity + the versions of every table it reads.  Bound
        # statements are shared objects (template binding is memoized), so
        # identity keys hit for the popular statements that dominate.
        self._table_versions: dict[str, int] = dict.fromkeys(schema.table_names, 0)
        self._result_memo: dict[
            tuple[int, tuple[int, ...]], tuple[Select, ResultSet]
        ] = {}

    # -- introspection --------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone counter, incremented by every effective update."""
        return self._version

    def table_version(self, table: str) -> int:
        """Per-table monotone counter (bumped by loads and effective
        updates); the key backends memoize results against."""
        return self._table_versions.get(table, 0)

    def rows(self, table: str) -> tuple[Row, ...]:
        """Return a snapshot of the rows currently stored in ``table``."""
        self.schema.table(table)  # validate name
        return tuple(self._data.get(table, ()))

    def row_count(self, table: str) -> int:
        """Return the number of rows in ``table``."""
        self.schema.table(table)
        return len(self._data.get(table, ()))

    def total_rows(self) -> int:
        """Return the total number of rows across all tables."""
        return sum(len(rows) for rows in self._data.values())

    # -- loading ----------------------------------------------------------------

    def load(self, table: str, rows: Iterable[Row]) -> None:
        """Bulk-load pre-validated rows (used by data generators).

        Rows are trusted: no constraint checks are run.  Use
        :meth:`apply` / INSERT statements for checked writes.
        """
        table_schema = self.schema.table(table)
        width = len(table_schema.columns)
        stored = self._data.setdefault(table, [])
        for row in rows:
            if len(row) != width:
                raise ExecutionError(
                    f"row width {len(row)} does not match table {table!r} "
                    f"width {width}"
                )
            frozen = tuple(row)
            stored.append(frozen)
            self._indexes.add(table, frozen)
        self._table_versions[table] += 1

    # -- queries ----------------------------------------------------------------

    #: Result-memo entries kept before clearing (stale-version keys are
    #: never hit again and are reclaimed by the wholesale clear).
    RESULT_MEMO_LIMIT = 2048

    def execute(self, select: Select) -> ResultSet:
        """Execute a fully-bound query and return its result."""
        versions = tuple(
            self._table_versions[ref.name] for ref in select.tables
        )
        key = (id(select), versions)
        hit = self._result_memo.get(key)
        if hit is not None and hit[0] is select:
            return hit[1]
        result = self._executor.execute(select, self._data, self._indexes)
        if len(self._result_memo) >= self.RESULT_MEMO_LIMIT:
            self._result_memo.clear()
        self._result_memo[key] = (select, result)
        return result

    # -- updates ----------------------------------------------------------------

    def apply(self, statement: Statement) -> int:
        """Apply a fully-bound update; returns the number of affected rows.

        Raises:
            ExecutionError: if given a SELECT.
        """
        if isinstance(statement, Insert):
            affected = apply_insert(
                self.schema,
                self._data,
                statement,
                self.enforce_foreign_keys,
                self._indexes,
            )
        elif isinstance(statement, Delete):
            affected = apply_delete(
                self.schema,
                self._data,
                statement,
                self.enforce_foreign_keys,
                self._indexes,
            )
        elif isinstance(statement, Update):
            affected = apply_update(
                self.schema,
                self._data,
                statement,
                self.strict_model,
                self._indexes,
            )
        else:
            raise ExecutionError("apply() takes an update statement, not a query")
        if affected:
            self._version += 1
            self._table_versions[statement.table] += 1
        return affected

    # -- cloning ------------------------------------------------------------------

    def clone(self) -> "Database":
        """Deep-copy the data into an independent database (same schema).

        Rows are immutable tuples, so both the per-table row lists and the
        index containers are shallow-copied (``DatabaseIndexes.clone``)
        rather than rebuilt — ~2.5-3x faster on the benchmark instances
        (0.17→0.05 ms toystore, 4.7→1.9 ms bookstore at scale 1.0), and
        clone() is per-checked-update in the oracle's proofs.
        """
        other = Database(
            self.schema,
            enforce_foreign_keys=self.enforce_foreign_keys,
            strict_model=self.strict_model,
        )
        other._data = {name: list(rows) for name, rows in self._data.items()}
        other._indexes = self._indexes.clone()
        other._version = self._version
        other._table_versions = dict(self._table_versions)
        return other

    def snapshot(self) -> dict[str, tuple[Row, ...]]:
        """Return an immutable copy of all table contents."""
        return {name: tuple(rows) for name, rows in self._data.items()}

    def restore(self, snapshot: dict[str, tuple[Row, ...]]) -> None:
        """Replace all table contents with a snapshot taken earlier."""
        self._data = {name: list(rows) for name, rows in snapshot.items()}
        self._indexes.rebuild_all(self._data)
        self._version += 1
        for name in self._table_versions:
            self._table_versions[name] += 1

    def __deepcopy__(self, memo) -> "Database":
        clone = self.clone()
        memo[id(self)] = clone
        return copy.copy(clone)  # data already copied; schema shared
