"""Query executor for the paper's dialect.

Executes a fully-bound :class:`~repro.sql.ast.Select` against table data.
The pipeline is the classic one:

1. resolve names (aliases → base tables, bare columns → unique binding);
2. filter each base table with its single-binding predicates;
3. join bindings left-to-right, preferring hash joins on equality join
   conditions and falling back to filtered nested loops;
4. sort (ORDER BY), aggregate / group, project, and apply top-k (LIMIT).

Multiset semantics throughout: projection never deduplicates.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.errors import (
    ExecutionError,
    SchemaError,
    UnknownColumnError,
    UnknownTableError,
)
from repro.schema.schema import Schema
from repro.sql.ast import (
    Aggregate,
    AggregateFunc,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Literal,
    Parameter,
    Scalar,
    Select,
    Star,
    Value,
)
from repro.storage.rows import ResultSet, Row, sort_key

__all__ = ["QueryExecutor"]


@dataclass(frozen=True, slots=True)
class _Slot:
    """Resolved location of a column: binding index and in-row position."""

    binding: int
    position: int


class _Scope:
    """Name-resolution context for one SELECT statement."""

    def __init__(self, schema: Schema, select: Select) -> None:
        self.schema = schema
        self.bindings: list[str] = []  # binding names, in FROM order
        self.tables: list[str] = []  # base-table names, aligned
        seen: set[str] = set()
        for table_ref in select.tables:
            if table_ref.name not in schema:
                raise UnknownTableError(table_ref.name)
            binding = table_ref.binding
            if binding in seen:
                raise SchemaError(f"duplicate binding {binding!r} in FROM clause")
            seen.add(binding)
            self.bindings.append(binding)
            self.tables.append(table_ref.name)

    def resolve(self, ref: ColumnRef) -> _Slot:
        """Resolve a column reference to a (binding, position) slot."""
        if ref.table is not None:
            for index, binding in enumerate(self.bindings):
                if binding == ref.table:
                    table = self.schema.table(self.tables[index])
                    return _Slot(index, table.position(ref.column))
            raise UnknownTableError(ref.table)
        matches = []
        for index, table_name in enumerate(self.tables):
            table = self.schema.table(table_name)
            if table.has_column(ref.column):
                matches.append(_Slot(index, table.position(ref.column)))
        if not matches:
            raise UnknownColumnError(ref.column)
        if len(matches) > 1:
            raise SchemaError(f"ambiguous column {ref.column!r}")
        return matches[0]


#: A partial join result: one row tuple per already-joined binding.
_JoinedRow = tuple[Row, ...]


class QueryExecutor:
    """Executes SELECT statements against in-memory table data."""

    def __init__(self, schema: Schema) -> None:
        self._schema = schema

    def execute(
        self, select: Select, data: dict[str, list[Row]], indexes=None
    ) -> ResultSet:
        """Run ``select`` over ``data`` (table name → rows) and return rows.

        ``indexes`` (a :class:`~repro.storage.indexes.DatabaseIndexes`)
        enables hash access paths: an O(1) point read when equality
        constants pin a binding's full primary key, and equality buckets
        for single-column predicates — the dominant query shapes in the
        benchmark workloads.

        Raises:
            ExecutionError: if the statement still contains ``?`` parameters.
        """
        if select.limit is not None and isinstance(select.limit, Parameter):
            raise ExecutionError("unbound parameter in LIMIT")
        scope = _Scope(self._schema, select)
        single, joins = self._partition_predicates(scope, select.where)

        joined = self._join_all(scope, data, single, joins, indexes)

        if select.has_aggregate() or select.group_by:
            return self._execute_aggregate(scope, select, joined)

        if select.order_by:
            joined = self._sort_joined(scope, select, joined)
        columns, rows = self._project(scope, select, joined)
        ordered = bool(select.order_by) or select.limit is not None
        if select.limit is not None:
            rows = rows[: select.limit]
        return ResultSet(columns=columns, rows=tuple(rows), ordered=ordered)

    # -- predicate handling -------------------------------------------------

    def _partition_predicates(
        self, scope: _Scope, where: tuple[Comparison, ...]
    ) -> tuple[dict[int, list[Comparison]], list[Comparison]]:
        """Split WHERE conjuncts into per-binding filters and join conditions."""
        single: dict[int, list[Comparison]] = defaultdict(list)
        joins: list[Comparison] = []
        for comparison in where:
            bindings = {
                scope.resolve(ref).binding for ref in comparison.column_refs()
            }
            self._check_bound(comparison)
            if len(bindings) == 0:
                # Constant predicate (e.g. 1 = 1): evaluate once; a false
                # constant predicate empties the result via binding 0.
                if not self._constant_holds(comparison):
                    single[0].append(comparison)  # re-checked per row → false
                continue
            if len(bindings) == 1:
                single[bindings.pop()].append(comparison)
            else:
                joins.append(comparison)
        return single, joins

    @staticmethod
    def _check_bound(comparison: Comparison) -> None:
        for side in (comparison.left, comparison.right):
            if isinstance(side, Parameter):
                raise ExecutionError(
                    "unbound parameter in WHERE clause; bind the template first"
                )

    @staticmethod
    def _constant_holds(comparison: Comparison) -> bool:
        left = comparison.left.value  # type: ignore[union-attr]
        right = comparison.right.value  # type: ignore[union-attr]
        return comparison.op.holds(left, right)

    def _evaluate_side(
        self, scope: _Scope, value: Value, joined_row: _JoinedRow
    ) -> Scalar:
        if isinstance(value, Literal):
            return value.value
        if isinstance(value, ColumnRef):
            slot = scope.resolve(value)
            return joined_row[slot.binding][slot.position]
        raise ExecutionError("unbound parameter")

    # -- join pipeline --------------------------------------------------------

    def _filtered_base(
        self,
        scope: _Scope,
        data: dict[str, list[Row]],
        binding_index: int,
        predicates: list[Comparison],
        indexes=None,
    ) -> list[Row]:
        """Rows of one binding's base table that pass its local predicates."""
        candidates = self._index_probe(scope, binding_index, predicates, indexes)
        rows = (
            candidates
            if candidates is not None
            else data.get(scope.tables[binding_index], [])
        )
        if not predicates:
            return list(rows)
        compiled = []
        for comparison in predicates:
            compiled.append(self._compile_local(scope, binding_index, comparison))
        return [row for row in rows if all(check(row) for check in compiled)]

    def _index_probe(
        self,
        scope: _Scope,
        binding_index: int,
        predicates: list[Comparison],
        indexes,
    ) -> list[Row] | None:
        """Hash-index candidate lookup for equality predicates.

        Prefers the primary-key map (at most one candidate) when equality
        constants pin the full key; otherwise falls back to a secondary
        equality bucket on any single constant-pinned column.  Returns
        None when no access path applies.  The caller still re-applies
        every predicate, so this is purely an access-path optimization.
        """
        if indexes is None:
            return None
        table_name = scope.tables[binding_index]
        table = self._schema.table(table_name)
        pinned: dict[str, object] = {}
        for comparison in predicates:
            if comparison.op is not ComparisonOp.EQ or comparison.is_join():
                continue
            left, right = comparison.left, comparison.right
            if isinstance(left, ColumnRef) and isinstance(right, Literal):
                pinned.setdefault(left.column, right.value)
            elif isinstance(right, ColumnRef) and isinstance(left, Literal):
                pinned.setdefault(right.column, left.value)
        if not pinned:
            return None
        primary = indexes.primary
        if primary.indexes_table(table_name) and all(
            column in pinned for column in table.primary_key
        ):
            key = tuple(pinned[column] for column in table.primary_key)
            row = primary.lookup(table_name, key)
            return [row] if row is not None else []
        for column, value in pinned.items():
            bucket = indexes.probe(table_name, column, value)
            if bucket is not None:
                return bucket
        return None

    def _compile_local(
        self, scope: _Scope, binding_index: int, comparison: Comparison
    ):
        """Compile a single-binding predicate into a row → bool callable."""

        def side(value: Value):
            if isinstance(value, Literal):
                constant = value.value
                return lambda row: constant
            slot = scope.resolve(value)  # type: ignore[arg-type]
            if slot.binding != binding_index:
                raise ExecutionError("predicate misrouted to wrong binding")
            position = slot.position
            return lambda row: row[position]

        left = side(comparison.left)
        right = side(comparison.right)
        op = comparison.op
        return lambda row: op.holds(left(row), right(row))

    def _join_all(
        self,
        scope: _Scope,
        data: dict[str, list[Row]],
        single: dict[int, list[Comparison]],
        joins: list[Comparison],
        indexes=None,
    ) -> list[_JoinedRow]:
        """Join every binding, applying join predicates as early as possible."""
        n = len(scope.bindings)
        base = [
            self._filtered_base(
                scope, data, index, single.get(index, []), indexes
            )
            for index in range(n)
        ]
        pending = list(range(n))
        remaining = list(joins)
        placed: list[int] = []
        current: list[_JoinedRow] = []

        while pending:
            choice = self._pick_next(scope, pending, placed, remaining)
            pending.remove(choice)
            if not placed:
                current = [(row,) for row in base[choice]]
                placed.append(choice)
                continue
            applicable, remaining = self._split_applicable(
                scope, remaining, placed, choice
            )
            current = self._join_one(
                scope, current, placed, choice, base[choice], applicable
            )
            placed.append(choice)

        if remaining:  # pragma: no cover - defensive; all joins get applied
            raise ExecutionError("unapplied join predicates remain")
        return self._reorder(current, placed, n)

    def _pick_next(
        self,
        scope: _Scope,
        pending: list[int],
        placed: list[int],
        joins: list[Comparison],
    ) -> int:
        """Prefer a pending binding connected by a join to the placed set."""
        if not placed:
            return pending[0]
        placed_set = set(placed)
        for comparison in joins:
            bindings = {
                scope.resolve(ref).binding for ref in comparison.column_refs()
            }
            touching = bindings & placed_set
            outside = bindings - placed_set
            if touching and len(outside) == 1:
                candidate = next(iter(outside))
                if candidate in pending:
                    return candidate
        return pending[0]

    def _split_applicable(
        self,
        scope: _Scope,
        joins: list[Comparison],
        placed: list[int],
        choice: int,
    ) -> tuple[list[Comparison], list[Comparison]]:
        """Split join predicates into those decidable once ``choice`` joins."""
        available = set(placed) | {choice}
        applicable, remaining = [], []
        for comparison in joins:
            bindings = {
                scope.resolve(ref).binding for ref in comparison.column_refs()
            }
            if bindings <= available:
                applicable.append(comparison)
            else:
                remaining.append(comparison)
        return applicable, remaining

    def _join_one(
        self,
        scope: _Scope,
        current: list[_JoinedRow],
        placed: list[int],
        choice: int,
        new_rows: list[Row],
        predicates: list[Comparison],
    ) -> list[_JoinedRow]:
        """Join ``new_rows`` for binding ``choice`` onto ``current``."""
        position_of = {binding: index for index, binding in enumerate(placed)}

        plan = self._find_hashable_equality(scope, predicates, position_of, choice)
        rest = [
            p for p in predicates if plan is None or p is not plan.comparison
        ]
        check = self._compile_cross(scope, rest, position_of, choice)

        if plan is not None:
            probe_slot, build_position = plan.probe, plan.build_position
            buckets: dict[Scalar, list[Row]] = defaultdict(list)
            for row in new_rows:
                key = row[build_position]
                if key is not None:
                    buckets[key].append(row)
            joined = []
            for partial in current:
                key = partial[position_of[probe_slot.binding]][probe_slot.position]
                if key is None:
                    continue
                for row in buckets.get(key, ()):
                    candidate = partial + (row,)
                    if check(candidate):
                        joined.append(candidate)
            return joined

        joined = []
        for partial in current:
            for row in new_rows:
                candidate = partial + (row,)
                if check(candidate):
                    joined.append(candidate)
        return joined

    def _find_hashable_equality(
        self,
        scope: _Scope,
        predicates: list[Comparison],
        position_of: dict[int, int],
        choice: int,
    ):
        """Find one equality join usable for a hash join, pre-resolved.

        Returns ``(probe_slot, build_position)`` — the placed side's slot and
        the new side's in-row position — or None.
        """
        for comparison in predicates:
            if comparison.op is not ComparisonOp.EQ or not comparison.is_join():
                continue
            left = scope.resolve(comparison.left)  # type: ignore[arg-type]
            right = scope.resolve(comparison.right)  # type: ignore[arg-type]
            if left.binding in position_of and right.binding == choice:
                return _EqualityPlan(comparison, left, right.position)
            if right.binding in position_of and left.binding == choice:
                return _EqualityPlan(comparison, right, left.position)
        return None

    def _compile_cross(
        self,
        scope: _Scope,
        predicates: list[Comparison],
        position_of: dict[int, int],
        choice: int,
    ):
        """Compile cross-binding predicates over a candidate joined row."""
        slots_of = dict(position_of)
        slots_of[choice] = len(position_of)

        def side(value: Value):
            if isinstance(value, Literal):
                constant = value.value
                return lambda joined: constant
            slot = scope.resolve(value)  # type: ignore[arg-type]
            row_index = slots_of[slot.binding]
            position = slot.position
            return lambda joined: joined[row_index][position]

        compiled = [
            (self._op_of(p), side(p.left), side(p.right)) for p in predicates
        ]

        def check(joined: _JoinedRow) -> bool:
            return all(op.holds(l(joined), r(joined)) for op, l, r in compiled)

        return check

    @staticmethod
    def _op_of(comparison: Comparison):
        return comparison.op

    @staticmethod
    def _reorder(
        current: list[_JoinedRow], placed: list[int], n: int
    ) -> list[_JoinedRow]:
        """Re-align joined rows to FROM-clause binding order."""
        if placed == list(range(n)):
            return current
        order = [placed.index(i) for i in range(n)]
        return [tuple(row[j] for j in order) for row in current]

    # -- ORDER BY / projection / aggregation -----------------------------------

    def _sort_joined(
        self, scope: _Scope, select: Select, joined: list[_JoinedRow]
    ) -> list[_JoinedRow]:
        result = list(joined)
        for item in reversed(select.order_by):
            slot = scope.resolve(item.column)

            def key(row: _JoinedRow, slot=slot):
                return sort_key((row[slot.binding][slot.position],))

            result.sort(key=key, reverse=item.descending)
        return result

    def _project(
        self, scope: _Scope, select: Select, joined: list[_JoinedRow]
    ) -> tuple[tuple[str, ...], list[Row]]:
        columns: list[str] = []
        slots: list[_Slot] = []
        multi = len(scope.bindings) > 1
        for item in select.items:
            if isinstance(item, Star):
                for index, table_name in enumerate(scope.tables):
                    table = self._schema.table(table_name)
                    for position, column in enumerate(table.columns):
                        name = (
                            f"{scope.bindings[index]}.{column.name}"
                            if multi
                            else column.name
                        )
                        columns.append(name)
                        slots.append(_Slot(index, position))
            elif isinstance(item, ColumnRef):
                columns.append(item.qualified())
                slots.append(scope.resolve(item))
            else:
                raise ExecutionError(
                    "aggregate in non-aggregate projection path"
                )  # pragma: no cover - guarded by caller
        rows = [
            tuple(row[slot.binding][slot.position] for slot in slots)
            for row in joined
        ]
        return tuple(columns), rows

    def _execute_aggregate(
        self, scope: _Scope, select: Select, joined: list[_JoinedRow]
    ) -> ResultSet:
        group_slots = [scope.resolve(column) for column in select.group_by]
        for item in select.items:
            if isinstance(item, Star):
                raise ExecutionError("SELECT * cannot mix with aggregation")
            if isinstance(item, ColumnRef):
                slot = scope.resolve(item)
                if slot not in group_slots:
                    raise ExecutionError(
                        f"non-aggregate column {item.qualified()!r} must "
                        "appear in GROUP BY"
                    )

        groups: dict[tuple, list[_JoinedRow]] = defaultdict(list)
        if group_slots:
            for row in joined:
                key = tuple(
                    row[slot.binding][slot.position] for slot in group_slots
                )
                groups[key].append(row)
        else:
            groups[()] = list(joined)

        columns = tuple(self._aggregate_column_name(item) for item in select.items)
        out_rows: list[Row] = []
        for key, members in groups.items():
            out_rows.append(
                tuple(
                    self._aggregate_value(scope, item, key, group_slots, members)
                    for item in select.items
                )
            )

        ordered = bool(select.order_by) or select.limit is not None
        if select.order_by:
            out_rows = self._sort_output(select, columns, out_rows)
        elif group_slots:
            out_rows.sort(key=sort_key)  # deterministic group order
        if select.limit is not None:
            out_rows = out_rows[: select.limit]
        return ResultSet(columns=columns, rows=tuple(out_rows), ordered=ordered)

    @staticmethod
    def _aggregate_column_name(item) -> str:
        if isinstance(item, ColumnRef):
            return item.qualified()
        arg = "*" if isinstance(item.argument, Star) else item.argument.qualified()
        if item.distinct:
            arg = f"DISTINCT {arg}"
        return f"{item.func.value.upper()}({arg})"

    def _aggregate_value(
        self,
        scope: _Scope,
        item,
        key: tuple,
        group_slots: list[_Slot],
        members: list[_JoinedRow],
    ) -> Scalar:
        if isinstance(item, ColumnRef):
            slot = scope.resolve(item)
            return key[group_slots.index(slot)]
        func: AggregateFunc = item.func
        if isinstance(item.argument, Star):
            return len(members)
        slot = scope.resolve(item.argument)
        values = [
            row[slot.binding][slot.position]
            for row in members
            if row[slot.binding][slot.position] is not None
        ]
        if item.distinct:
            values = list(dict.fromkeys(values))
        if func is AggregateFunc.COUNT:
            return len(values)
        if not values:
            return None
        if func is AggregateFunc.MIN:
            return min(values)
        if func is AggregateFunc.MAX:
            return max(values)
        if func is AggregateFunc.SUM:
            return sum(values)
        return sum(values) / len(values)  # AVG

    def _sort_output(
        self, select: Select, columns: tuple[str, ...], rows: list[Row]
    ) -> list[Row]:
        """ORDER BY over aggregated output: keys must be output columns."""
        result = list(rows)
        for item in reversed(select.order_by):
            name = item.column.qualified()
            try:
                position = columns.index(name)
            except ValueError:
                raise ExecutionError(
                    f"ORDER BY column {name!r} must appear in the "
                    "aggregate select list"
                ) from None

            def key(row: Row, position=position):
                return sort_key((row[position],))

            result.sort(key=key, reverse=item.descending)
        return result


@dataclass(frozen=True, slots=True)
class _EqualityPlan:
    """A resolved equality join: probe side slot + build side position."""

    comparison: Comparison
    probe: _Slot
    build_position: int
