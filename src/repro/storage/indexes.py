"""Hash indexes: primary-key maps and secondary equality buckets.

The benchmark workloads are dominated by equality lookups — ``WHERE pk =
?`` point reads, and ``WHERE fk = ?`` / ``WHERE attribute = ?`` selections
(comments of a story, items of a subject).  Two structures cover them:

* :class:`PrimaryKeyIndex` — ``key tuple → row`` per table.  Gives O(1)
  duplicate-key detection on INSERT, O(1) foreign-key parent checks, and a
  point-read fast path in the executor.
* :class:`DatabaseIndexes` — the facade a
  :class:`~repro.storage.database.Database` maintains: the primary index
  plus per-``(table, column)`` equality buckets (``value → rows``) over
  every column, used by the executor to replace full scans for
  single-column equality predicates.

Rows are immutable tuples; modifications never touch key columns (the
paper's update model), so primary maps mutate only on insert/delete/load,
while secondary buckets also follow modified columns.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import ExecutionError
from repro.schema.schema import Schema
from repro.storage.rows import Row

__all__ = ["DatabaseIndexes", "PrimaryKeyIndex"]


class PrimaryKeyIndex:
    """Per-table ``primary key tuple → row`` maps for one database."""

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._positions: dict[str, tuple[int, ...]] = {}
        self._maps: dict[str, dict[tuple, Row]] = {}
        for table in schema:
            if table.primary_key:
                self._positions[table.name] = tuple(
                    table.position(column) for column in table.primary_key
                )
                self._maps[table.name] = {}

    def indexes_table(self, table: str) -> bool:
        """True if the table has a primary key (hence an index)."""
        return table in self._maps

    def key_of(self, table: str, row: Row) -> tuple:
        """Extract the key tuple of a row."""
        return tuple(row[position] for position in self._positions[table])

    # -- maintenance --------------------------------------------------------

    def add(self, table: str, row: Row) -> None:
        """Register a row (caller has already verified uniqueness)."""
        if table in self._maps:
            self._maps[table][self.key_of(table, row)] = row

    def remove(self, table: str, row: Row) -> None:
        """Forget a row."""
        if table in self._maps:
            self._maps[table].pop(self.key_of(table, row), None)

    def replace(self, table: str, old: Row, new: Row) -> None:
        """Swap a row in place (keys never change in the paper's model)."""
        if table in self._maps:
            old_key = self.key_of(table, old)
            new_key = self.key_of(table, new)
            if old_key != new_key:  # pragma: no cover - model forbids this
                raise ExecutionError("primary key mutation through replace()")
            self._maps[table][new_key] = new

    def rebuild(self, table: str, rows: list[Row]) -> None:
        """Re-derive the table's map from scratch (bulk load / restore)."""
        if table in self._maps:
            self._maps[table] = {self.key_of(table, row): row for row in rows}

    def rebuild_all(self, data: dict[str, list[Row]]) -> None:
        """Re-derive every table's map."""
        for table in self._maps:
            self.rebuild(table, data.get(table, []))

    def clone(self) -> "PrimaryKeyIndex":
        """Copy the maps without re-deriving keys.

        Rows are immutable tuples shared with the source; only the map
        containers are fresh.  ``dict(mapping)`` is a C-level copy, so this
        is far cheaper than :meth:`rebuild_all` re-extracting every key.
        """
        other = PrimaryKeyIndex.__new__(PrimaryKeyIndex)
        other._schema = self._schema
        other._positions = self._positions  # immutable after construction
        other._maps = {
            table: dict(mapping) for table, mapping in self._maps.items()
        }
        return other

    # -- queries --------------------------------------------------------------

    def contains(self, table: str, key: tuple) -> bool:
        """O(1): does a row with this key exist?"""
        return key in self._maps[table]

    def lookup(self, table: str, key: tuple) -> Row | None:
        """O(1): the row with this key, or None."""
        return self._maps[table].get(key)

    def contains_value(self, table: str, column: str, value) -> bool:
        """Existence check for a single-column key value."""
        return (value,) in self._maps[table]

    def single_column_key(self, table: str) -> bool:
        """True if the table's primary key is one column."""
        return len(self._positions.get(table, ())) == 1


class DatabaseIndexes:
    """Primary index + equality buckets over every column of every table.

    This is the object a :class:`Database` owns and threads through DML
    (for maintenance and constraint checks) and the executor (for access
    paths).  ``probe(table, column, value)`` answers single-column equality
    predicates in O(matching rows).
    """

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self.primary = PrimaryKeyIndex(schema)
        # (table, column) -> value -> list of rows.  NULLs are not indexed:
        # a comparison with NULL never holds, so no probe wants them.
        self._buckets: dict[tuple[str, str], dict[object, list[Row]]] = {}
        self._columns: dict[str, tuple[tuple[str, int], ...]] = {}
        for table in schema:
            columns = tuple(
                (column.name, position)
                for position, column in enumerate(table.columns)
            )
            self._columns[table.name] = columns
            for name, _ in columns:
                self._buckets[(table.name, name)] = defaultdict(list)

    # -- maintenance ---------------------------------------------------------

    def add(self, table: str, row: Row) -> None:
        """Register a freshly inserted/loaded row everywhere."""
        self.primary.add(table, row)
        for column, position in self._columns[table]:
            value = row[position]
            if value is not None:
                self._buckets[(table, column)][value].append(row)

    def remove(self, table: str, row: Row) -> None:
        """Forget a deleted row everywhere."""
        self.primary.remove(table, row)
        for column, position in self._columns[table]:
            value = row[position]
            if value is None:
                continue
            bucket = self._buckets[(table, column)].get(value)
            if bucket is not None:
                try:
                    bucket.remove(row)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not bucket:
                    del self._buckets[(table, column)][value]

    def replace(self, table: str, old: Row, new: Row) -> None:
        """Track a modification: re-bucket only the changed columns."""
        self.primary.replace(table, old, new)
        for column, position in self._columns[table]:
            old_value, new_value = old[position], new[position]
            buckets = self._buckets[(table, column)]
            if old_value == new_value:
                # Same bucket; swap the row object in place.
                if old_value is not None:
                    bucket = buckets.get(old_value)
                    if bucket is not None:
                        for i, candidate in enumerate(bucket):
                            if candidate is old or candidate == old:
                                bucket[i] = new
                                break
                continue
            if old_value is not None:
                bucket = buckets.get(old_value)
                if bucket is not None:
                    try:
                        bucket.remove(old)
                    except ValueError:  # pragma: no cover - defensive
                        pass
                    if not bucket:
                        del buckets[old_value]
            if new_value is not None:
                buckets[new_value].append(new)

    def rebuild_all(self, data: dict[str, list[Row]]) -> None:
        """Re-derive everything from raw table contents."""
        self.primary.rebuild_all(data)
        for key in self._buckets:
            self._buckets[key] = defaultdict(list)
        for table, rows in data.items():
            columns = self._columns.get(table, ())
            for row in rows:
                for column, position in columns:
                    value = row[position]
                    if value is not None:
                        self._buckets[(table, column)][value].append(row)

    def clone(self) -> "DatabaseIndexes":
        """Copy every index without re-deriving it from table contents.

        ``Database.clone()`` is on the oracle's hot path (one clone per
        checked update in the view-inspection proofs), and rebuilding
        buckets walks every column of every row in Python.  Cloning
        instead copies the finished containers — per-bucket ``list(rows)``
        and C-level ``dict`` copies — sharing the immutable row tuples.
        """
        other = DatabaseIndexes.__new__(DatabaseIndexes)
        other._schema = self._schema
        other.primary = self.primary.clone()
        other._columns = self._columns  # immutable after construction
        other._buckets = {
            key: defaultdict(
                list, {value: list(rows) for value, rows in bucket_map.items()}
            )
            for key, bucket_map in self._buckets.items()
        }
        return other

    # -- probes ---------------------------------------------------------------

    def probe(self, table: str, column: str, value) -> list[Row] | None:
        """Rows with ``column == value``; None if the column is unindexed.

        ``value=None`` returns [] — NULL never satisfies an equality.
        """
        bucket_map = self._buckets.get((table, column))
        if bucket_map is None:
            return None
        if value is None:
            return []
        return bucket_map.get(value, [])
