"""Prometheus text exposition for metrics snapshots.

Renders the JSON-safe registry snapshot (:meth:`~repro.obs.metrics.
MetricsRegistry.snapshot`, also what the STATS wire frame carries) in the
Prometheus text format, so ``repro stats --prom`` can feed a scrape
pipeline without any new dependency.  Mapping:

* counters  → ``repro_<name>_total``
* gauges    → ``repro_<name>``
* histograms → cumulative ``_bucket{le=...}`` series plus ``_sum`` and
  ``_count``, converted from this module's per-bucket counts.

Metric names keep the registry's dotted names with non-identifier
characters folded to underscores; every series can carry a constant
label set (``{node="dssp-0"}``) so one page can expose a whole fleet.
Exposure safety is inherited: snapshots contain metric names and numbers
only, and exemplar trace ids are opaque hex — no statement text,
parameters, or rows exist upstream of this renderer.
"""

from __future__ import annotations

import re

__all__ = ["render_prometheus", "render_prometheus_fleet"]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")
_PREFIX = "repro_"


def _metric_name(name: str, suffix: str = "") -> str:
    sanitized = _NAME_SANITIZER.sub("_", name)
    if not re.match(r"[a-zA-Z_:]", sanitized):
        sanitized = f"_{sanitized}"
    return f"{_PREFIX}{sanitized}{suffix}"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(labels: dict | None, extra: dict | None = None) -> str:
    combined = {**(labels or {}), **(extra or {})}
    if not combined:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"'
        for key, value in sorted(combined.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _format_bound(bound: float) -> str:
    return f"{bound:.9g}"


def render_prometheus_fleet(parts: list[tuple[dict, dict]]) -> str:
    """Render several (snapshot, labels) pairs into one exposition page.

    ``# TYPE`` headers are emitted once per metric even when multiple
    nodes expose it, as the format requires.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def _type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for snapshot, labels in parts:
        for name, value in snapshot.get("counters", {}).items():
            metric = _metric_name(name, "_total")
            _type_line(metric, "counter")
            lines.append(f"{metric}{_labels(labels)} {_format_value(value)}")
        for name, value in snapshot.get("gauges", {}).items():
            metric = _metric_name(name)
            _type_line(metric, "gauge")
            lines.append(f"{metric}{_labels(labels)} {_format_value(value)}")
        for name, hist in snapshot.get("histograms", {}).items():
            metric = _metric_name(name)
            _type_line(metric, "histogram")
            cumulative = 0
            for bound, count in zip(hist["bounds"], hist["counts"]):
                cumulative += count
                lines.append(
                    f"{metric}_bucket"
                    f"{_labels(labels, {'le': _format_bound(bound)})} "
                    f"{cumulative}"
                )
            lines.append(
                f"{metric}_bucket{_labels(labels, {'le': '+Inf'})} "
                f"{hist['count']}"
            )
            lines.append(
                f"{metric}_sum{_labels(labels)} {_format_value(hist['sum'])}"
            )
            lines.append(f"{metric}_count{_labels(labels)} {hist['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def render_prometheus(snapshot: dict, *, labels: dict | None = None) -> str:
    """Render one registry snapshot as Prometheus text."""
    return render_prometheus_fleet([(snapshot, labels or {})])
