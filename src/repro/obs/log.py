"""Structured logging with request/node/app context, JSON or key=value.

Every log record the service layer emits carries a ``ctx`` dict (node id,
app id, request id, peer address ...) attached via ``extra={"ctx": ...}``
or through :func:`with_context`.  The formatter renders the context either
as trailing ``key=value`` pairs (human mode) or as one JSON object per
line (``--log-json``), so a request can be grepped across client, DSSP
node, and home server by its ``request_id``.

Exposure safety: context fields are *identifiers*, never payloads.  Use
:func:`envelope_context` to derive loggable fields from an envelope — it
exposes only what the envelope's exposure level already reveals to the
DSSP (application id, level name, visible template name) and never
statement SQL, parameters, sealed bytes, or result rows.
"""

from __future__ import annotations

import json
import logging
import re
import secrets
import sys
import time

__all__ = [
    "ContextAdapter",
    "StructuredFormatter",
    "configure_logging",
    "envelope_context",
    "new_request_id",
    "with_context",
]

#: Logger namespace the helpers configure; the whole library logs under it.
ROOT_LOGGER = "repro"


def new_request_id() -> str:
    """A fresh 64-bit trace id, as 16 lowercase hex characters."""
    return secrets.token_hex(8)


#: Characters that would make an unquoted key=value field ambiguous.
_NEEDS_QUOTING = re.compile(r'[\s="\[\]\\]')


def _field_value(value) -> str:
    """Render one context value for text mode, quoting when ambiguous.

    Plain identifiers stay bare (``request_id=ab12``); values containing
    whitespace, ``=``, quotes, brackets, or control characters are JSON
    string-quoted so the ``[k=v ...]`` trailer stays machine-splittable.
    """
    text = str(value)
    if not text or _NEEDS_QUOTING.search(text) or not text.isprintable():
        return json.dumps(text)
    return text


class StructuredFormatter(logging.Formatter):
    """Renders records (+ their ``ctx`` dict) as key=value text or JSON."""

    def __init__(self, json_mode: bool = False) -> None:
        super().__init__()
        self.json_mode = json_mode

    def format(self, record: logging.LogRecord) -> str:
        message = record.getMessage()
        context = getattr(record, "ctx", None) or {}
        if self.json_mode:
            payload = {
                "ts": round(record.created, 6),
                "level": record.levelname.lower(),
                "logger": record.name,
                "message": message,
                **{str(key): context[key] for key in sorted(context)},
            }
            if record.exc_info:
                payload["exception"] = self.formatException(record.exc_info)
            return json.dumps(payload, separators=(",", ":"), default=str)
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        fields = " ".join(
            f"{key}={_field_value(context[key])}" for key in sorted(context)
        )
        line = f"{stamp} {record.levelname:<7} {record.name} {message}"
        if fields:
            line = f"{line} [{fields}]"
        if record.exc_info:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


class ContextAdapter(logging.LoggerAdapter):
    """LoggerAdapter that merges its bound fields into each record's ctx."""

    def process(self, msg, kwargs):
        extra = kwargs.get("extra") or {}
        inner = extra.get("ctx") or {}
        kwargs["extra"] = {**extra, "ctx": {**self.extra, **inner}}
        return msg, kwargs


def with_context(logger: logging.Logger, **fields) -> ContextAdapter:
    """Bind identifier fields onto every record emitted via the adapter."""
    return ContextAdapter(logger, fields)


def configure_logging(
    level: str = "warning", json_mode: bool = False, stream=None
) -> logging.Logger:
    """Install a structured handler on the ``repro`` logger (idempotent).

    Args:
        level: Name accepted by :mod:`logging` (``debug`` .. ``critical``).
        json_mode: One JSON object per line instead of key=value text.
        stream: Destination (default ``sys.stderr``, keeping stdout clean
            for machine-readable command output).
    """
    logger = logging.getLogger(ROOT_LOGGER)
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    logger.setLevel(numeric)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(StructuredFormatter(json_mode=json_mode))
    for existing in list(logger.handlers):
        if getattr(existing, "_repro_obs", False):
            logger.removeHandler(existing)
    handler._repro_obs = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def envelope_context(envelope) -> dict:
    """Loggable identifiers from an envelope — visible metadata only.

    ``template_name`` is populated only at ``template`` exposure and
    above, so including it never widens what the DSSP (and its logs)
    already see.  Statement text, parameters, sealed bytes, and result
    rows are deliberately unreachable from here.
    """
    context = {
        "app_id": envelope.app_id,
        "level": envelope.level.name.lower(),
    }
    template_name = getattr(envelope, "template_name", None)
    if template_name is not None:
        context["template"] = template_name
    return context
