"""Span-based distributed tracing over the wire-v2 request id.

The paper's split — keyless DSSP nodes at the edge, a keyed home behind
them — makes the system hard to *observe* without weakening the exposure
argument: per-request timing must never carry statement text, bound
parameters, or result rows.  This module records **spans**: named timed
phases of one request, keyed by the wire-v2 request id that already rides
every miss forward, update forward, and invalidation push.  The request
id *is* the trace context, so the protocol is untouched and every node
that sees a frame can contribute spans to the same trace.

Design points (Dapper-style, dependency-free):

* **Head-based sampling by trace id.**  ``SpanRecorder.sampled`` hashes
  the trace id (BLAKE2b) against the sampling rate, so every node makes
  the same keep/drop decision for a given request without coordination —
  one decision at the head governs the whole fleet.
* **Ambient context, not plumbed arguments.**  The net layer opens a
  root span per request with :meth:`SpanRecorder.trace`; library layers
  (cache, crypto, storage, invalidation) call the module-level
  :func:`span` helper, which attaches a child to whatever span is active
  in the current asyncio task and is a cheap no-op otherwise.  Library
  code therefore needs no recorder reference and pays ~one ContextVar
  read when tracing is off.
* **Exposure-safe attributes by construction.**  Attribute keys and
  values are bounded and restricted to scalars; anything else is
  replaced by its type name.  Callers physically cannot attach a
  statement, a parameter tuple, or a row set to a span.
* **JSON-lines sinks.**  Each process appends finished spans to its own
  span log; the assembler (:mod:`repro.obs.assemble`) joins the logs of
  N nodes into trace trees after the fact.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path
from typing import IO, Iterator

__all__ = [
    "NOOP_SPAN",
    "Span",
    "SpanRecorder",
    "SpanSink",
    "current_trace_id",
    "span",
    "trace_sampled",
]

#: Bounds enforced on span attributes (exposure safety by construction).
MAX_ATTRS = 16
MAX_KEY_CHARS = 48
MAX_VALUE_CHARS = 120

#: Span names used on the request hot path, in call order.  Kept here so
#: the assembler and the docs agree on the vocabulary.
PHASES = (
    "client.request",
    "client.exchange",
    "server.decode",
    "server.handle",
    "dssp.cache_lookup",
    "dssp.miss_forward",
    "dssp.update_forward",
    "dssp.invalidate",
    "dssp.stream_apply",
    "home.crypto_open",
    "home.db_execute",
    "home.db_apply",
    "home.crypto_seal",
    "home.fanout_enqueue",
    "home.push_send",
    "storage.execute",
)


def _clean_value(value: object) -> bool | int | float | str:
    """Clamp one attribute value to a bounded exposure-safe scalar."""
    if isinstance(value, bool) or isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        return value[:MAX_VALUE_CHARS]
    # Structured values (rows, tuples, envelopes, ...) are never
    # serialized: only the type name survives.
    return f"<{type(value).__name__}>"


def _clean_attrs(attrs: dict) -> dict:
    cleaned = {}
    for key, value in attrs.items():
        if len(cleaned) >= MAX_ATTRS:
            break
        cleaned[str(key)[:MAX_KEY_CHARS]] = _clean_value(value)
    return cleaned


@dataclass(slots=True)
class Span:
    """One named, timed phase of a request on one node.

    ``start_s`` is wall-clock epoch seconds (shared across processes on
    one host, so the assembler can stitch cross-node parent/child links
    by time containment); ``duration_s`` is measured with the monotonic
    performance counter.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    node: str
    start_s: float
    duration_s: float = 0.0
    attrs: dict = field(default_factory=dict)
    status: str = "ok"

    #: Distinguishes real spans from :data:`NOOP_SPAN` without isinstance.
    recorded = True

    def set(self, key: str, value: object) -> None:
        """Attach a bounded, exposure-safe attribute."""
        if len(self.attrs) < MAX_ATTRS or str(key)[:MAX_KEY_CHARS] in self.attrs:
            self.attrs[str(key)[:MAX_KEY_CHARS]] = _clean_value(value)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def to_dict(self) -> dict:
        record = {
            "trace": self.trace_id,
            "span": self.span_id,
            "name": self.name,
            "node": self.node,
            "ts": round(self.start_s, 6),
            "dur": round(self.duration_s, 9),
        }
        if self.parent_id is not None:
            record["parent"] = self.parent_id
        if self.attrs:
            record["attrs"] = self.attrs
        if self.status != "ok":
            record["status"] = self.status
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        return cls(
            trace_id=record["trace"],
            span_id=record["span"],
            parent_id=record.get("parent"),
            name=record["name"],
            node=record["node"],
            start_s=float(record["ts"]),
            duration_s=float(record["dur"]),
            attrs=dict(record.get("attrs", {})),
            status=record.get("status", "ok"),
        )


class _NoopSpan:
    """Absorbs attribute writes when the trace is unsampled or inactive."""

    __slots__ = ()
    recorded = False

    def set(self, key: str, value: object) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class SpanSink:
    """Per-process span collector: JSON-lines file plus a bounded buffer.

    The in-memory buffer lets a co-located consumer (loadgen's per-phase
    report, the tests) read back recent spans without re-parsing the
    file; the file is the durable cross-process artifact the assembler
    joins.  Every emit is flushed so a SIGTERM'd server leaves a
    complete, parseable log.
    """

    def __init__(
        self, path: str | Path | None = None, *, buffer_limit: int = 20000
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.buffer_limit = buffer_limit
        self._buffer: list[Span] = []
        self._file: IO[str] | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")

    def emit(self, span: Span) -> None:
        if len(self._buffer) < self.buffer_limit:
            self._buffer.append(span)
        if self._file is not None:
            self._file.write(
                json.dumps(span.to_dict(), separators=(",", ":")) + "\n"
            )
            self._file.flush()

    @property
    def spans(self) -> tuple[Span, ...]:
        return tuple(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def trace_sampled(trace_id: str, rate: float) -> bool:
    """The fleet-wide head-based sampling decision for one trace id.

    Deterministic in the trace id alone: every node hashing the same id
    at the same rate keeps or drops the whole trace together.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    digest = blake2b(trace_id.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") < int(rate * 2**64)


#: (recorder, span) active in the current asyncio task, or None.
_ACTIVE: ContextVar[tuple["SpanRecorder", Span] | None] = ContextVar(
    "repro_active_span", default=None
)


class SpanRecorder:
    """Records spans for one node into one sink, under one sampling rate.

    A recorder with no sink (the default on every server and client) is
    permanently disabled and nearly free: root-span entry is one hash at
    most, child-span entry one ContextVar read.
    """

    def __init__(
        self,
        node_id: str,
        sink: SpanSink | None = None,
        *,
        sample_rate: float = 1.0,
    ) -> None:
        self.node_id = node_id
        self.sink = sink
        self.sample_rate = sample_rate
        self._sequence = 0

    @property
    def enabled(self) -> bool:
        return self.sink is not None and self.sample_rate > 0.0

    def sampled(self, trace_id: str | None) -> bool:
        if trace_id is None or not self.enabled:
            return False
        return trace_sampled(trace_id, self.sample_rate)

    def _next_span_id(self) -> str:
        self._sequence += 1
        return f"{self._sequence:08x}"

    @contextmanager
    def trace(
        self, trace_id: str | None, name: str, **attrs: object
    ) -> Iterator[Span | _NoopSpan]:
        """Open a root (or ambient-child) span for ``trace_id``.

        The net layer calls this at request entry; if an ambient span of
        the same trace is already active in this task (e.g. a nested
        client call inside a server handler), the new span becomes its
        child so one node's spans form a proper tree.
        """
        if not self.sampled(trace_id):
            yield NOOP_SPAN
            return
        active = _ACTIVE.get()
        parent_id = (
            active[1].span_id
            if active is not None and active[1].trace_id == trace_id
            else None
        )
        current = Span(
            trace_id=trace_id,
            span_id=self._next_span_id(),
            parent_id=parent_id,
            name=name,
            node=self.node_id,
            start_s=time.time(),
            attrs=_clean_attrs(attrs) if attrs else {},
        )
        token = _ACTIVE.set((self, current))
        started = time.perf_counter()
        try:
            yield current
        except BaseException:
            current.status = "error"
            raise
        finally:
            current.duration_s = time.perf_counter() - started
            _ACTIVE.reset(token)
            self.sink.emit(current)

    def record(
        self,
        trace_id: str | None,
        name: str,
        *,
        start_s: float,
        duration_s: float,
        **attrs: object,
    ) -> None:
        """Emit one already-timed span directly (no ambient context).

        Used where one timed operation serves several traces at once —
        a batched invalidation push covers every coalesced entry's trace
        — or where the work runs outside any request task.
        """
        if not self.sampled(trace_id):
            return
        self.sink.emit(
            Span(
                trace_id=trace_id,
                span_id=self._next_span_id(),
                parent_id=None,
                name=name,
                node=self.node_id,
                start_s=start_s,
                duration_s=duration_s,
                attrs=_clean_attrs(attrs) if attrs else {},
            )
        )

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()


@contextmanager
def span(name: str, **attrs: object) -> Iterator[Span | _NoopSpan]:
    """Attach a child span to whatever trace is active in this task.

    Library layers (cache lookup, crypto seal/open, storage execute,
    invalidation) use this: they never hold a recorder, and when no
    sampled trace is active the cost is one ContextVar read.
    """
    active = _ACTIVE.get()
    if active is None:
        yield NOOP_SPAN
        return
    recorder, parent = active
    current = Span(
        trace_id=parent.trace_id,
        span_id=recorder._next_span_id(),
        parent_id=parent.span_id,
        name=name,
        node=recorder.node_id,
        start_s=time.time(),
        attrs=_clean_attrs(attrs) if attrs else {},
    )
    token = _ACTIVE.set((recorder, current))
    started = time.perf_counter()
    try:
        yield current
    except BaseException:
        current.status = "error"
        raise
    finally:
        current.duration_s = time.perf_counter() - started
        _ACTIVE.reset(token)
        recorder.sink.emit(current)


def current_trace_id() -> str | None:
    """The trace id of the span active in this task, if any."""
    active = _ACTIVE.get()
    return active[1].trace_id if active is not None else None
