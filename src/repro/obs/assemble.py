"""Join per-node span logs into trace trees; profile the critical path.

Each process writes its own JSON-lines span log (:class:`~repro.obs.trace.
SpanSink`).  This module is the offline half of the tracing story: load
the logs of N nodes, group spans by trace id, rebuild each trace's tree,
and answer "where did the time go" — per-phase aggregates across all
traces, and a self-time critical-path decomposition per trace.

Cross-node stitching: within one node, parent links are explicit
(``parent`` span ids are authoritative).  Across nodes the wire carries
only the trace id, so a node's top-level span (e.g. the home's
``server.handle`` for a forwarded miss) is attached to the *smallest
enclosing span* of the same trace by wall-clock containment — sound on a
shared clock because the request path is strictly nested: the DSSP's
forward span brackets the home's handle span.  Spans contained by
nothing (the client's root, and post-ack asynchronous work like
invalidation pushes) remain roots; a trace is therefore a small forest
whose primary root is the earliest-starting span.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.trace import Span

__all__ = [
    "TraceNode",
    "TraceTree",
    "assemble",
    "critical_path",
    "load_spans",
    "phase_aggregates",
    "summarize",
]

#: Wall-clock slack allowed when testing interval containment, seconds.
#: Same-host processes share the clock; this absorbs timer granularity.
CONTAINMENT_SLACK_S = 0.002

#: Phases that are *asynchronous by design* — they run after the update
#: was acked, so they are forest roots and must never be stitched under
#: the synchronous request tree (the slack would otherwise absorb small
#: post-ack gaps and double-count their time on the critical path).
ASYNC_PHASES = frozenset({"home.push_send", "dssp.stream_apply"})

#: Phases that must all appear for an update trace to count as a
#: *complete cross-node* trace: client send, DSSP handle + forward, home
#: apply, fan-out enqueue, push send, and the receiving node's apply.
REQUIRED_UPDATE_PHASES = frozenset(
    {
        "client.request",
        "server.handle",
        "home.db_apply",
        "home.fanout_enqueue",
        "home.push_send",
        "dssp.stream_apply",
    }
)


@dataclass
class TraceNode:
    """One span plus its resolved children, ordered by start time."""

    span: Span
    children: list["TraceNode"] = field(default_factory=list)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


class TraceTree:
    """All spans of one trace, assembled into a forest."""

    def __init__(self, trace_id: str, roots: list[TraceNode]) -> None:
        self.trace_id = trace_id
        self.roots = roots

    @property
    def root(self) -> TraceNode:
        """The primary root: the earliest-starting top-level span."""
        return min(self.roots, key=lambda node: node.span.start_s)

    def walk(self):
        for root in self.roots:
            yield from root.walk()

    @property
    def spans(self) -> list[Span]:
        return [node.span for node in self.walk()]

    @property
    def names(self) -> set[str]:
        return {span.name for span in self.spans}

    @property
    def node_ids(self) -> set[str]:
        return {span.node for span in self.spans}

    @property
    def duration_s(self) -> float:
        """End-to-end latency as the client measured it (primary root)."""
        return self.root.span.duration_s

    def is_complete_update(self) -> bool:
        """Client → dssp → home → fan-out → apply, across >= 3 nodes."""
        return (
            REQUIRED_UPDATE_PHASES <= self.names and len(self.node_ids) >= 3
        )


def load_spans(paths) -> list[Span]:
    """Read spans from JSON-lines logs (blank lines tolerated)."""
    import json

    spans: list[Span] = []
    for path in paths:
        text = Path(path).read_text(encoding="utf-8")
        for line in text.splitlines():
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def _contains(outer: Span, inner: Span) -> bool:
    return (
        outer.start_s - CONTAINMENT_SLACK_S <= inner.start_s
        and inner.end_s <= outer.end_s + CONTAINMENT_SLACK_S
    )


def _assemble_one(trace_id: str, spans: list[Span]) -> TraceTree:
    nodes = [TraceNode(span) for span in spans]
    by_id = {(node.span.node, node.span.span_id): node for node in nodes}
    tops: list[TraceNode] = []
    for node in nodes:
        parent_key = (node.span.node, node.span.parent_id)
        parent = by_id.get(parent_key) if node.span.parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            tops.append(node)
    roots: list[TraceNode] = []
    for node in tops:
        if node.span.name in ASYNC_PHASES:
            roots.append(node)
            continue
        # Smallest enclosing span wins; requiring a strictly longer
        # container keeps the stitching acyclic.
        best = None
        for candidate in nodes:
            if candidate is node:
                continue
            if candidate.span.duration_s <= node.span.duration_s:
                continue
            if not _contains(candidate.span, node.span):
                continue
            if best is None or candidate.span.duration_s < best.span.duration_s:
                best = candidate
        if best is not None:
            best.children.append(node)
        else:
            roots.append(node)
    for node in nodes:
        node.children.sort(key=lambda child: child.span.start_s)
    return TraceTree(trace_id, roots)


def assemble(spans: list[Span]) -> dict[str, TraceTree]:
    """Group spans by trace id and build each trace's tree."""
    grouped: dict[str, list[Span]] = {}
    for span in spans:
        grouped.setdefault(span.trace_id, []).append(span)
    return {
        trace_id: _assemble_one(trace_id, members)
        for trace_id, members in grouped.items()
    }


def _union_length(intervals: list[tuple[float, float]]) -> float:
    total = 0.0
    end = float("-inf")
    for start, stop in sorted(intervals):
        if stop <= end:
            continue
        total += stop - max(start, end)
        end = stop
    return total


def _self_time(node: TraceNode) -> float:
    """Span duration minus the union of child intervals (clipped).

    Clipping children to the parent's interval and subtracting their
    *union* makes the self-times of a subtree sum exactly to the root's
    duration — the critical-path breakdown is a partition, not an
    approximation, which is what lets it be checked against the measured
    end-to-end latency.
    """
    start, end = node.span.start_s, node.span.end_s
    intervals = []
    for child in node.children:
        lo = max(child.span.start_s, start)
        hi = min(child.span.end_s, end)
        if hi > lo:
            intervals.append((lo, hi))
    return max(0.0, node.span.duration_s - _union_length(intervals))


def critical_path(tree: TraceTree) -> dict:
    """Self-time decomposition of the primary root's synchronous tree.

    Returns ``{"total_s", "covered_s", "entries"}`` where entries are
    ``{"name", "node", "self_s", "share"}`` aggregated over (node, phase)
    and sorted by self time; ``covered_s`` sums the entries and equals
    ``total_s`` up to wall/perf-clock skew.
    """
    accumulated: dict[tuple[str, str], float] = {}
    for node in tree.root.walk():
        key = (node.span.node, node.span.name)
        accumulated[key] = accumulated.get(key, 0.0) + _self_time(node)
    total = tree.duration_s
    entries = [
        {
            "name": name,
            "node": node_id,
            "self_s": self_s,
            "share": (self_s / total) if total > 0 else 0.0,
        }
        for (node_id, name), self_s in accumulated.items()
    ]
    entries.sort(key=lambda entry: entry["self_s"], reverse=True)
    return {
        "total_s": total,
        "covered_s": sum(entry["self_s"] for entry in entries),
        "entries": entries,
    }


def _quantile(ordered: list[float], q: float) -> float:
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def phase_aggregates(spans: list[Span]) -> dict[str, dict]:
    """Exact per-phase latency aggregates over a span population."""
    by_name: dict[str, list[float]] = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span.duration_s)
    aggregates = {}
    for name in sorted(by_name):
        durations = sorted(by_name[name])
        aggregates[name] = {
            "count": len(durations),
            "total_s": sum(durations),
            "mean_s": sum(durations) / len(durations),
            "p50_s": _quantile(durations, 0.50),
            "p90_s": _quantile(durations, 0.90),
            "p99_s": _quantile(durations, 0.99),
            "max_s": durations[-1],
        }
    return aggregates


def summarize(trees: dict[str, TraceTree], *, slowest: int = 5) -> dict:
    """The ``repro trace`` JSON report body."""
    all_spans = [span for tree in trees.values() for span in tree.spans]
    complete = [
        tree for tree in trees.values() if tree.is_complete_update()
    ]
    ranked = sorted(
        trees.values(), key=lambda tree: tree.duration_s, reverse=True
    )
    return {
        "traces": len(trees),
        "spans": len(all_spans),
        "nodes": sorted({span.node for span in all_spans}),
        "complete_update_traces": len(complete),
        "phases": phase_aggregates(all_spans),
        "slowest": [
            {
                "trace": tree.trace_id,
                "duration_s": tree.duration_s,
                "root": tree.root.span.name,
                "spans": len(tree.spans),
                "critical_path": critical_path(tree)["entries"][:5],
            }
            for tree in ranked[:slowest]
        ],
    }
