"""Dependency-free metrics: counters, gauges, log-bucket histograms.

The paper's argument is carried by measured quantities — hit rate,
invalidations per update template, home-server load, p90 latency — so the
deployed service needs a way to *export* them at runtime, not just
accumulate them in process-local dataclasses.  This module is the single
registry every layer reports into:

* :class:`Counter` — monotonically increasing totals (requests, retries);
* :class:`Gauge` — instantaneous values, either set directly or backed by
  a callable sampled at snapshot time (in-flight requests, cache size,
  fan-out queue depths);
* :class:`Histogram` — fixed logarithmic buckets with O(1) ``observe`` and
  quantile estimates by linear interpolation inside the winning bucket,
  so p50/p90/p99 never require retaining or re-sorting raw samples.

``snapshot()`` produces a JSON-safe dict (the ``STATS`` wire frame and the
``repro stats`` CLI verb serialize it as-is); :func:`merge_snapshots` sums
any number of snapshots for fleet-level aggregation, mirroring
:meth:`repro.dssp.stats.DsspStats.merge`.

Exposure safety: metric *names* and *values* are the only things that ever
leave this module.  Nothing here stores statement text, parameters, or
result rows — the registry cannot leak what it was never given.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections.abc import Callable, Sequence

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BOUNDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "histogram_quantile",
    "log_buckets",
    "merge_snapshots",
    "per_app_counters",
]


def log_buckets(
    start: float = 1e-6, factor: float = 2.0, count: int = 36
) -> tuple[float, ...]:
    """Geometric bucket upper bounds: ``start * factor**i`` for i < count."""
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ValueError("need start > 0, factor > 1 and count >= 1")
    return tuple(start * factor**i for i in range(count))


#: 1 µs .. ~34 s in doubling buckets: spans localhost RPCs to WAN p99s.
DEFAULT_LATENCY_BOUNDS = log_buckets()


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """An instantaneous value; optionally backed by a sampling callable."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Callable[[], float] | None = None) -> None:
        self.name = name
        self._value = 0.0
        self._fn = fn

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value

    def set(self, value: float) -> None:
        self._require_settable()
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        self._require_settable()
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def _require_settable(self) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name} is callable-backed")


class Histogram:
    """Fixed log-bucket histogram with interpolated quantile estimates.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything beyond the last edge.
    Tracked ``min``/``max`` clamp the interpolation so quantiles never
    stray outside the observed range.

    An observation may carry an *exemplar* — an identifier (in practice a
    trace id) linking the measurement to its trace.  The histogram keeps
    only the :data:`EXEMPLAR_LIMIT` slowest exemplars, so the snapshot of
    a hot histogram answers "which traces explain the tail" at O(1) cost.
    """

    #: Slowest (value, exemplar) pairs retained per histogram.
    EXEMPLAR_LIMIT = 8

    __slots__ = (
        "name", "bounds", "counts", "count", "sum", "min", "max", "exemplars"
    )

    def __init__(
        self, name: str, bounds: Sequence[float] | None = None
    ) -> None:
        self.name = name
        self.bounds = tuple(bounds) if bounds is not None else DEFAULT_LATENCY_BOUNDS
        if list(self.bounds) != sorted(self.bounds) or len(self.bounds) < 1:
            raise ValueError("histogram bounds must be sorted and non-empty")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.exemplars: list[tuple[float, str]] = []

    def observe(self, value: float, exemplar: str | None = None) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if exemplar is not None:
            self._keep_exemplar(value, str(exemplar))

    def _keep_exemplar(self, value: float, exemplar: str) -> None:
        keep = self.exemplars
        if len(keep) < self.EXEMPLAR_LIMIT:
            keep.append((value, exemplar))
            keep.sort(reverse=True)
        elif value > keep[-1][0]:
            keep[-1] = (value, exemplar)
            keep.sort(reverse=True)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` (0 <= q <= 1); 0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self.count:
            return 0.0
        return _bucket_quantile(
            self.bounds, self.counts, self.count, self.min, self.max, q
        )

    def merge(self, other: "Histogram") -> None:
        """Add another histogram's observations (bounds must match)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for value, exemplar in other.exemplars:
            self._keep_exemplar(value, exemplar)

    def snapshot(self) -> dict:
        """JSON-safe form, including precomputed headline quantiles."""
        result = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "quantiles": {
                "p50": self.quantile(0.50),
                "p90": self.quantile(0.90),
                "p99": self.quantile(0.99),
            },
        }
        if self.exemplars:
            result["exemplars"] = [
                {"value": value, "trace_id": exemplar}
                for value, exemplar in self.exemplars
            ]
        return result


def _bucket_quantile(
    bounds: Sequence[float],
    counts: Sequence[int],
    total: int,
    observed_min: float,
    observed_max: float,
    q: float,
) -> float:
    target = q * total
    cumulative = 0.0
    for index, count in enumerate(counts):
        if not count:
            continue
        if cumulative + count >= target:
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index] if index < len(bounds) else observed_max
            fraction = (target - cumulative) / count
            estimate = lower + (upper - lower) * max(0.0, min(1.0, fraction))
            return min(max(estimate, observed_min), observed_max)
        cumulative += count
    return observed_max


def histogram_quantile(snapshot: dict, q: float) -> float:
    """Quantile estimate from a histogram *snapshot* (e.g. off the wire)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    total = snapshot["count"]
    if not total:
        return 0.0
    return _bucket_quantile(
        snapshot["bounds"],
        snapshot["counts"],
        total,
        snapshot["min"],
        snapshot["max"],
        q,
    )


class MetricsRegistry:
    """Get-or-create registry of named metrics with a JSON-safe snapshot."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            self._check_fresh(name)
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str, fn: Callable[[], float] | None = None) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            self._check_fresh(name)
            gauge = self._gauges[name] = Gauge(name, fn)
        return gauge

    def histogram(
        self, name: str, bounds: Sequence[float] | None = None
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            self._check_fresh(name)
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    def _check_fresh(self, name: str) -> None:
        if (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        ):
            raise ValueError(f"metric {name!r} already registered as another type")

    def snapshot(self) -> dict:
        """JSON-safe view of every registered metric (gauges sampled now)."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }


def merge_snapshots(*snapshots: dict) -> dict:
    """Sum registry snapshots (fleet aggregation of STATS payloads).

    Variadic over any number of per-node snapshots — ``repro stats`` with
    several targets merges the whole fleet in one call.  Counters, gauges,
    and histogram buckets add; histogram min/max widen; exemplars keep the
    slowest few across the fleet.  Metrics present in only some snapshots
    carry over unchanged.
    """
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for kind in ("counters", "gauges"):
        names = {name for snap in snapshots for name in snap.get(kind, {})}
        for name in sorted(names):
            merged[kind][name] = sum(
                snap.get(kind, {}).get(name, 0.0) for snap in snapshots
            )
    names = {name for snap in snapshots for name in snap.get("histograms", {})}
    for name in sorted(names):
        parts = [
            snap["histograms"][name]
            for snap in snapshots
            if name in snap.get("histograms", {})
        ]
        merged["histograms"][name] = _merge_histogram_parts(name, parts)
    return merged


def per_app_counters(snapshot: dict, base: str) -> dict[str, float]:
    """Extract ``{app_id: value}`` for counters named ``<base>.<app_id>``.

    The registry keeps flat string names, so per-application families
    (``server.app_requests.bookstore`` …) are encoded as a dotted suffix;
    this peels the family back into a mapping.  The app id is the whole
    remainder after ``base + "."``, so ids containing dots round-trip.
    """
    prefix = base + "."
    return {
        name[len(prefix):]: value
        for name, value in snapshot.get("counters", {}).items()
        if name.startswith(prefix)
    }


def _merge_histogram_parts(name: str, parts: list[dict]) -> dict:
    if len(parts) == 1:
        return dict(parts[0])
    bounds = parts[0]["bounds"]
    for part in parts[1:]:
        if part["bounds"] != bounds:
            raise ValueError(f"histogram {name!r} bounds differ across snapshots")
    populated = [part for part in parts if part["count"]]
    combined = {
        "count": sum(part["count"] for part in parts),
        "sum": sum(part["sum"] for part in parts),
        "min": min(part["min"] for part in populated) if populated else 0.0,
        "max": max(part["max"] for part in parts),
        "bounds": list(bounds),
        "counts": [sum(column) for column in zip(*(p["counts"] for p in parts))],
    }
    combined["quantiles"] = {
        "p50": histogram_quantile(combined, 0.50),
        "p90": histogram_quantile(combined, 0.90),
        "p99": histogram_quantile(combined, 0.99),
    }
    exemplars = sorted(
        (
            (entry["value"], entry["trace_id"])
            for part in parts
            for entry in part.get("exemplars", ())
        ),
        reverse=True,
    )[: Histogram.EXEMPLAR_LIMIT]
    if exemplars:
        combined["exemplars"] = [
            {"value": value, "trace_id": trace_id}
            for value, trace_id in exemplars
        ]
    return combined
