"""Observability for the networked DSSP: metrics, traces, structured logs.

Closes the loop between the analytic model and the live system:

* :mod:`repro.obs.metrics` — dependency-free counters, gauges, and
  fixed-log-bucket latency histograms with JSON-safe ``snapshot()`` and
  fleet-level ``merge``;
* :mod:`repro.obs.log` — structured log records carrying node/app/request
  context, rendered as key=value text or JSON lines, plus the request-id
  generator used for trace propagation across the wire.

Everything here obeys the service layer's exposure invariant: metric
names, identifiers, and durations are exported — statement text,
parameters, sealed bytes, and result rows never are.
"""

from repro.obs.log import (
    ContextAdapter,
    StructuredFormatter,
    configure_logging,
    envelope_context,
    new_request_id,
    with_context,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
    log_buckets,
    merge_snapshots,
)

__all__ = [
    "ContextAdapter",
    "Counter",
    "DEFAULT_LATENCY_BOUNDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StructuredFormatter",
    "configure_logging",
    "envelope_context",
    "histogram_quantile",
    "log_buckets",
    "merge_snapshots",
    "new_request_id",
    "with_context",
]
