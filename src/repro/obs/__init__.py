"""Observability for the networked DSSP: metrics, traces, structured logs.

Closes the loop between the analytic model and the live system:

* :mod:`repro.obs.metrics` — dependency-free counters, gauges, and
  fixed-log-bucket latency histograms with JSON-safe ``snapshot()``,
  fleet-level ``merge``, and exemplars linking slow observations to
  trace ids;
* :mod:`repro.obs.log` — structured log records carrying node/app/request
  context, rendered as key=value text or JSON lines, plus the request-id
  generator used for trace propagation across the wire;
* :mod:`repro.obs.trace` — span recording over the wire-v2 request id:
  head-sampled, ambient per-task context, JSON-lines span logs;
* :mod:`repro.obs.assemble` — joins the span logs of N nodes into trace
  trees and computes critical-path / per-phase breakdowns;
* :mod:`repro.obs.prom` — Prometheus text exposition of snapshots.

Everything here obeys the service layer's exposure invariant: metric
names, identifiers, and durations are exported — statement text,
parameters, sealed bytes, and result rows never are.
"""

from repro.obs.log import (
    ContextAdapter,
    StructuredFormatter,
    configure_logging,
    envelope_context,
    new_request_id,
    with_context,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
    log_buckets,
    merge_snapshots,
    per_app_counters,
)
from repro.obs.prom import render_prometheus, render_prometheus_fleet
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    SpanRecorder,
    SpanSink,
    current_trace_id,
    span,
    trace_sampled,
)

__all__ = [
    "ContextAdapter",
    "Counter",
    "DEFAULT_LATENCY_BOUNDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "SpanRecorder",
    "SpanSink",
    "StructuredFormatter",
    "configure_logging",
    "current_trace_id",
    "envelope_context",
    "histogram_quantile",
    "log_buckets",
    "merge_snapshots",
    "new_request_id",
    "per_app_counters",
    "render_prometheus",
    "render_prometheus_fleet",
    "span",
    "trace_sampled",
    "with_context",
]
