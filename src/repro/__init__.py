"""repro — a reproduction of *Simultaneous Scalability and Security for
Data-Intensive Web Applications* (Manjhi et al., SIGMOD 2006).

The library implements, from scratch:

* the paper's SQL dialect, an in-memory relational engine, and a template
  system (:mod:`repro.sql`, :mod:`repro.storage`, :mod:`repro.templates`);
* the **static security/scalability analysis** — IPM characterization and
  the scalability-conscious security design methodology
  (:mod:`repro.analysis`);
* a **Database Scalability Service Provider** runtime with the four
  minimal invalidation strategy classes and deterministic encryption
  (:mod:`repro.dssp`, :mod:`repro.crypto`);
* the evaluation harness: three benchmark applications (auction / bboard /
  bookstore) and the scalability simulator (:mod:`repro.workloads`,
  :mod:`repro.simulation`).

Quickstart::

    from repro import get_application, design_exposure_policy

    app = get_application("bookstore")
    result = design_exposure_policy(app.registry)
    print(result.encrypted_result_count(), "of",
          len(app.registry.queries), "query results encryptable for free")
"""

from repro.analysis import (
    ExposureLevel,
    ExposurePolicy,
    IpmCharacterization,
    PairCharacterization,
    characterize_application,
    characterize_pair,
    design_exposure_policy,
    format_ipm_table,
    format_summary_table,
    summarize_characterization,
)
from repro.analysis.diagnostics import check_runtime_assumptions
from repro.crypto import EnvelopeCodec, Keyring
from repro.dssp import (
    DsspNode,
    HomeServer,
    InvalidationEngine,
    StrategyClass,
    verify_invalidation_correctness,
)
from repro.errors import ReproError
from repro.schema import Attribute, Column, ColumnType, ForeignKey, Schema, TableSchema
from repro.simulation import (
    SimulationParams,
    find_scalability,
    measure_cache_behavior,
    predict_p90,
    simulate_users,
)
from repro.sql import parse, to_sql
from repro.storage import Database, ResultSet
from repro.templates import QueryTemplate, TemplateRegistry, UpdateTemplate
from repro.workloads import APPLICATIONS, get_application

__version__ = "1.0.0"

__all__ = [
    "APPLICATIONS",
    "Attribute",
    "Column",
    "ColumnType",
    "Database",
    "DsspNode",
    "EnvelopeCodec",
    "ExposureLevel",
    "ExposurePolicy",
    "ForeignKey",
    "HomeServer",
    "InvalidationEngine",
    "IpmCharacterization",
    "Keyring",
    "PairCharacterization",
    "QueryTemplate",
    "ReproError",
    "ResultSet",
    "Schema",
    "SimulationParams",
    "StrategyClass",
    "TableSchema",
    "TemplateRegistry",
    "UpdateTemplate",
    "characterize_application",
    "characterize_pair",
    "check_runtime_assumptions",
    "design_exposure_policy",
    "find_scalability",
    "format_ipm_table",
    "format_summary_table",
    "get_application",
    "measure_cache_behavior",
    "parse",
    "predict_p90",
    "simulate_users",
    "summarize_characterization",
    "to_sql",
    "verify_invalidation_correctness",
]
