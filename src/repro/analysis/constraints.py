"""Integrity-constraint refinement of the IPM (paper Section 4.5).

Two rules let the DSSP conclude A_ij = 0 (hence B = C = 0 by Property 3)
for insertion templates even when the pair is not ignorable:

1. **Primary-key rule.**  If every occurrence of the inserted-into table in
   the query is pinned by an equality predicate covering the table's full
   primary key (against a constant or parameter), then an insertion cannot
   affect any cached instance: the cached instance selected key value(s)
   that — under the paper's non-empty-result assumption — already exist,
   and the primary key forbids inserting a duplicate.

2. **Foreign-key rule.**  If every occurrence of the inserted-into (parent)
   table in the query is joined, via equality, to a child table's
   foreign-key column referencing the parent's key, then an insertion
   cannot affect any instance: the fresh parent key is new (PK uniqueness),
   and FK integrity means no child row references it yet.

Both rules assume the constraints themselves are visible to the DSSP — the
paper argues (footnote 4) that integrity constraints are insensitive data
for all three benchmark applications.
"""

from __future__ import annotations

from repro.schema.schema import Schema
from repro.sql.ast import (
    ColumnRef,
    ComparisonOp,
    Delete,
    Insert,
    Select,
    Update,
)

__all__ = ["constraint_implies_no_effect"]


def constraint_implies_no_effect(
    schema: Schema, update: Insert | Delete | Update, query: Select
) -> bool:
    """Return True if integrity constraints prove the update cannot affect
    any instance of the query (A_ij = 0).

    Only insertion templates benefit from the Section 4.5 rules; deletions
    and modifications return False here (ignorability may still apply via
    Lemma 1, which the caller checks separately).
    """
    if not isinstance(update, Insert):
        return False
    table = schema.table(update.table)
    scope = {ref.binding: ref.name for ref in query.tables}
    target_bindings = [
        binding for binding, base in scope.items() if base == table.name
    ]
    if not target_bindings:
        # The query never reads the table; Lemma 1 (ignorability) covers it.
        return False
    return all(
        _binding_pinned_by_key(table, query, scope, binding)
        or _binding_joined_via_foreign_key(schema, table, query, scope, binding)
        for binding in target_bindings
    )


def _refers_to(ref: ColumnRef, binding: str, scope: dict[str, str]) -> bool:
    """True if ``ref`` resolves to the given binding.

    Template registration already guarantees every reference resolves
    uniquely, so an unqualified reference whose column belongs to the
    binding's base table can only mean that binding (a self-join would have
    made it ambiguous and been rejected).
    """
    if ref.table is not None:
        return ref.table == binding
    return True


def _binding_pinned_by_key(
    table, query: Select, scope: dict[str, str], binding: str
) -> bool:
    """Primary-key rule: equality on the full PK against constants/params."""
    if not table.primary_key:
        return False
    pinned: set[str] = set()
    for comparison in query.where:
        if comparison.op is not ComparisonOp.EQ or comparison.is_join():
            continue
        for ref in comparison.column_refs():
            if not table.has_column(ref.column):
                continue
            if not _refers_to(ref, binding, scope):
                continue
            if table.is_key_column(ref.column):
                pinned.add(ref.column)
    return set(table.primary_key) <= pinned


def _binding_joined_via_foreign_key(
    schema: Schema, table, query: Select, scope: dict[str, str], binding: str
) -> bool:
    """Foreign-key rule: equality join child.fk = parent.pk pins the parent."""
    if len(table.primary_key) != 1:
        return False
    key_column = table.primary_key[0]
    for comparison in query.where:
        if comparison.op is not ComparisonOp.EQ or not comparison.is_join():
            continue
        left, right = comparison.left, comparison.right
        assert isinstance(left, ColumnRef) and isinstance(right, ColumnRef)
        for parent_ref, child_ref in ((left, right), (right, left)):
            if parent_ref.column != key_column:
                continue
            if parent_ref.table is not None and parent_ref.table != binding:
                continue
            if parent_ref.table is None and scope.get(binding) != table.name:
                continue
            child_base = _resolve_base(schema, scope, child_ref)
            if child_base is None or child_base == table.name:
                continue
            child_table = schema.table(child_base)
            for foreign_key in child_table.foreign_keys:
                if (
                    foreign_key.column == child_ref.column
                    and foreign_key.ref_table == table.name
                    and foreign_key.ref_column == key_column
                ):
                    return True
    return False


def _resolve_base(
    schema: Schema, scope: dict[str, str], ref: ColumnRef
) -> str | None:
    if ref.table is not None:
        return scope.get(ref.table)
    # Unqualified: registration guarantees unique ownership across scope.
    owners = {
        base for base in scope.values() if schema.table(base).has_column(ref.column)
    }
    if len(owners) == 1:
        return owners.pop()
    return None
