"""Exposure levels and the exposure → IPM-entry mapping.

The administrator chooses an exposure level per template (paper Section
2.3): ``E(U_T) ∈ {blind, template, stmt}`` for update templates and
``E(Q_T) ∈ {blind, template, stmt, view}`` for query templates.  Each level
exposes strictly more to the DSSP (Figure 5's security gradient); whatever
is not exposed travels encrypted.

The pair of exposure levels selects which IPM entry governs invalidation of
the pair (Figure 6):

===========  =======  ==========  ======  ======
U \\ Q        blind    template    stmt    view
===========  =======  ==========  ======  ======
blind        1        1           1       1
template     1        A           A       A
stmt         1        A           B       C
===========  =======  ==========  ======  ======
"""

from __future__ import annotations

import enum
from collections.abc import Mapping

from repro.errors import AnalysisError
from repro.templates.registry import TemplateRegistry

__all__ = ["ExposureLevel", "ExposurePolicy", "IpmEntryKind", "ipm_entry_kind"]


class ExposureLevel(enum.IntEnum):
    """How much of a template's information the DSSP may see.

    Ordering is meaningful: lower value = less exposure = more encryption.
    ``VIEW`` applies only to query templates (it exposes the query statement
    *and* its cached result).
    """

    BLIND = 0
    TEMPLATE = 1
    STMT = 2
    VIEW = 3

    @property
    def label(self) -> str:
        """The paper's lowercase name for the level."""
        return self.name.lower()


class IpmEntryKind(enum.Enum):
    """Which symbolic IPM entry governs a pair at given exposure levels."""

    ONE = "1"
    A = "A"
    B = "B"
    C = "C"


def ipm_entry_kind(
    update_level: ExposureLevel, query_level: ExposureLevel
) -> IpmEntryKind:
    """Map a (U exposure, Q exposure) pair to its IPM entry (Figure 6).

    Raises:
        AnalysisError: if the update level is ``VIEW`` (updates have no
            cached result to expose).
    """
    if update_level is ExposureLevel.VIEW:
        raise AnalysisError("update templates have no 'view' exposure level")
    if update_level is ExposureLevel.BLIND or query_level is ExposureLevel.BLIND:
        return IpmEntryKind.ONE
    if (
        update_level is ExposureLevel.TEMPLATE
        or query_level is ExposureLevel.TEMPLATE
    ):
        return IpmEntryKind.A
    if query_level is ExposureLevel.STMT:
        return IpmEntryKind.B
    return IpmEntryKind.C


class ExposurePolicy:
    """An assignment of exposure levels to every template of an application.

    Immutable-ish mapping with convenience constructors; the methodology
    produces these and the DSSP consumes them (to pick per-pair strategies
    and to decide what to encrypt).
    """

    def __init__(
        self,
        queries: Mapping[str, ExposureLevel],
        updates: Mapping[str, ExposureLevel],
    ) -> None:
        for name, level in updates.items():
            if level is ExposureLevel.VIEW:
                raise AnalysisError(
                    f"update template {name!r} cannot have 'view' exposure"
                )
        self._queries = dict(queries)
        self._updates = dict(updates)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def maximum_exposure(cls, registry: TemplateRegistry) -> "ExposurePolicy":
        """Everything exposed: queries at ``view``, updates at ``stmt``.

        This is the methodology's starting point (Step 1 input) and also
        the "No Encryption" end of the tradeoff (Figure 3's left point).
        """
        return cls(
            queries={q.name: ExposureLevel.VIEW for q in registry.queries},
            updates={u.name: ExposureLevel.STMT for u in registry.updates},
        )

    @classmethod
    def full_encryption(cls, registry: TemplateRegistry) -> "ExposurePolicy":
        """Everything hidden: all templates at ``blind`` (Figure 3's right)."""
        return cls(
            queries={q.name: ExposureLevel.BLIND for q in registry.queries},
            updates={u.name: ExposureLevel.BLIND for u in registry.updates},
        )

    @classmethod
    def uniform(
        cls, registry: TemplateRegistry, level: ExposureLevel
    ) -> "ExposurePolicy":
        """All queries at ``level``; updates at ``min(level, stmt)``.

        Used for the coarse-grain comparison of Figure 8, where one
        invalidation-strategy class serves every pair.
        """
        update_level = min(level, ExposureLevel.STMT)
        return cls(
            queries={q.name: level for q in registry.queries},
            updates={u.name: ExposureLevel(update_level) for u in registry.updates},
        )

    # -- access -------------------------------------------------------------------

    def query_level(self, name: str) -> ExposureLevel:
        """Exposure level of query template ``name``."""
        try:
            return self._queries[name]
        except KeyError:
            raise AnalysisError(f"no exposure set for query {name!r}") from None

    def update_level(self, name: str) -> ExposureLevel:
        """Exposure level of update template ``name``."""
        try:
            return self._updates[name]
        except KeyError:
            raise AnalysisError(f"no exposure set for update {name!r}") from None

    @property
    def query_levels(self) -> dict[str, ExposureLevel]:
        """Copy of the query-template exposure assignment."""
        return dict(self._queries)

    @property
    def update_levels(self) -> dict[str, ExposureLevel]:
        """Copy of the update-template exposure assignment."""
        return dict(self._updates)

    # -- mutation-by-copy -----------------------------------------------------------

    def with_query_level(self, name: str, level: ExposureLevel) -> "ExposurePolicy":
        """Return a copy with one query template's level replaced."""
        self.query_level(name)  # validate existence
        queries = dict(self._queries)
        queries[name] = level
        return ExposurePolicy(queries, self._updates)

    def with_update_level(self, name: str, level: ExposureLevel) -> "ExposurePolicy":
        """Return a copy with one update template's level replaced."""
        self.update_level(name)
        updates = dict(self._updates)
        updates[name] = level
        return ExposurePolicy(self._queries, updates)

    # -- metrics ----------------------------------------------------------------------

    def encrypted_result_count(self) -> int:
        """Number of query templates whose *results* are encrypted.

        This is the simple security metric of Figure 3's x-axis: a query
        result is encrypted whenever the query's exposure level is below
        ``view``.
        """
        return sum(
            1 for level in self._queries.values() if level < ExposureLevel.VIEW
        )

    def encrypted_parameter_counts(self) -> tuple[int, int]:
        """(queries, updates) whose parameters are encrypted (level < stmt)."""
        queries = sum(
            1 for level in self._queries.values() if level < ExposureLevel.STMT
        )
        updates = sum(
            1 for level in self._updates.values() if level < ExposureLevel.STMT
        )
        return queries, updates

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExposurePolicy):
            return NotImplemented
        return (
            self._queries == other._queries and self._updates == other._updates
        )

    def __repr__(self) -> str:
        return (
            f"ExposurePolicy(queries={len(self._queries)}, "
            f"updates={len(self._updates)})"
        )
