"""Static security/scalability analysis — the paper's core contribution.

* :mod:`~repro.analysis.exposure` — per-template exposure levels
  (``blind < template < stmt < view``, paper Figure 5) and the exposure →
  IPM-entry mapping (Figure 6).
* :mod:`~repro.analysis.ipm` — the Invalidation Probability Matrix
  characterization (Section 4): decides statically, per update/query
  template pair, whether A = 1 vs 0, B = A, and C = B.
* :mod:`~repro.analysis.constraints` — integrity-constraint refinement
  (Section 4.5): primary-key and foreign-key rules that force A = 0.
* :mod:`~repro.analysis.methodology` — the scalability-conscious security
  design methodology (Section 3.1): compulsory encryption (Step 1), then
  the greedy maximal exposure reduction that provably leaves every IPM
  entry unchanged (Step 2b).
* :mod:`~repro.analysis.report` — Table 4 / Table 7 / Figure 7 renderings.
"""

from repro.analysis.exposure import (
    ExposureLevel,
    ExposurePolicy,
    IpmEntryKind,
    ipm_entry_kind,
)
from repro.analysis.ipm import (
    IpmCharacterization,
    PairCharacterization,
    characterize_application,
    characterize_pair,
)
from repro.analysis.methodology import (
    MethodologyResult,
    apply_compulsory_encryption,
    design_exposure_policy,
    reduce_exposure_levels,
)
from repro.analysis.report import (
    format_ipm_table,
    format_summary_table,
    summarize_characterization,
)

__all__ = [
    "ExposureLevel",
    "ExposurePolicy",
    "IpmCharacterization",
    "IpmEntryKind",
    "MethodologyResult",
    "PairCharacterization",
    "apply_compulsory_encryption",
    "characterize_application",
    "characterize_pair",
    "design_exposure_policy",
    "format_ipm_table",
    "format_summary_table",
    "ipm_entry_kind",
    "reduce_exposure_levels",
    "summarize_characterization",
]
