"""Statement-level query/update independence (runtime core of MSIS).

Given a *bound* update and a *bound* query (parameters visible — exposure
level ``stmt``), decide soundly whether the update provably cannot change
the query's result.  This is the Levy–Sagiv style reasoning the paper cites
for implementing statement-inspection strategies: the general problem is
undecidable, so the checks are conservative — ``False`` ("cannot rule out")
is always a safe answer.

The reasoning is interval satisfiability over the conjunctive predicates:

* **Insertion** — the new row is fully known; if it fails the query's
  single-binding predicates for every occurrence of the table, it can never
  enter the query pipeline.
* **Deletion** — deleted rows satisfy the deletion predicate; if that
  predicate is jointly unsatisfiable with the query's binding predicates,
  no deleted row ever participated in the result.
* **Modification** — the touched row is pinned by its key; the *old* row
  may have participated unless the key value contradicts the query's key
  predicates; the *new* row additionally has known values for the modified
  columns.  Only if both are ruled out is the pair independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.schema.schema import Schema
from repro.sql.ast import (
    ColumnRef,
    Comparison,
    ComparisonOp,
    Delete,
    Insert,
    Literal,
    Scalar,
    Select,
    Update,
)

__all__ = ["statement_independent"]


# -- interval/value constraint domain ------------------------------------------------


@dataclass
class _Constraint:
    """Conjunction of comparisons against constants for one column.

    Tracks a numeric/string interval plus required/forbidden equalities.
    ``empty`` means the conjunction is unsatisfiable.
    """

    lower: Scalar = None  # bound value
    lower_strict: bool = False
    upper: Scalar = None
    upper_strict: bool = False
    equal: Scalar | None = None
    has_equal: bool = False
    empty: bool = False

    def add(self, op: ComparisonOp, value: Scalar) -> None:
        """Add ``column op value``; NULL constants make the predicate false."""
        if self.empty:
            return
        if value is None:
            self.empty = True  # comparisons with NULL never hold
            return
        if op is ComparisonOp.EQ:
            if self.has_equal and self.equal != value:
                self.empty = True
                return
            self.equal = value
            self.has_equal = True
        elif op in (ComparisonOp.GT, ComparisonOp.GE):
            strict = op is ComparisonOp.GT
            if self.lower is None or _gt(value, self.lower) or (
                value == self.lower and strict and not self.lower_strict
            ):
                self.lower = value
                self.lower_strict = strict
        else:  # LT / LE
            strict = op is ComparisonOp.LT
            if self.upper is None or _lt(value, self.upper) or (
                value == self.upper and strict and not self.upper_strict
            ):
                self.upper = value
                self.upper_strict = strict
        self._normalize()

    def _normalize(self) -> None:
        if self.has_equal:
            value = self.equal
            if self.lower is not None and not _cmp_ok(
                value, self.lower, self.lower_strict, is_lower=True
            ):
                self.empty = True
            if self.upper is not None and not _cmp_ok(
                value, self.upper, self.upper_strict, is_lower=False
            ):
                self.empty = True
            return
        if self.lower is not None and self.upper is not None:
            if not _comparable(self.lower, self.upper):
                self.empty = True
            elif _gt(self.lower, self.upper):
                self.empty = True
            elif self.lower == self.upper and (
                self.lower_strict or self.upper_strict
            ):
                self.empty = True

    def satisfiable(self) -> bool:
        """True if some value satisfies the accumulated conjunction."""
        return not self.empty

    def allows(self, value: Scalar) -> bool:
        """True if the concrete ``value`` satisfies the conjunction."""
        if self.empty:
            return False
        if value is None:
            # A NULL value fails every comparison predicate; it satisfies
            # the conjunction only if there are no predicates at all.
            return (
                not self.has_equal and self.lower is None and self.upper is None
            )
        if self.has_equal and value != self.equal:
            return False
        if self.lower is not None and not _cmp_ok(
            value, self.lower, self.lower_strict, is_lower=True
        ):
            return False
        if self.upper is not None and not _cmp_ok(
            value, self.upper, self.upper_strict, is_lower=False
        ):
            return False
        return True


def _comparable(a: Scalar, b: Scalar) -> bool:
    if isinstance(a, str) != isinstance(b, str):
        return False
    return True


def _gt(a: Scalar, b: Scalar) -> bool:
    if not _comparable(a, b):
        return False
    return a > b  # type: ignore[operator]


def _lt(a: Scalar, b: Scalar) -> bool:
    if not _comparable(a, b):
        return False
    return a < b  # type: ignore[operator]


def _cmp_ok(value: Scalar, bound: Scalar, strict: bool, is_lower: bool) -> bool:
    if not _comparable(value, bound):
        return False
    if is_lower:
        return value > bound if strict else value >= bound  # type: ignore[operator]
    return value < bound if strict else value <= bound  # type: ignore[operator]


# -- predicate collection -------------------------------------------------------------


@lru_cache(maxsize=4096)
def _single_table_constraints(
    where: tuple[Comparison, ...]
) -> dict[str, _Constraint] | None:
    """Column → constraint map from attribute-vs-constant conjuncts.

    Returns None if a constant-vs-constant conjunct is False (predicate
    unsatisfiable outright).

    Memoized: an invalidation pass rebuilds the update side of the check
    once per cached entry in the bucket, from the same WHERE tuple every
    time.  Callers must treat the returned map (and its constraints) as
    read-only.
    """
    constraints: dict[str, _Constraint] = {}
    for comparison in where:
        if comparison.is_join():
            continue  # cross-column: handled conservatively by callers
        left, op, right = comparison.left, comparison.op, comparison.right
        if isinstance(left, Literal) and isinstance(right, Literal):
            if not op.holds(left.value, right.value):
                return None
            continue
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            column, value = left.column, right.value
        elif isinstance(right, ColumnRef) and isinstance(left, Literal):
            column, value, op = right.column, left.value, op.flip()
        else:  # pragma: no cover - parameters must be bound by now
            continue
        constraints.setdefault(column, _Constraint()).add(op, value)
    return constraints


_BINDING_MEMO_LIMIT = 8192
#: (id(query), binding, table, id(schema)) → (query, schema, constraints).
#: The query/schema objects ride along in the value so a recycled ``id()``
#: can never alias a dead statement.
_binding_memo: dict[tuple[int, str, str, int], tuple] = {}


def _binding_constraints(
    query: Select, binding: str, table_name: str, schema: Schema
) -> dict[str, _Constraint] | None:
    """Constraints the query places on one binding's columns, memoized.

    Cached entries are long-lived and their statements are shared objects
    (template binding is memoized upstream), so every update that scans a
    bucket re-derives the same query-side maps; keying by object identity
    avoids hashing whole ASTs on the invalidation hot path.  Callers must
    treat the returned map (and its constraints) as read-only.
    """
    key = (id(query), binding, table_name, id(schema))
    hit = _binding_memo.get(key)
    if hit is not None and hit[0] is query and hit[1] is schema:
        return hit[2]
    constraints = _compute_binding_constraints(query, binding, table_name, schema)
    if len(_binding_memo) >= _BINDING_MEMO_LIMIT:
        _binding_memo.clear()
    _binding_memo[key] = (query, schema, constraints)
    return constraints


def _compute_binding_constraints(
    query: Select, binding: str, table_name: str, schema: Schema
) -> dict[str, _Constraint] | None:
    scope = {ref.binding: ref.name for ref in query.tables}
    constraints: dict[str, _Constraint] = {}
    for comparison in query.where:
        if comparison.is_join():
            continue
        column_side = None
        literal_side = None
        op = comparison.op
        if isinstance(comparison.left, ColumnRef) and isinstance(
            comparison.right, Literal
        ):
            column_side, literal_side = comparison.left, comparison.right
        elif isinstance(comparison.right, ColumnRef) and isinstance(
            comparison.left, Literal
        ):
            column_side, literal_side = comparison.right, comparison.left
            op = op.flip()
        elif isinstance(comparison.left, Literal) and isinstance(
            comparison.right, Literal
        ):
            if not op.holds(comparison.left.value, comparison.right.value):
                return None
            continue
        else:
            continue
        if not _ref_binds_to(column_side, binding, table_name, scope, schema):
            continue
        constraints.setdefault(column_side.column, _Constraint()).add(
            op, literal_side.value
        )
    return constraints


def _ref_binds_to(
    ref: ColumnRef,
    binding: str,
    table_name: str,
    scope: dict[str, str],
    schema: Schema,
) -> bool:
    if ref.table is not None:
        return ref.table == binding
    # Unqualified and unambiguous (validated at registration): it belongs
    # to whichever in-scope table owns the column.
    return schema.table(table_name).has_column(ref.column)


def _merge_satisfiable(
    a: dict[str, _Constraint], b: dict[str, _Constraint]
) -> bool:
    """Is the conjunction of two constraint maps satisfiable?"""
    for column, constraint in a.items():
        if not constraint.satisfiable():
            return False
    merged: dict[str, _Constraint] = {}
    for source in (a, b):
        for column, constraint in source.items():
            target = merged.setdefault(column, _Constraint())
            if constraint.has_equal:
                target.add(ComparisonOp.EQ, constraint.equal)
            if constraint.lower is not None:
                target.add(
                    ComparisonOp.GT if constraint.lower_strict else ComparisonOp.GE,
                    constraint.lower,
                )
            if constraint.upper is not None:
                target.add(
                    ComparisonOp.LT if constraint.upper_strict else ComparisonOp.LE,
                    constraint.upper,
                )
            if constraint.empty:
                return False
    return all(c.satisfiable() for c in merged.values())


_STRIP_MEMO_LIMIT = 8192
_strip_memo: dict[int, tuple] = {}


def _strip_range_predicates(statement):
    """Drop non-equality attribute-vs-constant conjuncts (weaker knowledge).

    Removing conjuncts only *widens* the set of rows an update/query may
    touch, so the resulting independence verdicts stay sound — they are
    just more conservative.  Memoized by statement identity so the stripped
    variants are themselves shared objects and downstream identity-keyed
    caches keep working in ``equality_only`` mode.
    """
    hit = _strip_memo.get(id(statement))
    if hit is not None and hit[0] is statement:
        return hit[1]
    stripped = _compute_strip_range_predicates(statement)
    if len(_strip_memo) >= _STRIP_MEMO_LIMIT:
        _strip_memo.clear()
    _strip_memo[id(statement)] = (statement, stripped)
    return stripped


def _compute_strip_range_predicates(statement):
    if isinstance(statement, Insert):
        return statement

    def keep(comparison: Comparison) -> bool:
        return comparison.op is ComparisonOp.EQ or comparison.is_join()

    where = tuple(c for c in statement.where if keep(c))
    if isinstance(statement, Select):
        return Select(
            items=statement.items,
            tables=statement.tables,
            where=where,
            group_by=statement.group_by,
            order_by=statement.order_by,
            limit=statement.limit,
        )
    if isinstance(statement, Delete):
        return Delete(table=statement.table, where=where)
    return Update(
        table=statement.table, assignments=statement.assignments, where=where
    )


# -- the three update-class checks -----------------------------------------------------


def statement_independent(
    schema: Schema,
    update: Insert | Delete | Update,
    query: Select,
    equality_only: bool = False,
) -> bool:
    """True if the bound update provably cannot change the bound query's result.

    Both statements must be fully bound (no parameters).  Conservative:
    returns False whenever the analysis cannot rule out interaction.

    ``equality_only`` restricts the reasoning to equality-predicate
    mismatches (the minimum a statement-inspection strategy needs for the
    paper's Table 2 example), disabling the interval reasoning over range
    predicates — used by the MSIS ablation benchmark.
    """
    if equality_only:
        update = _strip_range_predicates(update)
        query = _strip_range_predicates(query)
    if isinstance(update, Insert):
        misses_binding = _insert_misses_binding
    elif isinstance(update, Delete):
        misses_binding = _delete_misses_binding
    else:
        misses_binding = _modification_misses_binding
    table = update.table
    for ref in query.tables:
        if ref.name == table:
            if not misses_binding(schema, update, query, ref.binding):
                return False
    # Every binding of the updated table is provably missed — or the query
    # never reads that table at all.
    return True


_ROW_MEMO_LIMIT = 4096
_row_memo: dict[int, tuple] = {}


def _insert_row(update: Insert) -> dict[str, Scalar]:
    """The inserted row as a column → value map, memoized by identity.

    One insert is checked against every entry in its bucket; the row map
    is the same each time.
    """
    hit = _row_memo.get(id(update))
    if hit is not None and hit[0] is update:
        return hit[1]
    row = dict(zip(update.columns, (v.value for v in update.values)))  # type: ignore[union-attr]
    if len(_row_memo) >= _ROW_MEMO_LIMIT:
        _row_memo.clear()
    _row_memo[id(update)] = (update, row)
    return row


def _insert_misses_binding(
    schema: Schema, update: Insert, query: Select, binding: str
) -> bool:
    """The fully-known inserted row fails the binding's local predicates."""
    row = _insert_row(update)
    constraints = _binding_constraints(query, binding, update.table, schema)
    if constraints is None:
        return True  # query predicate is constant-false
    for column, constraint in constraints.items():
        if column not in row:
            continue  # defensive; inserts fully specify rows
        if not constraint.allows(row[column]):
            return True
    return False


def _delete_misses_binding(
    schema: Schema, update: Delete, query: Select, binding: str
) -> bool:
    """No row can satisfy both the delete predicate and the query's filters."""
    delete_constraints = _single_table_constraints(update.where)
    if delete_constraints is None:
        return True  # delete predicate constant-false: deletes nothing
    query_constraints = _binding_constraints(query, binding, update.table, schema)
    if query_constraints is None:
        return True
    return not _merge_satisfiable(delete_constraints, query_constraints)


def _modification_misses_binding(
    schema: Schema, update: Update, query: Select, binding: str
) -> bool:
    """Neither the old nor the new version of the touched row can matter.

    The old row is known only through the update's key predicate; the new
    row additionally has concrete values in the modified columns.
    """
    key_constraints = _single_table_constraints(update.where)
    if key_constraints is None:
        return True  # key predicate constant-false: touches nothing
    query_constraints = _binding_constraints(query, binding, update.table, schema)
    if query_constraints is None:
        return True

    # Old row: could it have participated?  Unknown values satisfy any
    # predicate, so only the key columns can create a contradiction.
    old_possible = _merge_satisfiable(key_constraints, query_constraints)

    # New row: modified columns take SET values; the *unmodified* key
    # columns still carry the WHERE pins.  Computed independently of the
    # old row: a SET can move a row the query excluded into its range
    # (e.g. ``SET a = 7 WHERE pk = 1 AND a = 5`` vs ``WHERE a = 7``).
    modified = {column for column, _ in update.assignments}
    new_possible = True
    for column, value in update.assignments:
        constraint = query_constraints.get(column)
        if constraint is not None and not constraint.allows(
            value.value  # type: ignore[union-attr]
        ):
            new_possible = False
            break
    if new_possible:
        unmodified_key = {
            column: constraint
            for column, constraint in key_constraints.items()
            if column not in modified
        }
        new_possible = _merge_satisfiable(unmodified_key, query_constraints)

    return not old_possible and not new_possible
