"""Text renderings of the analysis results (paper Tables 4 and 7, Figure 7).

These are deliberately plain ASCII tables: the benchmark harness prints
them so the paper's artifacts can be eyeballed against the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ipm import IpmCharacterization

__all__ = [
    "CharacterizationSummary",
    "format_ipm_table",
    "format_summary_table",
    "summarize_characterization",
]


@dataclass(frozen=True)
class CharacterizationSummary:
    """Table 7 row: counts of pairs in each IPM-relationship category.

    Categories partition the U/Q pairs exactly as the paper's Table 7:

    * ``zero`` — A = B = C = 0;
    * the four A = 1 cells, split by B < A vs B = A and C < B vs C = B.
    """

    application: str
    total_pairs: int
    zero: int
    b_lt_a_c_lt_b: int
    b_lt_a_c_eq_b: int
    b_eq_a_c_lt_b: int
    b_eq_a_c_eq_b: int

    @property
    def zero_fraction(self) -> float:
        """Fraction of pairs with A = B = C = 0."""
        if not self.total_pairs:
            return 0.0
        return self.zero / self.total_pairs

    @property
    def free_equalities(self) -> int:
        """Pairs where B = A and/or C = B holds (exposure reducible)."""
        return self.zero + self.b_lt_a_c_eq_b + self.b_eq_a_c_lt_b + self.b_eq_a_c_eq_b


def summarize_characterization(
    application: str, characterization: IpmCharacterization
) -> CharacterizationSummary:
    """Bin every pair into the Table 7 categories."""
    zero = b_lt_a_c_lt_b = b_lt_a_c_eq_b = b_eq_a_c_lt_b = b_eq_a_c_eq_b = 0
    for pair in characterization:
        if pair.a_is_zero:
            zero += 1
        elif pair.b_equals_a and pair.c_equals_b:
            b_eq_a_c_eq_b += 1
        elif pair.b_equals_a:
            b_eq_a_c_lt_b += 1
        elif pair.c_equals_b:
            b_lt_a_c_eq_b += 1
        else:
            b_lt_a_c_lt_b += 1
    return CharacterizationSummary(
        application=application,
        total_pairs=len(characterization),
        zero=zero,
        b_lt_a_c_lt_b=b_lt_a_c_lt_b,
        b_lt_a_c_eq_b=b_lt_a_c_eq_b,
        b_eq_a_c_lt_b=b_eq_a_c_lt_b,
        b_eq_a_c_eq_b=b_eq_a_c_eq_b,
    )


def format_summary_table(summaries: list[CharacterizationSummary]) -> str:
    """Render Table 7 for several applications."""
    header = (
        f"{'Application':<12} {'A=B=C=0':>8} "
        f"{'B<A,C<B':>9} {'B<A,C=B':>9} {'B=A,C<B':>9} {'B=A,C=B':>9} "
        f"{'total':>7}"
    )
    lines = [header, "-" * len(header)]
    for summary in summaries:
        lines.append(
            f"{summary.application:<12} {summary.zero:>8} "
            f"{summary.b_lt_a_c_lt_b:>9} {summary.b_lt_a_c_eq_b:>9} "
            f"{summary.b_eq_a_c_lt_b:>9} {summary.b_eq_a_c_eq_b:>9} "
            f"{summary.total_pairs:>7}"
        )
    return "\n".join(lines)


def format_ipm_table(characterization: IpmCharacterization) -> str:
    """Render a Table 4 style matrix: one cell per U/Q pair.

    Each cell shows the three relationships, e.g. ``A=1 B<A C=B``.
    """
    registry = characterization.registry
    query_names = [q.name for q in registry.queries]
    update_names = [u.name for u in registry.updates]
    width = max(16, max((len(n) for n in query_names), default=16) + 2)
    header = f"{'':<12}" + "".join(f"{name:>{width}}" for name in query_names)
    lines = [header, "-" * len(header)]
    for update_name in update_names:
        cells = []
        for query_name in query_names:
            pair = characterization.pair(update_name, query_name)
            if pair.a_is_zero:
                cells.append("A=B=C=0")
            else:
                b = "B=A" if pair.b_equals_a else "B<A"
                c = "C=B" if pair.c_equals_b else "C<B"
                cells.append(f"A=1 {b} {c}")
        lines.append(
            f"{update_name:<12}" + "".join(f"{cell:>{width}}" for cell in cells)
        )
    return "\n".join(lines)
