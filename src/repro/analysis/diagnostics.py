"""Diagnostics: validate the analysis preconditions on a live application.

The static analysis is sound under assumptions the paper spells out in
Section 2.1.1 — some purely syntactic (checked automatically during
characterization), two about *execution*:

1. no query whose result is subject to invalidation by an insertion or a
   deletion returns an empty result set (this underwrites the primary-key
   constraint rule of Section 4.5);
2. each update has some effect on the database (``D != D + U``).

The paper verified both held throughout its benchmark runs.  This module
gives an administrator the same check for their own application: stream a
sample workload and report every violation, so assumption drift is caught
before it silently degrades the analysis' precision.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.storage.database import Database
from repro.templates.template import BoundQuery, BoundUpdate

__all__ = ["AssumptionReport", "check_runtime_assumptions"]


@dataclass
class AssumptionReport:
    """Outcome of a runtime-assumption check over a sampled workload.

    Attributes:
        pages: Pages streamed.
        queries: Query instances executed.
        updates: Update instances applied.
        empty_result_count: Queries that returned empty results
            (assumption-1 candidates).
        ineffective_update_count: Updates that changed nothing
            (assumption-2 violations).
        empty_result_examples: Up to ``max_recorded`` offending
            (template, params) pairs.
        ineffective_update_examples: Likewise for updates.
    """

    pages: int = 0
    queries: int = 0
    updates: int = 0
    empty_result_count: int = 0
    ineffective_update_count: int = 0
    empty_result_examples: list[tuple[str, tuple]] = field(default_factory=list)
    ineffective_update_examples: list[tuple[str, tuple]] = field(
        default_factory=list
    )

    @property
    def empty_result_rate(self) -> float:
        """Fraction of queries with empty results."""
        if not self.queries:
            return 0.0
        return self.empty_result_count / self.queries

    @property
    def ineffective_update_rate(self) -> float:
        """Fraction of updates that changed nothing."""
        if not self.updates:
            return 0.0
        return self.ineffective_update_count / self.updates

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        return (
            f"{self.pages} pages: {self.queries} queries "
            f"({self.empty_result_count} empty results, "
            f"{self.empty_result_rate:.1%}), {self.updates} updates "
            f"({self.ineffective_update_count} ineffective, "
            f"{self.ineffective_update_rate:.1%})"
        )


def check_runtime_assumptions(
    database: Database,
    sampler,
    pages: int = 500,
    seed: int = 0,
    max_recorded: int = 50,
) -> AssumptionReport:
    """Stream ``pages`` sampled pages directly against a database clone.

    Runs without a DSSP in the loop (the assumptions are about the
    application, not the cache).  The database is cloned, so the caller's
    instance is untouched.

    Args:
        database: The application's populated database.
        sampler: A page sampler (``sample_page(rng) -> operations``).
        pages: How many pages to stream.
        seed: Workload RNG seed.
        max_recorded: Cap on *recorded examples* per category; the counts
            and rates always cover the full stream.
    """
    db = database.clone()
    rng = random.Random(seed)
    report = AssumptionReport()
    for _ in range(pages):
        report.pages += 1
        for operation in sampler.sample_page(rng):
            bound = operation.bound
            if isinstance(bound, BoundQuery):
                report.queries += 1
                if db.execute(bound.select).empty:
                    report.empty_result_count += 1
                    if len(report.empty_result_examples) < max_recorded:
                        report.empty_result_examples.append(
                            (bound.template.name, bound.params)
                        )
            else:
                assert isinstance(bound, BoundUpdate)
                report.updates += 1
                if db.apply(bound.statement) == 0:
                    report.ineffective_update_count += 1
                    if len(report.ineffective_update_examples) < max_recorded:
                        report.ineffective_update_examples.append(
                            (bound.template.name, bound.params)
                        )
    return report
