"""Invalidation Probability Matrix (IPM) characterization — paper Section 4.

For every update/query template pair ``(U_i, Q_j)`` the IPM has symbolic
entries (Figure 6)::

    1     when either exposure level is blind             (Property 1)
    A_ij  when the lowest non-blind level is 'template'   (Property 2)
    B_ij  at stmt/stmt
    C_ij  at stmt/view

with the gradient ``1 >= A_ij >= B_ij >= C_ij >= 0`` (Property 3).  The
static analysis determines three relationships:

* **A_ij ∈ {0, 1}**, and A_ij = 0 iff U_i is *ignorable* w.r.t. Q_j
  (Lemma 1) or an integrity-constraint rule applies (Section 4.5);
* **B_ij = A_ij** — when parameter knowledge provably cannot reduce
  invalidations (Section 4.3);
* **C_ij = B_ij** — when view contents provably cannot reduce
  invalidations, by update class (Section 4.4).

Pairs violating the analysis assumptions (Section 2.1.1) — embedded
constants in predicates, same-relation attribute comparisons, Cartesian
products — are treated conservatively: no equality is claimed beyond what
ignorability alone supports, so encryption is never recommended where it
could impact scalability.  Aggregation / GROUP BY queries (7–11% of the
benchmark templates) get the paper's manual-equivalent conservative
handling, encoded in :func:`_c_equals_b`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.constraints import constraint_implies_no_effect
from repro.analysis.exposure import ExposureLevel, IpmEntryKind, ipm_entry_kind
from repro.schema.schema import Schema
from repro.sql.ast import Comparison, Insert, Literal, Select
from repro.templates.classify import (
    UpdateKind,
    is_ignorable,
    is_result_unhelpful,
    query_has_no_top_k,
    query_is_equality_join_only,
    update_kind,
)
from repro.templates.attributes import (
    resolve_query_column,
    selection_attributes,
)
from repro.templates.registry import TemplateRegistry
from repro.templates.template import QueryTemplate, UpdateTemplate

__all__ = [
    "IpmCharacterization",
    "PairCharacterization",
    "characterize_application",
    "characterize_pair",
]


@dataclass(frozen=True)
class PairCharacterization:
    """Static IPM relationships for one update/query template pair.

    Attributes:
        update_name: Name of ``U_i``.
        query_name: Name of ``Q_j``.
        a_is_zero: A_ij = 0 (the pair never invalidates at template level).
        b_equals_a: Statement inspection provably no better than template
            inspection for this pair.
        c_equals_b: View inspection provably no better than statement
            inspection for this pair.
        assumptions_hold: Whether the Section 2.1.1 assumptions held; when
            False only ignorability-derived claims are made.
        reason: Short human-readable justification of the claims.
    """

    update_name: str
    query_name: str
    a_is_zero: bool
    b_equals_a: bool
    c_equals_b: bool
    assumptions_hold: bool
    reason: str

    @property
    def a_value(self) -> int:
        """The concrete value of A_ij (always 0 or 1 — Section 4.2)."""
        return 0 if self.a_is_zero else 1

    def symbolic_value(
        self, update_level: ExposureLevel, query_level: ExposureLevel
    ) -> str:
        """Collapse the IPM entry at given exposure levels to a comparable token.

        Two exposure assignments provably yield the same invalidation
        probability for this pair iff their tokens are equal.  Tokens are
        ``"0"``, ``"1"``, or the symbolic ``"B:<pair>"`` / ``"C:<pair>"``.
        """
        kind = ipm_entry_kind(update_level, query_level)
        if kind is IpmEntryKind.ONE:
            return "1"
        if self.a_is_zero:
            return "0"  # gradient: A = 0 forces B = C = 0
        if kind is IpmEntryKind.A:
            return "1"  # A_ij > 0 implies A_ij = 1
        if kind is IpmEntryKind.B:
            if self.b_equals_a:
                return "1"
            return f"B:{self.update_name}/{self.query_name}"
        # kind C
        if self.c_equals_b:
            if self.b_equals_a:
                return "1"
            return f"B:{self.update_name}/{self.query_name}"
        return f"C:{self.update_name}/{self.query_name}"


def characterize_pair(
    schema: Schema,
    update: UpdateTemplate,
    query: QueryTemplate,
    use_integrity_constraints: bool = True,
) -> PairCharacterization:
    """Run the Section 4 static analysis on one template pair."""
    u_stmt = update.statement
    q_select = query.select
    assumptions = _assumptions_hold(schema, u_stmt, q_select)

    ignorable = is_ignorable(schema, u_stmt, q_select)
    a_is_zero = ignorable
    reason_parts = []
    if ignorable:
        reason_parts.append("ignorable (Lemma 1): M(U) disjoint from P(Q)+S(Q)")
    elif use_integrity_constraints and constraint_implies_no_effect(
        schema, u_stmt, q_select
    ):
        a_is_zero = True
        reason_parts.append("integrity constraint rule (Sec 4.5) forces A=0")

    if a_is_zero:
        return PairCharacterization(
            update_name=update.name,
            query_name=query.name,
            a_is_zero=True,
            b_equals_a=True,
            c_equals_b=True,
            assumptions_hold=assumptions,
            reason="; ".join(reason_parts),
        )

    if not assumptions:
        return PairCharacterization(
            update_name=update.name,
            query_name=query.name,
            a_is_zero=False,
            b_equals_a=False,
            c_equals_b=False,
            assumptions_hold=False,
            reason="assumptions violated: conservative (no equalities claimed)",
        )

    b_equals_a = _b_equals_a(schema, u_stmt, q_select)
    if b_equals_a:
        reason_parts.append("S(U) disjoint from S(Q): B = A = 1 (Sec 4.3)")
    c_equals_b, c_reason = _c_equals_b(schema, u_stmt, q_select)
    if c_equals_b:
        reason_parts.append(c_reason)
    return PairCharacterization(
        update_name=update.name,
        query_name=query.name,
        a_is_zero=False,
        b_equals_a=b_equals_a,
        c_equals_b=c_equals_b,
        assumptions_hold=True,
        reason="; ".join(reason_parts) or "no equalities provable",
    )


# -- the individual Section 4 tests ------------------------------------------------


def _b_equals_a(schema: Schema, update, query: Select) -> bool:
    """Section 4.3 sufficient condition for B = A = 1.

    Statement inspection can only refine invalidation decisions by
    comparing *known values* of the update against the query's selection
    predicates.  The values an update statement reveals are:

    * insertion — the entire inserted row (every column of the table);
    * deletion — the selection-predicate parameters, i.e. S(U) (the other
      attribute values of the deleted rows stay unknown);
    * modification — S(U).  The SET values are visible too, but cannot rule
      out invalidation: whether the modified row satisfied the query
      *before* depends on its unknown old values, so a change can never be
      excluded on SET values alone.

    If those known-value attributes are disjoint from S(Q), parameters
    cannot rule out overlap, so statement inspection cannot beat template
    inspection: B = A.  (This matches the paper's Table 4, where the
    credit-card insertion U2 has B < A against Q3 precisely because the
    inserted ``zip_code`` is comparable to Q3's ``zip_code`` parameter.)
    """
    if isinstance(update, Insert):
        known = schema.table(update.table).attributes()
    else:
        known = selection_attributes(schema, update)
    return not (known & selection_attributes(schema, query))


def _c_equals_b(schema: Schema, update, query: Select) -> tuple[bool, str]:
    """Section 4.4 sufficient conditions for C = B, by update class."""
    kind = update_kind(update)
    aggregated = query.has_aggregate() or bool(query.group_by)
    if kind is UpdateKind.INSERTION:
        if aggregated:
            # MAX(qty) counter-example (Sec 4.4): view may beat statement.
            return False, ""
        if query_is_equality_join_only(query) and query_has_no_top_k(query):
            return True, "insertion vs E∩N query: C = B (Sec 4.4)"
        return False, ""
    if kind is UpdateKind.DELETION:
        if is_result_unhelpful(schema, update, query):
            return True, "deletion with result-unhelpful query (H): C = B"
        return False, ""
    # modification
    if is_ignorable(schema, update, query) or is_result_unhelpful(
        schema, update, query
    ):
        return True, "modification with pair in G∪H: C = B"
    return False, ""


def _assumptions_hold(schema: Schema, update, query: Select) -> bool:
    """Check the Section 2.1.1 template assumptions for one pair.

    1. Selection predicates compare an attribute with a constant/parameter
       or attributes of two *different* relations.
    2. No constants embedded in WHERE clauses (they could aid invalidation
       reasoning beyond what the template level admits).
    3. The query computes no Cartesian product (non-empty selection
       predicate linking its tables).
    """
    if not _predicates_conform(schema, query, query.where):
        return False
    update_where = getattr(update, "where", ())
    for comparison in update_where:
        if comparison.is_join():
            return False  # update predicates are single-relation
        if _has_embedded_constant(comparison):
            return False
    if len(query.tables) > 1 and not query.join_conditions():
        # Assumption 3: no Cartesian products.  (A single-table scan with
        # an empty WHERE clause is harmless: its selection-attribute set is
        # empty, which only weakens the claims the other tests can make.)
        return False
    return True


def _predicates_conform(
    schema: Schema,
    query: Select,
    where: tuple[Comparison, ...],
) -> bool:
    for comparison in where:
        if comparison.is_join():
            left = resolve_query_column(schema, query, comparison.left)
            right = resolve_query_column(schema, query, comparison.right)
            if left.table == right.table:
                return False  # same-relation attribute comparison
        elif _has_embedded_constant(comparison):
            return False
    return True


def _has_embedded_constant(comparison: Comparison) -> bool:
    return isinstance(comparison.left, Literal) or isinstance(
        comparison.right, Literal
    )


class IpmCharacterization:
    """The full matrix of pair characterizations for one application."""

    def __init__(
        self,
        registry: TemplateRegistry,
        pairs: dict[tuple[str, str], PairCharacterization],
    ) -> None:
        self.registry = registry
        self._pairs = pairs

    def pair(self, update_name: str, query_name: str) -> PairCharacterization:
        """Return the characterization for one (update, query) pair."""
        return self._pairs[(update_name, query_name)]

    def __iter__(self):
        return iter(self._pairs.values())

    def __len__(self) -> int:
        return len(self._pairs)

    def pairs_for_query(self, query_name: str) -> list[PairCharacterization]:
        """All pair characterizations involving the given query template."""
        return [p for p in self._pairs.values() if p.query_name == query_name]

    def pairs_for_update(self, update_name: str) -> list[PairCharacterization]:
        """All pair characterizations involving the given update template."""
        return [p for p in self._pairs.values() if p.update_name == update_name]


def characterize_application(
    registry: TemplateRegistry, use_integrity_constraints: bool = True
) -> IpmCharacterization:
    """Characterize every update/query template pair of an application.

    This is Step 2a of the methodology (Section 3.1).
    """
    pairs: dict[tuple[str, str], PairCharacterization] = {}
    for update, query in registry.pairs():
        pairs[(update.name, query.name)] = characterize_pair(
            registry.schema, update, query, use_integrity_constraints
        )
    return IpmCharacterization(registry, pairs)
