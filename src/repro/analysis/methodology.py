"""The scalability-conscious security design methodology (paper Section 3).

Three steps:

1. **Compulsory encryption** — starting from maximum exposure, reduce the
   exposure of templates that touch highly-sensitive data (e.g. credit-card
   information under California SB 1386) to ``template`` level, hiding
   parameters and results while keeping the template visible.
2. **Free reductions** — using the IPM characterization (Step 2a), greedily
   reduce every template's exposure as far as possible *without changing
   any pair's invalidation probability* (Step 2b).  The greedy loop is
   order-independent: a reduction is taken only when provably free, and
   freeness is monotone in the other templates' levels only through the
   symbolic entry tokens, which the loop re-checks until fixpoint.
3. **Manual tradeoff** — whatever remains above its floor is reported for
   the administrator to weigh (we surface it; deciding is policy).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.exposure import ExposureLevel, ExposurePolicy
from repro.analysis.ipm import IpmCharacterization, characterize_application
from repro.templates.registry import TemplateRegistry
from repro.templates.template import Sensitivity

__all__ = [
    "MethodologyResult",
    "apply_compulsory_encryption",
    "design_exposure_policy",
    "reduce_exposure_levels",
]


@dataclass(frozen=True)
class MethodologyResult:
    """Outcome of the three-step methodology for one application.

    Attributes:
        initial: Exposure levels after Step 1 (compulsory encryption only)
            — the dashed lines of Figure 7.
        final: Exposure levels after Step 2b — the solid lines of Figure 7.
        characterization: The Step 2a IPM characterization used.
        residual_queries: Query templates still above ``blind`` whose
            further reduction would change some invalidation probability —
            the Step 3 worklist.
        residual_updates: Likewise for update templates.
    """

    initial: ExposurePolicy
    final: ExposurePolicy
    characterization: IpmCharacterization
    residual_queries: tuple[str, ...] = ()
    residual_updates: tuple[str, ...] = ()

    def encrypted_result_count(self) -> int:
        """Query templates whose results end up encrypted (Figure 3 metric)."""
        return self.final.encrypted_result_count()

    def exposure_reduction_summary(self) -> dict[str, tuple[str, str]]:
        """Template name → (initial level, final level) for reporting."""
        summary: dict[str, tuple[str, str]] = {}
        for name, level in self.initial.query_levels.items():
            summary[name] = (level.label, self.final.query_level(name).label)
        for name, level in self.initial.update_levels.items():
            summary[name] = (level.label, self.final.update_level(name).label)
        return summary


def apply_compulsory_encryption(
    registry: TemplateRegistry,
    compulsory_level: ExposureLevel = ExposureLevel.TEMPLATE,
) -> ExposurePolicy:
    """Step 1: reduce highly-sensitive templates to ``compulsory_level``.

    Sensitivity is declared on the templates themselves (the benchmark
    applications label credit-card-touching templates ``HIGH``, mirroring
    the paper's use of the California data privacy law).
    """
    policy = ExposurePolicy.maximum_exposure(registry)
    for query in registry.queries:
        if query.sensitivity is Sensitivity.HIGH:
            level = min(policy.query_level(query.name), compulsory_level)
            policy = policy.with_query_level(query.name, ExposureLevel(level))
    for update in registry.updates:
        if update.sensitivity is Sensitivity.HIGH:
            level = min(policy.update_level(update.name), compulsory_level)
            policy = policy.with_update_level(update.name, ExposureLevel(level))
    return policy


def reduce_exposure_levels(
    characterization: IpmCharacterization,
    initial: ExposurePolicy,
    order: list[tuple[str, str]] | None = None,
) -> ExposurePolicy:
    """Step 2b: greedy maximal exposure reduction at zero scalability cost.

    Repeatedly try to lower each template one notch; accept the reduction
    iff every IPM entry's symbolic value is unchanged.  Terminates at a
    fixpoint; the paper notes the outcome is order-independent (the test
    suite verifies this by passing shuffled ``order`` values — a list of
    ``("query"|"update", name)`` pairs controlling the visit sequence).
    """
    registry = characterization.registry
    if order is None:
        order = [("query", q.name) for q in registry.queries] + [
            ("update", u.name) for u in registry.updates
        ]
    policy = initial
    changed = True
    while changed:
        changed = False
        for kind, name in order:
            if kind == "query":
                current = policy.query_level(name)
                if current is ExposureLevel.BLIND:
                    continue
                candidate = ExposureLevel(current - 1)
                if _query_reduction_is_free(
                    characterization, policy, name, current, candidate
                ):
                    policy = policy.with_query_level(name, candidate)
                    changed = True
            else:
                current = policy.update_level(name)
                if current is ExposureLevel.BLIND:
                    continue
                candidate = ExposureLevel(current - 1)
                if _update_reduction_is_free(
                    characterization, policy, name, current, candidate
                ):
                    policy = policy.with_update_level(name, candidate)
                    changed = True
    return policy


def _query_reduction_is_free(
    characterization: IpmCharacterization,
    policy: ExposurePolicy,
    query_name: str,
    current: ExposureLevel,
    candidate: ExposureLevel,
) -> bool:
    for pair in characterization.pairs_for_query(query_name):
        update_level = policy.update_level(pair.update_name)
        before = pair.symbolic_value(update_level, current)
        after = pair.symbolic_value(update_level, candidate)
        if before != after:
            return False
    return True


def _update_reduction_is_free(
    characterization: IpmCharacterization,
    policy: ExposurePolicy,
    update_name: str,
    current: ExposureLevel,
    candidate: ExposureLevel,
) -> bool:
    for pair in characterization.pairs_for_update(update_name):
        query_level = policy.query_level(pair.query_name)
        before = pair.symbolic_value(current, query_level)
        after = pair.symbolic_value(candidate, query_level)
        if before != after:
            return False
    return True


def design_exposure_policy(
    registry: TemplateRegistry,
    use_integrity_constraints: bool = True,
    compulsory_level: ExposureLevel = ExposureLevel.TEMPLATE,
) -> MethodologyResult:
    """Run the full methodology (Steps 1, 2a, 2b) on an application."""
    initial = apply_compulsory_encryption(registry, compulsory_level)
    characterization = characterize_application(
        registry, use_integrity_constraints
    )
    final = reduce_exposure_levels(characterization, initial)
    residual_queries = tuple(
        q.name
        for q in registry.queries
        if final.query_level(q.name) > ExposureLevel.BLIND
    )
    residual_updates = tuple(
        u.name
        for u in registry.updates
        if final.update_level(u.name) > ExposureLevel.BLIND
    )
    return MethodologyResult(
        initial=initial,
        final=final,
        characterization=characterization,
        residual_queries=residual_queries,
        residual_updates=residual_updates,
    )
