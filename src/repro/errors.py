"""Exception hierarchy for the DSSP reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SqlError",
    "TokenizeError",
    "ParseError",
    "UnsupportedSqlError",
    "SchemaError",
    "UnknownTableError",
    "UnknownColumnError",
    "ConstraintViolation",
    "PrimaryKeyViolation",
    "ForeignKeyViolation",
    "NotNullViolation",
    "ExecutionError",
    "TypeMismatchError",
    "BindingError",
    "TemplateError",
    "AnalysisError",
    "CryptoError",
    "CacheError",
    "UnknownApplicationError",
    "SimulationError",
    "WorkloadError",
    "NetError",
    "WireError",
    "NetConnectionError",
    "NetTimeoutError",
    "HomeUnreachableError",
    "ServerOverloadedError",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


# --------------------------------------------------------------------------
# SQL front end
# --------------------------------------------------------------------------


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class TokenizeError(SqlError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SqlError):
    """Raised when the parser encounters an unexpected token."""

    def __init__(self, message: str, position: int = -1) -> None:
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class UnsupportedSqlError(SqlError):
    """Raised for SQL that is valid but outside the paper's dialect."""


# --------------------------------------------------------------------------
# Schema / storage
# --------------------------------------------------------------------------


class SchemaError(ReproError):
    """Base class for schema definition and resolution errors."""


class UnknownTableError(SchemaError):
    """Raised when a statement references a table absent from the schema."""

    def __init__(self, table: str) -> None:
        super().__init__(f"unknown table: {table!r}")
        self.table = table


class UnknownColumnError(SchemaError):
    """Raised when a statement references a column absent from its table."""

    def __init__(self, column: str, table: str | None = None) -> None:
        where = f" in table {table!r}" if table else ""
        super().__init__(f"unknown column: {column!r}{where}")
        self.column = column
        self.table = table


class ConstraintViolation(ReproError):
    """Base class for integrity-constraint violations during DML."""


class PrimaryKeyViolation(ConstraintViolation):
    """A DML statement would duplicate a primary-key value."""


class ForeignKeyViolation(ConstraintViolation):
    """A DML statement would dangle or orphan a foreign-key reference."""


class NotNullViolation(ConstraintViolation):
    """A DML statement would store NULL into a NOT NULL column."""


class ExecutionError(ReproError):
    """Raised when query execution fails (bad plan, missing binding...)."""


class TypeMismatchError(ExecutionError):
    """Raised when a value's type is incompatible with its column type."""


# --------------------------------------------------------------------------
# Templates and analysis
# --------------------------------------------------------------------------


class TemplateError(ReproError):
    """Base class for template definition problems."""


class BindingError(TemplateError):
    """Raised when template parameters are bound with the wrong arity."""


class AnalysisError(ReproError):
    """Raised when static analysis receives inputs it cannot handle."""


# --------------------------------------------------------------------------
# Runtime subsystems
# --------------------------------------------------------------------------


class CryptoError(ReproError):
    """Raised on encryption/decryption failures (bad key, tamper...)."""


class CacheError(ReproError):
    """Raised on DSSP cache protocol violations."""


class UnknownApplicationError(CacheError):
    """An envelope names an application not registered at this endpoint.

    Distinguished from plain :class:`CacheError` so the service layer can
    map it to a typed wire error code instead of a generic failure.
    """

    def __init__(self, app_id: str) -> None:
        super().__init__(f"unknown application {app_id!r}")
        self.app_id = app_id


class SimulationError(ReproError):
    """Raised when the discrete-event simulation is misconfigured."""


class WorkloadError(ReproError):
    """Raised when a benchmark application/workload is misconfigured."""


# --------------------------------------------------------------------------
# Service layer (repro.net)
# --------------------------------------------------------------------------


class NetError(ReproError):
    """Base class for the networked service layer's errors."""


class WireError(NetError):
    """A frame violates the wire protocol (bad magic, truncation, ...).

    Maps to/from the ``BAD_FRAME`` wire error code.
    """


class NetConnectionError(NetError):
    """A connection could not be established or died mid-exchange."""


class NetTimeoutError(NetError):
    """The server gave up on a request (``TIMEOUT`` wire error code)."""


class HomeUnreachableError(NetError):
    """A DSSP node could not forward a miss/update to the home server.

    Maps to/from the ``MISS_FORWARDED`` wire error code.
    """


class ServerOverloadedError(NetError):
    """The server shed the request under backpressure (``OVERLOADED``)."""
