"""Encryption for data passing through the DSSP.

The DSSP must be able to *look up* encrypted queries in its cache without
reading them, which requires **deterministic** encryption (paper footnote
3).  We implement an SIV-style deterministic authenticated scheme from the
standard library: the synthetic IV is an HMAC-SHA256 of the plaintext, and
the body is XORed with a SHA-256 counter-mode keystream.  Determinism gives
``enc(m1) == enc(m2) ⇔ m1 == m2`` under one key — exactly the cache-key
property — and the SIV check authenticates on decryption.

This is a faithful functional stand-in, not a production cipher; the paper
itself excludes encryption cost from its measurements (footnote 6).

Key management is per-application (:class:`~repro.crypto.keyring.Keyring`):
the DSSP serves many applications and must not let them read each other's
data, so every application derives independent purpose-keys for templates,
parameters, statements, and results.
"""

from repro.crypto.cipher import decrypt, encrypt
from repro.crypto.keyring import Keyring, Purpose
from repro.crypto.envelope import (
    EnvelopeCodec,
    QueryEnvelope,
    ResultEnvelope,
    UpdateEnvelope,
)

__all__ = [
    "EnvelopeCodec",
    "Keyring",
    "Purpose",
    "QueryEnvelope",
    "ResultEnvelope",
    "UpdateEnvelope",
    "decrypt",
    "encrypt",
]
