"""Deterministic authenticated encryption (SIV construction, stdlib only).

Layout of a token::

    siv (16 bytes) || ciphertext (len(plaintext) bytes)

* ``siv = HMAC-SHA256(mac_key, plaintext)[:16]`` — deterministic, so equal
  plaintexts yield equal tokens under one key (the DSSP cache-key property).
* ``ciphertext = plaintext XOR keystream(enc_key, siv)`` where the
  keystream is SHA-256 in counter mode seeded by the SIV.
* Decryption recomputes the SIV and rejects mismatches (tamper evidence).
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import CryptoError

__all__ = ["encrypt", "decrypt", "SIV_LEN"]

SIV_LEN = 16
_BLOCK = hashlib.sha256().digest_size


def _split_key(key: bytes) -> tuple[bytes, bytes]:
    if len(key) < 16:
        raise CryptoError("key must be at least 16 bytes")
    mac_key = hmac.new(key, b"mac", hashlib.sha256).digest()
    enc_key = hmac.new(key, b"enc", hashlib.sha256).digest()
    return mac_key, enc_key


def _keystream(enc_key: bytes, siv: bytes, length: int) -> bytes:
    blocks = []
    counter = 0
    while length > 0:
        block = hashlib.sha256(
            enc_key + siv + counter.to_bytes(8, "big")
        ).digest()
        blocks.append(block[: min(_BLOCK, length)])
        length -= _BLOCK
        counter += 1
    return b"".join(blocks)


def encrypt(key: bytes, plaintext: bytes) -> bytes:
    """Deterministically encrypt ``plaintext`` under ``key``."""
    mac_key, enc_key = _split_key(key)
    siv = hmac.new(mac_key, plaintext, hashlib.sha256).digest()[:SIV_LEN]
    stream = _keystream(enc_key, siv, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    return siv + ciphertext


def decrypt(key: bytes, token: bytes) -> bytes:
    """Decrypt and authenticate a token produced by :func:`encrypt`.

    Raises:
        CryptoError: if the token is malformed or fails authentication
            (wrong key or tampered ciphertext).
    """
    if len(token) < SIV_LEN:
        raise CryptoError("token too short")
    mac_key, enc_key = _split_key(key)
    siv, ciphertext = token[:SIV_LEN], token[SIV_LEN:]
    stream = _keystream(enc_key, siv, len(ciphertext))
    plaintext = bytes(c ^ s for c, s in zip(ciphertext, stream))
    expected = hmac.new(mac_key, plaintext, hashlib.sha256).digest()[:SIV_LEN]
    if not hmac.compare_digest(siv, expected):
        raise CryptoError("authentication failed: wrong key or tampered token")
    return plaintext
