"""Deterministic authenticated encryption (SIV construction, stdlib only).

Layout of a token::

    siv (16 bytes) || ciphertext (len(plaintext) bytes)

* ``siv = HMAC-SHA256(mac_key, plaintext)[:16]`` — deterministic, so equal
  plaintexts yield equal tokens under one key (the DSSP cache-key property).
* ``ciphertext = plaintext XOR keystream(enc_key, siv)`` where the
  keystream is the SHAKE-256 XOF seeded by the encryption key and SIV.
* Decryption recomputes the SIV and rejects mismatches (tamper evidence).
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import CryptoError

__all__ = ["encrypt", "decrypt", "SIV_LEN"]

SIV_LEN = 16


#: Derived (mac, enc) subkey pairs per master key.  Key derivation costs
#: two HMAC invocations and the same handful of master keys is used for
#: every envelope of an application, so the schedule is computed once.
_KEY_SCHEDULE: dict[bytes, tuple[bytes, bytes]] = {}
_KEY_SCHEDULE_LIMIT = 1024


def _split_key(key: bytes) -> tuple[bytes, bytes]:
    schedule = _KEY_SCHEDULE.get(key)
    if schedule is not None:
        return schedule
    if len(key) < 16:
        raise CryptoError("key must be at least 16 bytes")
    mac_key = hmac.new(key, b"mac", hashlib.sha256).digest()
    enc_key = hmac.new(key, b"enc", hashlib.sha256).digest()
    if len(_KEY_SCHEDULE) >= _KEY_SCHEDULE_LIMIT:
        _KEY_SCHEDULE.clear()
    _KEY_SCHEDULE[key] = (mac_key, enc_key)
    return mac_key, enc_key


def _xor(data: bytes, stream: bytes) -> bytes:
    # Bulk XOR through big-int arithmetic: one CPython operation per call
    # instead of one generator step per byte.
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
    ).to_bytes(len(data), "big")


def _keystream(enc_key: bytes, siv: bytes, length: int) -> bytes:
    # SHAKE-256 as an XOF: one sponge absorbs (key, siv) and squeezes the
    # whole stream, instead of one independent SHA-256 (re-hashing the
    # 48-byte prefix) per 32-byte counter block.
    return hashlib.shake_256(enc_key + siv).digest(length)


def encrypt(key: bytes, plaintext: bytes) -> bytes:
    """Deterministically encrypt ``plaintext`` under ``key``."""
    mac_key, enc_key = _split_key(key)
    siv = hmac.new(mac_key, plaintext, hashlib.sha256).digest()[:SIV_LEN]
    stream = _keystream(enc_key, siv, len(plaintext))
    return siv + _xor(plaintext, stream)


def decrypt(key: bytes, token: bytes) -> bytes:
    """Decrypt and authenticate a token produced by :func:`encrypt`.

    Raises:
        CryptoError: if the token is malformed or fails authentication
            (wrong key or tampered ciphertext).
    """
    if len(token) < SIV_LEN:
        raise CryptoError("token too short")
    mac_key, enc_key = _split_key(key)
    siv, ciphertext = token[:SIV_LEN], token[SIV_LEN:]
    stream = _keystream(enc_key, siv, len(ciphertext))
    plaintext = _xor(ciphertext, stream)
    expected = hmac.new(mac_key, plaintext, hashlib.sha256).digest()[:SIV_LEN]
    if not hmac.compare_digest(siv, expected):
        raise CryptoError("authentication failed: wrong key or tampered token")
    return plaintext
