"""Envelopes: what the DSSP actually sees at each exposure level.

The home server *seals* statements and results into envelopes according to
the application's exposure policy; the DSSP handles envelopes only.  By
construction an envelope carries plaintext fields **only** for information
its exposure level permits (paper Figure 5):

===========  =====================================  =======================
Level        Query envelope exposes                 Cache key (footnote 3)
===========  =====================================  =======================
blind        nothing                                Enc(statement)
template     template name + template SQL           template ‖ Enc(params)
stmt         + bound statement (AST and SQL)        statement SQL
view         + plaintext result                     statement SQL
===========  =====================================  =======================

Update envelopes are identical minus the ``view`` row.  Result envelopes
are plaintext only at ``view``; below that they hold an encrypted payload
that only holders of the application's keyring can open.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.analysis.exposure import ExposureLevel
from repro.crypto.cipher import decrypt, encrypt
from repro.crypto.keyring import Keyring, Purpose
from repro.errors import CryptoError
from repro.sql.ast import Delete, Insert, Select, Update
from repro.sql.parser import parse
from repro.storage.rows import ResultSet
from repro.templates.template import BoundQuery, BoundUpdate

__all__ = [
    "EnvelopeCodec",
    "QueryEnvelope",
    "ResultEnvelope",
    "UpdateEnvelope",
    "deserialize_result",
    "serialize_result",
]


@dataclass(frozen=True)
class QueryEnvelope:
    """A query as it crosses the DSSP, with level-appropriate visibility."""

    app_id: str
    level: ExposureLevel
    cache_key: str
    template_name: str | None = None
    template_sql: str | None = None
    statement: Select | None = None
    statement_sql: str | None = None
    #: Ciphertexts the home server (key holder) uses to recover the query;
    #: opaque to the DSSP.
    sealed_statement: bytes | None = None
    sealed_params: bytes | None = None

    @property
    def template_visible(self) -> bool:
        """True if the DSSP may use template identity (TIS and up)."""
        return self.template_name is not None

    @property
    def statement_visible(self) -> bool:
        """True if the DSSP may use the bound statement (SIS and up)."""
        return self.statement is not None


@dataclass(frozen=True)
class UpdateEnvelope:
    """An update as it crosses the DSSP on its way to the home server."""

    app_id: str
    level: ExposureLevel
    opaque_id: str
    template_name: str | None = None
    template_sql: str | None = None
    statement: Insert | Delete | Update | None = None
    statement_sql: str | None = None
    #: Ciphertexts for the home server; opaque to the DSSP.
    sealed_statement: bytes | None = None
    sealed_params: bytes | None = None

    @property
    def template_visible(self) -> bool:
        """True if the DSSP may use template identity."""
        return self.template_name is not None

    @property
    def statement_visible(self) -> bool:
        """True if the DSSP may use the bound statement."""
        return self.statement is not None


@dataclass(frozen=True)
class ResultEnvelope:
    """A query result: plaintext at ``view`` exposure, ciphertext below."""

    app_id: str
    plaintext: ResultSet | None = None
    ciphertext: bytes | None = None

    @property
    def visible(self) -> bool:
        """True if the DSSP may inspect the rows (VIS only)."""
        return self.plaintext is not None


def serialize_result(result: ResultSet) -> bytes:
    """Canonical byte form of a result set (also used on the wire)."""
    payload = {
        "columns": list(result.columns),
        "ordered": result.ordered,
        "rows": [list(row) for row in result.rows],
    }
    return json.dumps(payload, separators=(",", ":")).encode()


def deserialize_result(data: bytes) -> ResultSet:
    """Inverse of :func:`serialize_result`.

    Raises:
        CryptoError: if the payload is not a serialized result set.
    """
    try:
        payload = json.loads(data.decode())
        return ResultSet(
            columns=tuple(payload["columns"]),
            rows=tuple(tuple(row) for row in payload["rows"]),
            ordered=payload["ordered"],
        )
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as error:
        raise CryptoError(f"malformed result payload: {error}") from error




class EnvelopeCodec:
    """Seals and opens envelopes for one application's keyring.

    Lives at the home server and in the application's trusted client
    library — never at the DSSP.
    """

    #: Entries kept per memo before clearing (envelopes are small; the
    #: working set is the application's live statement population).
    MEMO_LIMIT = 8192

    def __init__(self, keyring: Keyring) -> None:
        self._keyring = keyring
        self._params_key = keyring.key_for(Purpose.PARAMS)
        self._statement_key = keyring.key_for(Purpose.STATEMENT)
        self._result_key = keyring.key_for(Purpose.RESULT)
        # Sealing is deterministic (SIV) and opening inverts it, so both
        # are pure functions of (bound statement, level) / envelope
        # identity — and web workloads re-seal the same popular statements
        # constantly.  BoundQuery/BoundUpdate hash by (template name,
        # params), which keeps lookups cheap.
        self._seal_query_memo: dict[tuple[BoundQuery, ExposureLevel], QueryEnvelope] = {}
        self._seal_update_memo: dict[tuple[BoundUpdate, ExposureLevel], UpdateEnvelope] = {}
        self._open_query_memo: dict[str, Select] = {}
        self._open_update_memo: dict[str, Insert | Delete | Update] = {}

    @property
    def app_id(self) -> str:
        """Application this codec seals for."""
        return self._keyring.app_id

    # -- queries -----------------------------------------------------------

    def seal_query(self, query: BoundQuery, level: ExposureLevel) -> QueryEnvelope:
        """Produce the DSSP-visible form of a bound query."""
        memo_key = (query, level)
        sealed = self._seal_query_memo.get(memo_key)
        if sealed is not None:
            return sealed
        sealed = self._seal_query(query, level)
        if len(self._seal_query_memo) >= self.MEMO_LIMIT:
            self._seal_query_memo.clear()
        self._seal_query_memo[memo_key] = sealed
        return sealed

    def _seal_query(self, query: BoundQuery, level: ExposureLevel) -> QueryEnvelope:
        app = self.app_id
        if level >= ExposureLevel.STMT:
            return QueryEnvelope(
                app_id=app,
                level=level,
                cache_key=f"{app}|stmt|{query.sql}",
                template_name=query.template.name,
                template_sql=query.template.sql,
                statement=query.select,
                statement_sql=query.sql,
            )
        if level is ExposureLevel.TEMPLATE:
            token = self._encrypt_params(query.params)
            return QueryEnvelope(
                app_id=app,
                level=level,
                cache_key=f"{app}|tmpl|{query.template.name}|{token.hex()}",
                template_name=query.template.name,
                template_sql=query.template.sql,
                sealed_params=token,
            )
        token = encrypt(self._statement_key, query.sql.encode())
        return QueryEnvelope(
            app_id=app,
            level=level,
            cache_key=f"{app}|blind|{token.hex()}",
            sealed_statement=token,
        )

    # -- updates ---------------------------------------------------------------

    def seal_update(
        self, update: BoundUpdate, level: ExposureLevel
    ) -> UpdateEnvelope:
        """Produce the DSSP-visible form of a bound update.

        Raises:
            CryptoError: if asked for ``view`` level (updates have none).
        """
        if level is ExposureLevel.VIEW:
            raise CryptoError("update envelopes have no 'view' level")
        memo_key = (update, level)
        sealed = self._seal_update_memo.get(memo_key)
        if sealed is not None:
            return sealed
        sealed = self._seal_update(update, level)
        if len(self._seal_update_memo) >= self.MEMO_LIMIT:
            self._seal_update_memo.clear()
        self._seal_update_memo[memo_key] = sealed
        return sealed

    def _seal_update(
        self, update: BoundUpdate, level: ExposureLevel
    ) -> UpdateEnvelope:
        app = self.app_id
        if level is ExposureLevel.STMT:
            return UpdateEnvelope(
                app_id=app,
                level=level,
                opaque_id=f"{app}|stmt|{update.sql}",
                template_name=update.template.name,
                template_sql=update.template.sql,
                statement=update.statement,
                statement_sql=update.sql,
            )
        if level is ExposureLevel.TEMPLATE:
            token = self._encrypt_params(update.params)
            return UpdateEnvelope(
                app_id=app,
                level=level,
                opaque_id=f"{app}|tmpl|{update.template.name}|{token.hex()}",
                template_name=update.template.name,
                template_sql=update.template.sql,
                sealed_params=token,
            )
        token = encrypt(self._statement_key, update.sql.encode())
        return UpdateEnvelope(
            app_id=app,
            level=level,
            opaque_id=f"{app}|blind|{token.hex()}",
            sealed_statement=token,
        )

    # -- results -----------------------------------------------------------------

    def seal_result(
        self, result: ResultSet, level: ExposureLevel
    ) -> ResultEnvelope:
        """Seal a query result: plaintext only at ``view`` exposure."""
        if level is ExposureLevel.VIEW:
            return ResultEnvelope(app_id=self.app_id, plaintext=result)
        token = encrypt(self._result_key, serialize_result(result))
        return ResultEnvelope(app_id=self.app_id, ciphertext=token)

    def open_result(self, envelope: ResultEnvelope) -> ResultSet:
        """Recover the plaintext result (client side).

        Raises:
            CryptoError: wrong application's codec, or tampered payload.
        """
        if envelope.app_id != self.app_id:
            raise CryptoError(
                f"envelope belongs to {envelope.app_id!r}, "
                f"codec is for {self.app_id!r}"
            )
        if envelope.plaintext is not None:
            return envelope.plaintext
        assert envelope.ciphertext is not None
        return deserialize_result(decrypt(self._result_key, envelope.ciphertext))

    # -- opening (home-server side) --------------------------------------------------

    def open_query(self, envelope: QueryEnvelope, registry) -> Select:
        """Recover the bound SELECT from a query envelope (requires keys).

        Args:
            envelope: As received from the DSSP.
            registry: The application's template registry, needed to rebuild
                statements from ``template``-level envelopes.

        Raises:
            CryptoError: wrong application or tampered payload.
        """
        self._check_app(envelope.app_id)
        if envelope.statement is not None:
            return envelope.statement
        # Deterministic sealing makes the cache key a stable identity for
        # the underlying statement, so decrypt/re-bind work is memoizable.
        cached = self._open_query_memo.get(envelope.cache_key)
        if cached is not None:
            return cached
        if envelope.sealed_params is not None:
            assert envelope.template_name is not None
            params = self._decrypt_params(envelope.sealed_params)
            template = registry.query(envelope.template_name)
            statement = template.bind(params).select
        else:
            assert envelope.sealed_statement is not None
            sql = decrypt(self._statement_key, envelope.sealed_statement).decode()
            statement = parse(sql)
            if not isinstance(statement, Select):
                raise CryptoError("sealed query does not decode to a SELECT")
        if len(self._open_query_memo) >= self.MEMO_LIMIT:
            self._open_query_memo.clear()
        self._open_query_memo[envelope.cache_key] = statement
        return statement

    def open_update(self, envelope: UpdateEnvelope, registry):
        """Recover the bound update statement from an update envelope.

        Raises:
            CryptoError: wrong application or tampered payload.
        """
        self._check_app(envelope.app_id)
        if envelope.statement is not None:
            return envelope.statement
        cached = self._open_update_memo.get(envelope.opaque_id)
        if cached is not None:
            return cached
        if envelope.sealed_params is not None:
            assert envelope.template_name is not None
            params = self._decrypt_params(envelope.sealed_params)
            template = registry.update(envelope.template_name)
            statement = template.bind(params).statement
        else:
            assert envelope.sealed_statement is not None
            sql = decrypt(self._statement_key, envelope.sealed_statement).decode()
            statement = parse(sql)
            if isinstance(statement, Select):
                raise CryptoError("sealed update decodes to a SELECT")
        if len(self._open_update_memo) >= self.MEMO_LIMIT:
            self._open_update_memo.clear()
        self._open_update_memo[envelope.opaque_id] = statement
        return statement

    def _check_app(self, app_id: str) -> None:
        if app_id != self.app_id:
            raise CryptoError(
                f"envelope belongs to {app_id!r}, codec is for {self.app_id!r}"
            )

    # -- helpers ------------------------------------------------------------------

    def _encrypt_params(self, params: tuple) -> bytes:
        payload = json.dumps(list(params), separators=(",", ":")).encode()
        return encrypt(self._params_key, payload)

    def _decrypt_params(self, token: bytes) -> tuple:
        payload = json.loads(decrypt(self._params_key, token).decode())
        return tuple(payload)
