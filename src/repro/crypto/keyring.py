"""Per-application key management.

A cost-effective DSSP caches data for *many* applications (paper Section
1), so cross-application isolation is part of the threat model: application
A must not be able to read application B's data even though both flow
through the same cache.  Every application therefore owns an independent
master key, from which purpose-specific subkeys are derived.
"""

from __future__ import annotations

import enum
import hashlib
import hmac
import os

from repro.errors import CryptoError

__all__ = ["Keyring", "Purpose"]


class Purpose(enum.Enum):
    """What a derived subkey protects."""

    PARAMS = "params"  # parameters at 'template' exposure
    STATEMENT = "statement"  # whole statements at 'blind' exposure
    RESULT = "result"  # cached query results below 'view' exposure


class Keyring:
    """Derives purpose keys from one application's master key.

    Args:
        app_id: Application identifier (also mixed into derivations, so two
            applications sharing a master key by accident still diverge).
        master_key: 32+ byte secret; generated randomly if omitted.
    """

    def __init__(self, app_id: str, master_key: bytes | None = None) -> None:
        if master_key is None:
            master_key = os.urandom(32)
        if len(master_key) < 16:
            raise CryptoError("master key must be at least 16 bytes")
        self.app_id = app_id
        self._master_key = master_key

    def key_for(self, purpose: Purpose) -> bytes:
        """Derive the subkey for one purpose (stable per keyring)."""
        info = f"{self.app_id}:{purpose.value}".encode()
        return hmac.new(self._master_key, info, hashlib.sha256).digest()

    def __repr__(self) -> str:
        return f"Keyring(app_id={self.app_id!r})"
