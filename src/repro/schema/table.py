"""Per-table schema definition."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError, UnknownColumnError
from repro.schema.attribute import Attribute
from repro.schema.column import Column
from repro.schema.constraints import ForeignKey

__all__ = ["TableSchema"]


@dataclass(frozen=True)
class TableSchema:
    """Schema of one base relation.

    Attributes:
        name: Lowercase table name.
        columns: Ordered column definitions.
        primary_key: Names of the key columns (non-empty for every table in
            the paper's model — modifications select rows via the key).
        foreign_keys: Outgoing references to other tables.
    """

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = ()
    foreign_keys: tuple[ForeignKey, ...] = ()
    _index: dict[str, int] = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        index: dict[str, int] = {}
        for position, column in enumerate(self.columns):
            if column.name in index:
                raise SchemaError(
                    f"table {self.name!r} defines column {column.name!r} twice"
                )
            index[column.name] = position
        object.__setattr__(self, "_index", index)
        for key_column in self.primary_key:
            if key_column not in index:
                raise SchemaError(
                    f"primary key column {key_column!r} is not a column "
                    f"of table {self.name!r}"
                )
        for foreign_key in self.foreign_keys:
            if foreign_key.column not in index:
                raise SchemaError(
                    f"foreign key column {foreign_key.column!r} is not a "
                    f"column of table {self.name!r}"
                )

    # -- lookups -------------------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        """Names of all columns, in declaration order."""
        return tuple(column.name for column in self.columns)

    def has_column(self, name: str) -> bool:
        """Return True if ``name`` is a column of this table."""
        return name in self._index

    def column(self, name: str) -> Column:
        """Return the column definition for ``name``.

        Raises:
            UnknownColumnError: if the column does not exist.
        """
        try:
            return self.columns[self._index[name]]
        except KeyError:
            raise UnknownColumnError(name, self.name) from None

    def position(self, name: str) -> int:
        """Return the ordinal position of column ``name`` in a stored row."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownColumnError(name, self.name) from None

    def attribute(self, column: str) -> Attribute:
        """Return the fully qualified :class:`Attribute` for a column."""
        if column not in self._index:
            raise UnknownColumnError(column, self.name)
        return Attribute(self.name, column)

    def attributes(self) -> frozenset[Attribute]:
        """Return the set of all attributes of this table."""
        return frozenset(Attribute(self.name, c.name) for c in self.columns)

    def is_key_column(self, name: str) -> bool:
        """Return True if ``name`` is part of the primary key."""
        return name in self.primary_key
