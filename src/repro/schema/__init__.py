"""Relational schema: tables, typed columns, integrity constraints.

The analysis layer works at *attribute* granularity (paper Table 5), so this
package also defines :class:`~repro.schema.attribute.Attribute` — a fully
qualified ``table.column`` identity used as the common currency between the
template classifiers, the IPM characterization, and the storage engine.

Integrity constraints (primary key, foreign key) matter twice: the storage
engine enforces them on DML, and the static analysis exploits them to refine
invalidation probabilities (paper Section 4.5).
"""

from repro.schema.attribute import Attribute
from repro.schema.column import Column, ColumnType
from repro.schema.constraints import ForeignKey
from repro.schema.schema import Schema
from repro.schema.table import TableSchema

__all__ = [
    "Attribute",
    "Column",
    "ColumnType",
    "ForeignKey",
    "Schema",
    "TableSchema",
]
