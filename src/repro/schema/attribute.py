"""Fully qualified attribute identity.

The paper's static analysis is defined over *attributes* — columns named
with their base table, e.g. ``toys.toy_id``.  Aliases used inside a
statement (``toys AS t1``) are resolved away before analysis, so two
statements touching the same base column always agree on the attribute.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Attribute"]


@dataclass(frozen=True, slots=True, order=True)
class Attribute:
    """A base-table column, the unit of the paper's attribute-set analysis."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"
