"""Declarative integrity constraints.

Primary keys live on :class:`~repro.schema.table.TableSchema` directly
(``primary_key`` column tuple); this module defines the cross-table foreign
key.  Both constraint kinds are enforced by the storage engine and exploited
by the static analysis (paper Section 4.5):

* *Primary key*: an insertion cannot duplicate an existing key, so a query
  that selects on an equality over the full key cannot gain new matches from
  insertions into that table.
* *Foreign key*: a fresh insertion into the *referenced* table introduces a
  key value no referencing row can yet join with, so such insertions cannot
  affect queries that join the two tables on the foreign key.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ForeignKey"]


@dataclass(frozen=True, slots=True)
class ForeignKey:
    """``column`` of the owning table references ``ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str

    def describe(self, table: str) -> str:
        """Human-readable rendering for error messages and reports."""
        return f"{table}.{self.column} -> {self.ref_table}.{self.ref_column}"
