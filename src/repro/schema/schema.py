"""Whole-database schema with cross-table validation and name resolution."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import SchemaError, UnknownColumnError, UnknownTableError
from repro.schema.attribute import Attribute
from repro.schema.constraints import ForeignKey
from repro.schema.table import TableSchema

__all__ = ["Schema"]


class Schema:
    """An immutable collection of table schemas.

    Validates on construction that foreign keys point at existing tables and
    columns, and (as the paper's Section 4.5 analysis assumes) that every
    foreign key references the target table's primary key.
    """

    def __init__(self, tables: Iterable[TableSchema]) -> None:
        self._tables: dict[str, TableSchema] = {}
        for table in tables:
            if table.name in self._tables:
                raise SchemaError(f"duplicate table {table.name!r}")
            self._tables[table.name] = table
        self._validate_foreign_keys()

    def _validate_foreign_keys(self) -> None:
        for table in self._tables.values():
            for foreign_key in table.foreign_keys:
                target = self._tables.get(foreign_key.ref_table)
                if target is None:
                    raise SchemaError(
                        f"foreign key {foreign_key.describe(table.name)} "
                        "references an unknown table"
                    )
                if not target.has_column(foreign_key.ref_column):
                    raise SchemaError(
                        f"foreign key {foreign_key.describe(table.name)} "
                        "references an unknown column"
                    )
                if target.primary_key != (foreign_key.ref_column,):
                    raise SchemaError(
                        f"foreign key {foreign_key.describe(table.name)} must "
                        "reference the target's (single-column) primary key"
                    )

    # -- lookup ----------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[TableSchema]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def table_names(self) -> tuple[str, ...]:
        """Names of all tables, in declaration order."""
        return tuple(self._tables)

    def table(self, name: str) -> TableSchema:
        """Return the schema for table ``name``.

        Raises:
            UnknownTableError: if no such table exists.
        """
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def attribute(self, table: str, column: str) -> Attribute:
        """Resolve ``table.column`` to an :class:`Attribute`, validating both."""
        return self.table(table).attribute(column)

    def resolve_column(self, column: str, tables: Iterable[str]) -> Attribute:
        """Resolve an unqualified column against candidate base tables.

        Args:
            column: Bare column name from a statement.
            tables: Base-table names in scope (FROM clause, aliases resolved).

        Raises:
            UnknownColumnError: if the column matches no table in scope or is
                ambiguous across several.
        """
        matches = [
            name for name in tables if self.table(name).has_column(column)
        ]
        if not matches:
            raise UnknownColumnError(column)
        if len(set(matches)) > 1:
            raise SchemaError(
                f"column {column!r} is ambiguous across tables {sorted(set(matches))}"
            )
        return Attribute(matches[0], column)

    # -- constraint views --------------------------------------------------------

    def foreign_keys_into(self, table: str) -> tuple[tuple[str, ForeignKey], ...]:
        """Return ``(owning_table, fk)`` pairs referencing ``table``."""
        incoming = []
        for owner in self._tables.values():
            for foreign_key in owner.foreign_keys:
                if foreign_key.ref_table == table:
                    incoming.append((owner.name, foreign_key))
        return tuple(incoming)

    def all_attributes(self) -> frozenset[Attribute]:
        """Return every attribute in the schema."""
        result: set[Attribute] = set()
        for table in self._tables.values():
            result |= table.attributes()
        return frozenset(result)
