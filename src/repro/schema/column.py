"""Column definitions and value types."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TypeMismatchError

__all__ = ["Column", "ColumnType"]


class ColumnType(enum.Enum):
    """Storage types of the engine.

    The dialect needs only three: integers, floats (prices, ratings), and
    text.  NULL is representable in any nullable column.
    """

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"

    def accepts(self, value: object) -> bool:
        """Return True if ``value`` (non-NULL) is storable in this type."""
        if self is ColumnType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        return isinstance(value, str)

    def coerce(self, value: object) -> int | float | str:
        """Coerce a compatible value to the canonical Python type.

        Raises:
            TypeMismatchError: if the value is not storable in this type.
        """
        if not self.accepts(value):
            raise TypeMismatchError(
                f"value {value!r} is not storable in a {self.value} column"
            )
        if self is ColumnType.FLOAT:
            return float(value)  # type: ignore[arg-type]
        return value  # type: ignore[return-value]


@dataclass(frozen=True, slots=True)
class Column:
    """A named, typed column.

    Attributes:
        name: Lowercase column name.
        type: Storage type.
        nullable: Whether SQL NULL may be stored.  Primary-key columns are
            implicitly NOT NULL regardless of this flag.
    """

    name: str
    type: ColumnType
    nullable: bool = True
