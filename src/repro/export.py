"""CSV export of analysis and evaluation artifacts.

Every benchmark artifact in this library is also wanted as plain data —
for plotting Figures 3/7/8, or for feeding the characterization into a
spreadsheet while deciding the Step-3 tradeoffs.  These helpers render the
core result objects as CSV text (no filesystem side effects; callers decide
where bytes go).
"""

from __future__ import annotations

import csv
import io
from collections.abc import Iterable, Mapping

from repro.analysis.exposure import ExposurePolicy
from repro.analysis.ipm import IpmCharacterization
from repro.analysis.methodology import MethodologyResult
from repro.simulation.scalability import CacheBehavior

__all__ = [
    "characterization_to_csv",
    "exposure_policy_to_csv",
    "methodology_to_csv",
    "scalability_sweep_to_csv",
    "cache_behavior_to_csv",
]


def _render(header: list[str], rows: Iterable[list]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(header)
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def characterization_to_csv(characterization: IpmCharacterization) -> str:
    """One row per update/query template pair with the static claims."""
    rows = [
        [
            pair.update_name,
            pair.query_name,
            pair.a_value,
            int(pair.b_equals_a),
            int(pair.c_equals_b),
            int(pair.assumptions_hold),
            pair.reason,
        ]
        for pair in characterization
    ]
    return _render(
        [
            "update_template",
            "query_template",
            "a_value",
            "b_equals_a",
            "c_equals_b",
            "assumptions_hold",
            "reason",
        ],
        rows,
    )


def exposure_policy_to_csv(policy: ExposurePolicy) -> str:
    """One row per template with its exposure level."""
    rows = [
        ["query", name, level.label]
        for name, level in sorted(policy.query_levels.items())
    ] + [
        ["update", name, level.label]
        for name, level in sorted(policy.update_levels.items())
    ]
    return _render(["kind", "template", "exposure_level"], rows)


def methodology_to_csv(result: MethodologyResult) -> str:
    """One row per template: initial level, final level, reduced flag.

    This is the Figure 7 data series.
    """
    rows = []
    for name, (initial, final) in sorted(
        result.exposure_reduction_summary().items()
    ):
        rows.append([name, initial, final, int(initial != final)])
    return _render(["template", "initial_level", "final_level", "reduced"], rows)


def scalability_sweep_to_csv(
    sweep: Mapping[str, Mapping[str, int]]
) -> str:
    """Figure 8 data: application × strategy → max users."""
    rows = []
    for application, per_strategy in sweep.items():
        for strategy, users in per_strategy.items():
            rows.append([application, strategy, users])
    return _render(["application", "strategy", "scalability_users"], rows)


def cache_behavior_to_csv(
    behaviors: Mapping[str, CacheBehavior]
) -> str:
    """Per-configuration cache-behaviour profile (label → behavior)."""
    rows = []
    for label, behavior in behaviors.items():
        rows.append(
            [
                label,
                behavior.pages,
                f"{behavior.queries_per_page:.4f}",
                f"{behavior.hits_per_page:.4f}",
                f"{behavior.misses_per_page:.4f}",
                f"{behavior.updates_per_page:.4f}",
                f"{behavior.hit_rate:.4f}",
                f"{behavior.invalidations_per_update:.4f}",
            ]
        )
    return _render(
        [
            "label",
            "pages",
            "queries_per_page",
            "hits_per_page",
            "misses_per_page",
            "updates_per_page",
            "hit_rate",
            "invalidations_per_update",
        ],
        rows,
    )
