"""Attribute-set extraction — the paper's Table 5.

For a schema-resolved statement:

* ``S(U)`` — attributes in any selection predicate of an update template
  (empty for insertions);
* ``M(U)`` — attributes modified: the SET columns of a modification, or
  *all* attributes of the target table for insertions and deletions;
* ``S(Q)`` — attributes in selection predicates **or order-by constructs**
  of a query template;
* ``P(Q)`` — attributes preserved (retained) in the query result.  For the
  aggregation extension, aggregate arguments and group-by columns count as
  preserved (conservative: they influence and partially appear in the
  result).

All sets contain base-table :class:`~repro.schema.attribute.Attribute`
values — aliases are resolved, so a self-join contributes one attribute per
base column, as the paper's analysis expects.
"""

from __future__ import annotations

from repro.errors import AnalysisError
from repro.schema.attribute import Attribute
from repro.schema.schema import Schema
from repro.sql.ast import (
    Aggregate,
    ColumnRef,
    Delete,
    Insert,
    Select,
    Star,
    Statement,
    Update,
)

__all__ = [
    "modified_attributes",
    "preserved_attributes",
    "selection_attributes",
    "resolve_query_column",
]


def _query_scope(select: Select) -> dict[str, str]:
    """Map binding name → base table name for a query."""
    return {ref.binding: ref.name for ref in select.tables}


def resolve_query_column(
    schema: Schema, select: Select, ref: ColumnRef
) -> Attribute:
    """Resolve a column reference inside a query to a base-table attribute.

    Raises:
        AnalysisError: on unknown bindings/columns or ambiguity.
    """
    scope = _query_scope(select)
    if ref.table is not None:
        base = scope.get(ref.table)
        if base is None:
            raise AnalysisError(
                f"column {ref.qualified()!r} references unknown binding "
                f"{ref.table!r}"
            )
        return schema.attribute(base, ref.column)
    matches = [
        base
        for base in scope.values()
        if schema.table(base).has_column(ref.column)
    ]
    if not matches:
        raise AnalysisError(f"unknown column {ref.column!r} in query")
    if len(set(matches)) > 1:
        raise AnalysisError(f"ambiguous column {ref.column!r} in query")
    return Attribute(matches[0], ref.column)


def selection_attributes(schema: Schema, statement: Statement) -> frozenset[Attribute]:
    """Return S(Q) or S(U): attributes in selection predicates (+ order-by).

    Insertions have no selection predicate: ``S(U) = {}``.
    """
    if isinstance(statement, Insert):
        return frozenset()
    if isinstance(statement, Select):
        attributes: set[Attribute] = set()
        for comparison in statement.where:
            for ref in comparison.column_refs():
                attributes.add(resolve_query_column(schema, statement, ref))
        # Table 5: S(Q) includes order-by columns — reordering is an
        # observable change of an ordered result.
        for item in statement.order_by:
            attributes.add(resolve_query_column(schema, statement, item.column))
        return frozenset(attributes)
    if isinstance(statement, (Delete, Update)):
        table = schema.table(statement.table)
        attributes = set()
        for comparison in statement.where:
            for ref in comparison.column_refs():
                if ref.table is not None and ref.table != statement.table:
                    raise AnalysisError(
                        f"update predicate references foreign table {ref.table!r}"
                    )
                attributes.add(table.attribute(ref.column))
        return frozenset(attributes)
    raise AnalysisError(f"cannot analyze {type(statement).__name__}")


def modified_attributes(
    schema: Schema, statement: Insert | Delete | Update
) -> frozenset[Attribute]:
    """Return M(U): attributes an update template may modify.

    Insertions and deletions modify (add/remove values of) *every* attribute
    of the target table; modifications touch only the SET columns.
    """
    table = schema.table(statement.table)
    if isinstance(statement, (Insert, Delete)):
        return table.attributes()
    if isinstance(statement, Update):
        return frozenset(
            table.attribute(column) for column, _ in statement.assignments
        )
    raise AnalysisError(f"cannot analyze {type(statement).__name__}")


def preserved_attributes(schema: Schema, select: Select) -> frozenset[Attribute]:
    """Return P(Q): attributes retained in the query result.

    ``*`` preserves every attribute of every FROM table.  Aggregates
    conservatively preserve their argument (and ``COUNT(*)`` preserves all
    attributes of all tables, since any column's values determine the
    count's grouping behaviour only via group-by — the count itself depends
    on row multiplicity, which every attribute witnesses).
    """
    scope = _query_scope(select)
    attributes: set[Attribute] = set()
    for item in select.items:
        if isinstance(item, Star):
            for base in scope.values():
                attributes |= schema.table(base).attributes()
        elif isinstance(item, ColumnRef):
            attributes.add(resolve_query_column(schema, select, item))
        elif isinstance(item, Aggregate):
            if isinstance(item.argument, Star):
                # COUNT(*): the result reflects raw row multiplicity.
                for base in scope.values():
                    attributes |= schema.table(base).attributes()
            else:
                attributes.add(
                    resolve_query_column(schema, select, item.argument)
                )
    for column in select.group_by:
        attributes.add(resolve_query_column(schema, select, column))
    return frozenset(attributes)
