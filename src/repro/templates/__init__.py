"""Query and update templates.

A *template* is a statement with zero or more ``?`` parameters (paper
Section 2.1): ``Q = Q_T(Q_P)`` and ``U = U_T(U_P)``.  This package provides:

* :class:`~repro.templates.template.QueryTemplate` /
  :class:`~repro.templates.template.UpdateTemplate` — named templates with
  late binding;
* :mod:`~repro.templates.binding` — substitute parameters into an AST;
* :mod:`~repro.templates.attributes` — the paper's attribute sets S(U),
  M(U), S(Q), P(Q) (Table 5), alias-resolved to base-table attributes;
* :mod:`~repro.templates.classify` — query/update classes E, N, I, D, M and
  the pair relations G (ignorable) and H (result-unhelpful) (Table 6);
* :class:`~repro.templates.registry.TemplateRegistry` — the fixed template
  sets that define an application's database component.
"""

from repro.templates.attributes import (
    modified_attributes,
    preserved_attributes,
    selection_attributes,
)
from repro.templates.binding import bind, count_parameters
from repro.templates.classify import (
    UpdateKind,
    is_ignorable,
    is_result_unhelpful,
    query_is_equality_join_only,
    query_has_no_top_k,
    update_kind,
)
from repro.templates.registry import TemplateRegistry
from repro.templates.template import BoundQuery, BoundUpdate, QueryTemplate, UpdateTemplate

__all__ = [
    "BoundQuery",
    "BoundUpdate",
    "QueryTemplate",
    "TemplateRegistry",
    "UpdateKind",
    "UpdateTemplate",
    "bind",
    "count_parameters",
    "is_ignorable",
    "is_result_unhelpful",
    "modified_attributes",
    "preserved_attributes",
    "query_has_no_top_k",
    "query_is_equality_join_only",
    "selection_attributes",
    "update_kind",
]
