"""Named query/update templates and their bound instances.

Templates carry a short name (``Q1``, ``U2``, or descriptive names like
``getBestSellers``), the parsed AST, and an optional *sensitivity* label
used by the security methodology (Step 1 decides compulsory encryption from
sensitivity; Section 5.4 discusses moderately-sensitive data).
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import TemplateError
from repro.sql.ast import Delete, Insert, Scalar, Select, Update
from repro.sql.formatter import to_sql
from repro.sql.parser import parse
from repro.templates.binding import bind, count_parameters

__all__ = [
    "BoundQuery",
    "BoundUpdate",
    "QueryTemplate",
    "Sensitivity",
    "UpdateTemplate",
]


# Binding is pure — (template, params) fully determines the bound
# instance, and every layer above treats it as immutable — while the Zipf
# workloads bind the same popular pairs constantly.  Keyed by template
# identity (templates are long-lived registry members) with the template
# stored alongside the result so a recycled id() can never alias.
_BIND_MEMO_LIMIT = 8192
_bind_memo: dict[tuple[int, tuple], tuple[object, object]] = {}


def _memoize_bind(template, params: tuple, build):
    key = (id(template), params)
    hit = _bind_memo.get(key)
    if hit is not None and hit[0] is template:
        return hit[1]
    bound = build()
    if len(_bind_memo) >= _BIND_MEMO_LIMIT:
        _bind_memo.clear()
    _bind_memo[key] = (template, bound)
    return bound


class Sensitivity(enum.Enum):
    """Data-sensitivity bands used by the design methodology (Section 1.2)."""

    HIGH = "high"  # e.g. credit-card data: compulsory encryption (Step 1)
    MODERATE = "moderate"  # e.g. inventory, bid history: encrypt if free
    LOW = "low"  # e.g. best-seller list: public anyway


@dataclass(frozen=True)
class QueryTemplate:
    """A named query template ``Q_T``.

    Attributes:
        name: Stable identifier within the application.
        select: Parsed SELECT AST with ``?`` parameters.
        sensitivity: How sensitive the query's result data is.
    """

    name: str
    select: Select
    sensitivity: Sensitivity = Sensitivity.LOW

    @classmethod
    def from_sql(
        cls, name: str, sql: str, sensitivity: Sensitivity = Sensitivity.LOW
    ) -> "QueryTemplate":
        """Parse SQL text into a query template.

        Raises:
            TemplateError: if the SQL is not a SELECT.
        """
        statement = parse(sql)
        if not isinstance(statement, Select):
            raise TemplateError(f"template {name!r} is not a query: {sql!r}")
        return cls(name=name, select=statement, sensitivity=sensitivity)

    @property
    def parameter_count(self) -> int:
        """Number of ``?`` parameters."""
        return count_parameters(self.select)

    @property
    def sql(self) -> str:
        """Canonical SQL text of the template."""
        return to_sql(self.select)

    def bind(self, params: Sequence[Scalar]) -> "BoundQuery":
        """Attach parameters, producing an executable query instance."""
        params = tuple(params)

        def build() -> BoundQuery:
            bound = bind(self.select, params)
            assert isinstance(bound, Select)
            return BoundQuery(template=self, params=params, select=bound)

        return _memoize_bind(self, params, build)


@dataclass(frozen=True)
class UpdateTemplate:
    """A named update template ``U_T`` (insertion, deletion or modification)."""

    name: str
    statement: Insert | Delete | Update
    sensitivity: Sensitivity = Sensitivity.LOW

    @classmethod
    def from_sql(
        cls, name: str, sql: str, sensitivity: Sensitivity = Sensitivity.LOW
    ) -> "UpdateTemplate":
        """Parse SQL text into an update template.

        Raises:
            TemplateError: if the SQL is a SELECT.
        """
        statement = parse(sql)
        if isinstance(statement, Select):
            raise TemplateError(f"template {name!r} is not an update: {sql!r}")
        return cls(name=name, statement=statement, sensitivity=sensitivity)

    @property
    def parameter_count(self) -> int:
        """Number of ``?`` parameters."""
        return count_parameters(self.statement)

    @property
    def sql(self) -> str:
        """Canonical SQL text of the template."""
        return to_sql(self.statement)

    def bind(self, params: Sequence[Scalar]) -> "BoundUpdate":
        """Attach parameters, producing an applicable update instance."""
        params = tuple(params)

        def build() -> BoundUpdate:
            bound = bind(self.statement, params)
            assert not isinstance(bound, Select)
            return BoundUpdate(template=self, params=params, statement=bound)

        return _memoize_bind(self, params, build)


@dataclass(frozen=True)
class BoundQuery:
    """A query instance ``Q = Q_T(Q_P)``.

    Hashable — the DSSP cache keys on bound statements.
    """

    template: QueryTemplate
    params: tuple[Scalar, ...]
    #: Derived from (template, params); excluded from equality.
    select: Select = field(compare=False)

    @property
    def sql(self) -> str:
        """Canonical SQL text of the bound statement."""
        return to_sql(self.select)

    def __hash__(self) -> int:
        return hash((self.template.name, self.params))


@dataclass(frozen=True)
class BoundUpdate:
    """An update instance ``U = U_T(U_P)``."""

    template: UpdateTemplate
    params: tuple[Scalar, ...]
    statement: Insert | Delete | Update = field(compare=False)

    @property
    def sql(self) -> str:
        """Canonical SQL text of the bound statement."""
        return to_sql(self.statement)

    def __hash__(self) -> int:
        return hash((self.template.name, self.params))
