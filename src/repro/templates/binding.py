"""Parameter binding: template AST + parameter values → bound statement AST.

Binding replaces every :class:`~repro.sql.ast.Parameter` node with a
:class:`~repro.sql.ast.Literal` carrying the positionally-matching value.
The result is executable by the storage engine.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import BindingError
from repro.sql.ast import (
    Comparison,
    Delete,
    Insert,
    Literal,
    Parameter,
    Scalar,
    Select,
    Statement,
    Update,
    Value,
)

__all__ = ["bind", "count_parameters"]


def count_parameters(statement: Statement) -> int:
    """Return the number of ``?`` parameters in a statement."""
    count = 0
    for value in _iter_values(statement):
        if isinstance(value, Parameter):
            count += 1
    if isinstance(statement, Select) and isinstance(statement.limit, Parameter):
        count += 1
    return count


def _iter_values(statement: Statement):
    """Yield every Value position of a statement (except LIMIT)."""
    if isinstance(statement, Select):
        for comparison in statement.where:
            yield comparison.left
            yield comparison.right
    elif isinstance(statement, Insert):
        yield from statement.values
    elif isinstance(statement, Delete):
        for comparison in statement.where:
            yield comparison.left
            yield comparison.right
    elif isinstance(statement, Update):
        for _, value in statement.assignments:
            yield value
        for comparison in statement.where:
            yield comparison.left
            yield comparison.right


def bind(statement: Statement, params: Sequence[Scalar]) -> Statement:
    """Substitute parameter values into a statement.

    Args:
        statement: Template AST, with parameters numbered 0..n-1.
        params: One value per parameter, positionally.

    Raises:
        BindingError: if the number of values does not match the number of
            parameters.
    """
    expected = count_parameters(statement)
    if len(params) != expected:
        raise BindingError(
            f"statement has {expected} parameter(s) but {len(params)} "
            "value(s) were supplied"
        )

    def subst(value: Value) -> Value:
        if isinstance(value, Parameter):
            return Literal(params[value.index])
        return value

    def subst_where(where: tuple[Comparison, ...]) -> tuple[Comparison, ...]:
        return tuple(
            Comparison(subst(c.left), c.op, subst(c.right)) for c in where
        )

    if isinstance(statement, Select):
        limit = statement.limit
        if isinstance(limit, Parameter):
            bound_limit = params[limit.index]
            if not isinstance(bound_limit, int):
                raise BindingError(
                    f"LIMIT parameter must bind to an int, got {bound_limit!r}"
                )
            limit = bound_limit
        return Select(
            items=statement.items,
            tables=statement.tables,
            where=subst_where(statement.where),
            group_by=statement.group_by,
            order_by=statement.order_by,
            limit=limit,
        )
    if isinstance(statement, Insert):
        return Insert(
            table=statement.table,
            columns=statement.columns,
            values=tuple(subst(v) for v in statement.values),  # type: ignore[misc]
        )
    if isinstance(statement, Delete):
        return Delete(table=statement.table, where=subst_where(statement.where))
    if isinstance(statement, Update):
        return Update(
            table=statement.table,
            assignments=tuple(
                (column, subst(value))  # type: ignore[misc]
                for column, value in statement.assignments
            ),
            where=subst_where(statement.where),
        )
    raise BindingError(f"cannot bind {type(statement).__name__}")
