"""Template registry: the fixed template sets of one application.

A Web application's database component is a fixed set of query templates
``Q_T = {Q_T1..Q_Tn}`` and update templates ``U_T = {U_T1..U_Tm}`` (paper
Section 2.1).  The registry validates every template against the schema at
registration time so downstream analysis never sees unresolvable names.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import TemplateError
from repro.schema.schema import Schema
from repro.templates.attributes import (
    modified_attributes,
    preserved_attributes,
    selection_attributes,
)
from repro.templates.template import QueryTemplate, UpdateTemplate

__all__ = ["TemplateRegistry"]


class TemplateRegistry:
    """Holds and validates an application's query and update templates."""

    def __init__(
        self,
        schema: Schema,
        queries: Iterable[QueryTemplate] = (),
        updates: Iterable[UpdateTemplate] = (),
    ) -> None:
        self.schema = schema
        self._queries: dict[str, QueryTemplate] = {}
        self._updates: dict[str, UpdateTemplate] = {}
        for query in queries:
            self.add_query(query)
        for update in updates:
            self.add_update(update)

    # -- registration --------------------------------------------------------

    def add_query(self, template: QueryTemplate) -> None:
        """Register a query template, validating it against the schema.

        Raises:
            TemplateError: on name collisions.
        """
        if template.name in self._queries or template.name in self._updates:
            raise TemplateError(f"duplicate template name {template.name!r}")
        # Force full resolution now: these raise on unknown names.
        selection_attributes(self.schema, template.select)
        preserved_attributes(self.schema, template.select)
        self._queries[template.name] = template

    def add_update(self, template: UpdateTemplate) -> None:
        """Register an update template, validating it against the schema.

        Raises:
            TemplateError: on name collisions.
        """
        if template.name in self._updates or template.name in self._queries:
            raise TemplateError(f"duplicate template name {template.name!r}")
        selection_attributes(self.schema, template.statement)
        modified_attributes(self.schema, template.statement)
        self._updates[template.name] = template

    # -- lookup ----------------------------------------------------------------

    @property
    def queries(self) -> tuple[QueryTemplate, ...]:
        """All query templates, in registration order."""
        return tuple(self._queries.values())

    @property
    def updates(self) -> tuple[UpdateTemplate, ...]:
        """All update templates, in registration order."""
        return tuple(self._updates.values())

    def query(self, name: str) -> QueryTemplate:
        """Return the query template named ``name``.

        Raises:
            TemplateError: if absent.
        """
        try:
            return self._queries[name]
        except KeyError:
            raise TemplateError(f"no query template named {name!r}") from None

    def update(self, name: str) -> UpdateTemplate:
        """Return the update template named ``name``.

        Raises:
            TemplateError: if absent.
        """
        try:
            return self._updates[name]
        except KeyError:
            raise TemplateError(f"no update template named {name!r}") from None

    def __len__(self) -> int:
        return len(self._queries) + len(self._updates)

    def pairs(self) -> Iterator[tuple[UpdateTemplate, QueryTemplate]]:
        """Iterate over every (update template, query template) pair."""
        for update in self._updates.values():
            for query in self._queries.values():
                yield update, query
