"""Query/update classes and pair relations — the paper's Table 6.

* Query classes: ``E`` (only equality joins or no joins) and ``N`` (no
  top-k construct).
* Update classes: ``I`` insertion, ``D`` deletion, ``M`` modification.
* Pair relations:

  - ``G`` — **ignorable**: ``M(U) ∩ (P(Q) ∪ S(Q)) = ∅``.  No instance of
    the update template can ever affect the result of any instance of the
    query template (Lemma 1 direction A = 0).
  - ``H`` — **result-unhelpful**: ``S(U) ∩ P(Q) = ∅``.  The cached result
    carries no attribute the update selects on, so inspecting the view
    cannot refine invalidation decisions.
"""

from __future__ import annotations

import enum

from repro.schema.schema import Schema
from repro.sql.ast import Delete, Insert, Select, Update
from repro.templates.attributes import (
    modified_attributes,
    preserved_attributes,
    selection_attributes,
)

__all__ = [
    "UpdateKind",
    "is_ignorable",
    "is_result_unhelpful",
    "query_is_equality_join_only",
    "query_has_no_top_k",
    "update_kind",
]


class UpdateKind(enum.Enum):
    """The three update statement classes (paper Table 6)."""

    INSERTION = "insertion"
    DELETION = "deletion"
    MODIFICATION = "modification"


def update_kind(statement: Insert | Delete | Update) -> UpdateKind:
    """Classify an update statement as I, D, or M."""
    if isinstance(statement, Insert):
        return UpdateKind.INSERTION
    if isinstance(statement, Delete):
        return UpdateKind.DELETION
    return UpdateKind.MODIFICATION


def query_is_equality_join_only(select: Select) -> bool:
    """Query class E: every join condition uses ``=`` (or no joins at all)."""
    return select.only_equality_joins()


def query_has_no_top_k(select: Select) -> bool:
    """Query class N: the query has no top-k (LIMIT) construct."""
    return not select.has_top_k()


def is_ignorable(
    schema: Schema, update: Insert | Delete | Update, query: Select
) -> bool:
    """Pair relation G: ``M(U) ∩ (P(Q) ∪ S(Q)) = ∅``.

    If the update modifies no attribute the query either preserves or
    selects on, no instance of the update can change any instance's result.
    """
    modified = modified_attributes(schema, update)
    used = preserved_attributes(schema, query) | selection_attributes(schema, query)
    return not (modified & used)


def is_result_unhelpful(
    schema: Schema, update: Insert | Delete | Update, query: Select
) -> bool:
    """Pair relation H: ``S(U) ∩ P(Q) = ∅``.

    The view preserves none of the update's selection attributes, so seeing
    the cached result cannot help decide whether the update touches it.
    """
    return not (
        selection_attributes(schema, update) & preserved_attributes(schema, query)
    )
