"""Multi-node DSSP deployment (extension of the paper's evaluation).

The paper's architecture (Figure 1) places *many* DSSP nodes near clients —
"a DSSP node (because there are many of them) is close to the clients" —
but its evaluation uses a single node.  This module implements the
multi-node deployment the architecture implies:

* clients are partitioned across nodes by a stable hash (CDN-style
  affinity), so each node caches only its own clients' working set;
* queries are served by the client's node;
* updates are forwarded to the home server once, then the invalidation
  stream **fans out to every node** — each node runs its own invalidation
  engine over its own cache, exactly as the single-node DSSP does.

The interesting (and measured — see ``bench_extension_cluster.py``)
consequence: partitioning *dilutes* each node's cache, so total home-server
load rises with node count whenever the home server, not the DSSP, is the
bottleneck.  Sharing one logical cache is what the paper's scalability
argument actually relies on.
"""

from __future__ import annotations

from repro.crypto.envelope import QueryEnvelope, UpdateEnvelope
from repro.dssp.homeserver import HomeServer
from repro.dssp.placement import (
    TemplateAffinity,
    entry_placement_key,
    policy_allows_blind_queries,
    query_placement_key,
    shards_for_update,
    update_routing_key,
)
from repro.dssp.proxy import DsspNode, QueryOutcome, UpdateOutcome
from repro.dssp.ring import DEFAULT_VNODES, HashRing
from repro.dssp.stats import DsspStats
from repro.errors import CacheError

__all__ = ["DsspCluster", "ShardedDsspCluster", "replay_trace_counts"]


class DsspCluster:
    """A fleet of DSSP nodes serving one client population.

    Args:
        nodes: Number of DSSP nodes.
        cache_capacity: Per-node cache capacity (None = unbounded).
        use_integrity_constraints: Passed through to every node's engine.
    """

    def __init__(
        self,
        nodes: int = 2,
        cache_capacity: int | None = None,
        use_integrity_constraints: bool = True,
        predicate_index: bool = False,
    ) -> None:
        if nodes < 1:
            raise CacheError("a cluster needs at least one node")
        self._use_constraints = use_integrity_constraints
        self.nodes = [
            DsspNode(
                cache_capacity=cache_capacity,
                use_integrity_constraints=use_integrity_constraints,
                predicate_index=predicate_index,
            )
            for _ in range(nodes)
        ]
        self._affinities: dict[str, TemplateAffinity] = {}

    def __len__(self) -> int:
        return len(self.nodes)

    # -- tenancy -------------------------------------------------------------

    def register_application(self, home: HomeServer) -> None:
        """Attach an application to every node."""
        for node in self.nodes:
            node.register_application(home)
        self._affinities[home.app_id] = TemplateAffinity(
            home.registry, use_integrity_constraints=self._use_constraints
        )

    # -- routing ---------------------------------------------------------------

    def node_for(self, client_id: int) -> DsspNode:
        """The node a client's requests land on (stable affinity)."""
        return self.nodes[client_id % len(self.nodes)]

    def query(self, envelope: QueryEnvelope, client_id: int = 0) -> QueryOutcome:
        """Serve a query at the client's node."""
        return self.node_for(client_id).query(envelope)

    def update(
        self, envelope: UpdateEnvelope, client_id: int = 0
    ) -> UpdateOutcome:
        """Apply an update once; invalidate on nodes that may be affected.

        The client's node forwards to the home server; the completed update
        is then observed by every node whose per-template bucket index says
        it *can* hold an affected view (the paper's invalidation stream,
        minus provably pointless deliveries).  Nodes that hold nothing the
        update could touch would invalidate zero entries anyway, so the
        filter changes no counts — it only avoids charging them an
        invalidation pass.
        """
        origin = self.node_for(client_id)
        rows = origin.forward_update(envelope)
        invalidated = 0
        for node in self.nodes:
            if self._node_may_hold_affected(node, envelope):
                invalidated += node.invalidate_for(envelope)
        return UpdateOutcome(rows_affected=rows, invalidated=invalidated)

    def _node_may_hold_affected(
        self, node: DsspNode, envelope: UpdateEnvelope
    ) -> bool:
        """Can ``node``'s cache contain a view this update invalidates?

        Conservative by construction: a True is cheap (the node runs its
        engine and may still invalidate nothing); a False is only returned
        when the bucket index *proves* the node holds no affected entry —
        no resident buckets at all, or only template-visible buckets whose
        templates the update is statically independent of.
        """
        bucket_names = node.cache.bucket_names(envelope.app_id)
        if not bucket_names:
            return False
        if envelope.template_name is None:
            return True  # blind update: every resident entry must go
        affinity = self._affinities.get(envelope.app_id)
        if affinity is None:
            return True
        affected = affinity.affected_queries(envelope.template_name)
        return any(
            name is None or name in affected for name in bucket_names
        )

    # -- aggregate bookkeeping ---------------------------------------------------

    def aggregate_stats(self) -> DsspStats:
        """Sum per-node counters into one fleet-wide view."""
        total = DsspStats()
        for node in self.nodes:
            total.merge(node.stats)
        return total

    def total_cached_views(self) -> int:
        """Number of views resident across the fleet."""
        return sum(len(node.cache) for node in self.nodes)

    def cold_start(self) -> None:
        """Cold-start every node."""
        for node in self.nodes:
            node.cold_start()


class ShardedDsspCluster:
    """A key-sharded DSSP fleet: one logical cache spread across N shards.

    Unlike :class:`DsspCluster` (client affinity, N copies of the hot
    working set), shards own disjoint regions of the *view key space* via
    a consistent-hash ring: each query template's views live on exactly
    one shard, so total capacity — and fleet hit rate under a bounded
    per-node cache — grows with the shard count instead of diluting.

    Updates are forwarded to the home once (by the shard owning the
    update's routing key) and then invalidated only on the shards that
    can hold affected views, computed from the same static template
    analysis the invalidation engines use (:mod:`repro.dssp.placement`).

    Args:
        nodes: Initial shard count (shards are named ``shard-0``…).
        cache_capacity: Per-shard cache capacity (None = unbounded).
        use_integrity_constraints: Passed to every shard's engine *and*
            the affinity analysis, so recipient sets are exact.
        vnodes: Virtual nodes per shard on the placement ring.
    """

    def __init__(
        self,
        nodes: int = 2,
        cache_capacity: int | None = None,
        use_integrity_constraints: bool = True,
        vnodes: int = DEFAULT_VNODES,
        predicate_index: bool = False,
    ) -> None:
        if nodes < 1:
            raise CacheError("a cluster needs at least one shard")
        self._capacity = cache_capacity
        self._use_constraints = use_integrity_constraints
        self._predicate_index = predicate_index
        self.ring = HashRing(vnodes=vnodes)
        self._shards: dict[str, DsspNode] = {}
        self._homes: dict[str, HomeServer] = {}
        self._affinities: dict[str, TemplateAffinity] = {}
        self._blind_queries: dict[str, bool] = {}
        self._next_index = 0
        for _ in range(nodes):
            self._add_shard()

    def _add_shard(self) -> str:
        shard_id = f"shard-{self._next_index}"
        self._next_index += 1
        node = DsspNode(
            cache_capacity=self._capacity,
            use_integrity_constraints=self._use_constraints,
            predicate_index=self._predicate_index,
        )
        for home in self._homes.values():
            node.register_application(home)
        self._shards[shard_id] = node
        self.ring.add_node(shard_id)
        return shard_id

    def __len__(self) -> int:
        return len(self._shards)

    @property
    def shard_ids(self) -> tuple[str, ...]:
        """Current membership, in join order."""
        return tuple(self._shards)

    def shard(self, shard_id: str) -> DsspNode:
        """The node behind one shard id."""
        try:
            return self._shards[shard_id]
        except KeyError:
            raise CacheError(f"no shard {shard_id!r} in the cluster") from None

    # -- tenancy -------------------------------------------------------------

    def register_application(self, home: HomeServer) -> None:
        """Attach an application to every shard."""
        for node in self._shards.values():
            node.register_application(home)
        self._homes[home.app_id] = home
        self._affinities[home.app_id] = TemplateAffinity(
            home.registry, use_integrity_constraints=self._use_constraints
        )
        self._blind_queries[home.app_id] = policy_allows_blind_queries(
            home.policy
        )

    # -- routing ---------------------------------------------------------------

    def shard_for_query(self, envelope: QueryEnvelope) -> str:
        """The shard owning this query's placement key."""
        return self.ring.owner(query_placement_key(envelope))

    def query(self, envelope: QueryEnvelope, client_id: int = 0) -> QueryOutcome:
        """Serve a query at the owning shard (``client_id`` is ignored:
        placement is by key, not by client)."""
        return self._shards[self.shard_for_query(envelope)].query(envelope)

    def shards_for_update(self, envelope: UpdateEnvelope) -> tuple[str, ...]:
        """Shards whose caches the update's invalidation must visit."""
        affinity = self._affinities.get(envelope.app_id)
        if affinity is None:
            return self.shard_ids
        recipients = shards_for_update(
            envelope,
            self.ring,
            affinity,
            self._blind_queries.get(envelope.app_id, True),
        )
        if recipients is None:
            return self.shard_ids
        return tuple(s for s in self._shards if s in recipients)

    def update(
        self, envelope: UpdateEnvelope, client_id: int = 0
    ) -> UpdateOutcome:
        """Apply an update once; invalidate only where affected views live."""
        origin = self._shards[self.ring.owner(update_routing_key(envelope))]
        rows = origin.forward_update(envelope)
        invalidated = 0
        for shard_id in self.shards_for_update(envelope):
            invalidated += self._shards[shard_id].invalidate_for(envelope)
        return UpdateOutcome(rows_affected=rows, invalidated=invalidated)

    # -- membership ---------------------------------------------------------------

    def join(self) -> str:
        """Add a shard; drop entries other shards no longer own (cold re-fill).

        Consistent hashing moves only the keys the new shard now owns; the
        displaced entries are dropped (they refill on demand) rather than
        migrated — a cache can always be rebuilt from the home, and a
        dropped entry is merely a future miss, never a staleness risk.
        """
        shard_id = self._add_shard()
        self._drop_misplaced()
        return shard_id

    def leave(self, shard_id: str) -> None:
        """Remove a shard; its key range reassigns to the survivors.

        The survivors start cold for the reassigned range (misses refill
        from the home).  Nothing else moves.
        """
        if shard_id not in self._shards:
            raise CacheError(f"no shard {shard_id!r} in the cluster")
        if len(self._shards) == 1:
            raise CacheError("cannot remove the last shard")
        self.ring.remove_node(shard_id)
        del self._shards[shard_id]

    def _drop_misplaced(self) -> None:
        for shard_id, node in self._shards.items():
            victims = [
                entry.key
                for app_id in self._homes
                for entry in node.cache.entries_for_app(app_id)
                if self.ring.owner(entry_placement_key(entry)) != shard_id
            ]
            node.cache.invalidate_many(victims)

    # -- aggregate bookkeeping ---------------------------------------------------

    def aggregate_stats(self) -> DsspStats:
        """Sum per-shard counters into one fleet-wide view."""
        total = DsspStats()
        for node in self._shards.values():
            total.merge(node.stats)
        return total

    def total_cached_views(self) -> int:
        """Number of views resident across the fleet."""
        return sum(len(node.cache) for node in self._shards.values())

    def cold_start(self) -> None:
        """Cold-start every shard."""
        for node in self._shards.values():
            node.cold_start()


def replay_trace_counts(
    cluster: DsspCluster,
    home: HomeServer,
    trace,
    *,
    clients: int = 4,
    pages: int | None = None,
) -> dict[str, int]:
    """Replay a recorded trace through an in-process cluster; return counts.

    This is the oracle's *reference replay path*: page ``p`` is issued by
    client ``p % clients``, which pins to node ``client % nodes`` — the
    identical affinity the networked chaos runner uses — so the resulting
    hit/miss/invalidation counts are directly comparable with a networked
    run over the same trace (the fault-free parity suite asserts equality).
    """
    trace.bind(home.registry)
    total_pages = pages if pages is not None else len(trace)
    queries = updates = 0
    for page_index in range(total_pages):
        client_id = page_index % clients
        for operation in trace.sample_page():
            bound = operation.bound
            if operation.is_update:
                level = home.policy.update_level(bound.template.name)
                cluster.update(home.codec.seal_update(bound, level), client_id)
                updates += 1
            else:
                level = home.policy.query_level(bound.template.name)
                cluster.query(home.codec.seal_query(bound, level), client_id)
                queries += 1
    stats = cluster.aggregate_stats()
    return {
        "pages": total_pages,
        "queries": queries,
        "updates": updates,
        "hits": stats.hits,
        "misses": stats.misses,
        "invalidations": stats.invalidations,
    }


def measure_cluster_behavior(
    cluster: DsspCluster,
    home: HomeServer,
    sampler,
    pages: int = 1500,
    clients: int = 64,
    seed: int = 0,
):
    """Cluster counterpart of ``measure_cache_behavior``.

    Pages are attributed to ``clients`` distinct client identities (round
    affinity decided per page, as a CDN request router would), so each
    node's cache warms only with its own share of the population.
    Returns a :class:`~repro.simulation.scalability.CacheBehavior` whose
    miss counts aggregate the whole fleet — the home server sees them all.
    """
    import random

    from repro.simulation.scalability import CacheBehavior

    cluster.cold_start()
    rng = random.Random(seed)
    queries = updates = 0
    for _ in range(pages):
        client_id = rng.randrange(clients)
        for operation in sampler.sample_page(rng):
            bound = operation.bound
            if operation.is_update:
                level = home.policy.update_level(bound.template.name)
                cluster.update(home.codec.seal_update(bound, level), client_id)
                updates += 1
            else:
                level = home.policy.query_level(bound.template.name)
                cluster.query(home.codec.seal_query(bound, level), client_id)
                queries += 1
    stats = cluster.aggregate_stats()
    return CacheBehavior(
        pages=pages,
        queries_per_page=queries / pages,
        hits_per_page=stats.hits / pages,
        misses_per_page=stats.misses / pages,
        updates_per_page=updates / pages,
        invalidations_per_update=(
            stats.invalidations / updates if updates else 0.0
        ),
    )
