"""Multi-node DSSP deployment (extension of the paper's evaluation).

The paper's architecture (Figure 1) places *many* DSSP nodes near clients —
"a DSSP node (because there are many of them) is close to the clients" —
but its evaluation uses a single node.  This module implements the
multi-node deployment the architecture implies:

* clients are partitioned across nodes by a stable hash (CDN-style
  affinity), so each node caches only its own clients' working set;
* queries are served by the client's node;
* updates are forwarded to the home server once, then the invalidation
  stream **fans out to every node** — each node runs its own invalidation
  engine over its own cache, exactly as the single-node DSSP does.

The interesting (and measured — see ``bench_extension_cluster.py``)
consequence: partitioning *dilutes* each node's cache, so total home-server
load rises with node count whenever the home server, not the DSSP, is the
bottleneck.  Sharing one logical cache is what the paper's scalability
argument actually relies on.
"""

from __future__ import annotations

from repro.crypto.envelope import QueryEnvelope, UpdateEnvelope
from repro.dssp.homeserver import HomeServer
from repro.dssp.proxy import DsspNode, QueryOutcome, UpdateOutcome
from repro.dssp.stats import DsspStats
from repro.errors import CacheError

__all__ = ["DsspCluster", "replay_trace_counts"]


class DsspCluster:
    """A fleet of DSSP nodes serving one client population.

    Args:
        nodes: Number of DSSP nodes.
        cache_capacity: Per-node cache capacity (None = unbounded).
        use_integrity_constraints: Passed through to every node's engine.
    """

    def __init__(
        self,
        nodes: int = 2,
        cache_capacity: int | None = None,
        use_integrity_constraints: bool = True,
    ) -> None:
        if nodes < 1:
            raise CacheError("a cluster needs at least one node")
        self.nodes = [
            DsspNode(
                cache_capacity=cache_capacity,
                use_integrity_constraints=use_integrity_constraints,
            )
            for _ in range(nodes)
        ]

    def __len__(self) -> int:
        return len(self.nodes)

    # -- tenancy -------------------------------------------------------------

    def register_application(self, home: HomeServer) -> None:
        """Attach an application to every node."""
        for node in self.nodes:
            node.register_application(home)

    # -- routing ---------------------------------------------------------------

    def node_for(self, client_id: int) -> DsspNode:
        """The node a client's requests land on (stable affinity)."""
        return self.nodes[client_id % len(self.nodes)]

    def query(self, envelope: QueryEnvelope, client_id: int = 0) -> QueryOutcome:
        """Serve a query at the client's node."""
        return self.node_for(client_id).query(envelope)

    def update(
        self, envelope: UpdateEnvelope, client_id: int = 0
    ) -> UpdateOutcome:
        """Apply an update once; invalidate on every node.

        The client's node forwards to the home server; the completed update
        is then observed by all nodes (the paper's invalidation stream),
        each invalidating its own cache.
        """
        origin = self.node_for(client_id)
        rows = origin.forward_update(envelope)
        invalidated = 0
        for node in self.nodes:
            invalidated += node.invalidate_for(envelope)
        return UpdateOutcome(rows_affected=rows, invalidated=invalidated)

    # -- aggregate bookkeeping ---------------------------------------------------

    def aggregate_stats(self) -> DsspStats:
        """Sum per-node counters into one fleet-wide view."""
        total = DsspStats()
        for node in self.nodes:
            total.merge(node.stats)
        return total

    def total_cached_views(self) -> int:
        """Number of views resident across the fleet."""
        return sum(len(node.cache) for node in self.nodes)

    def cold_start(self) -> None:
        """Cold-start every node."""
        for node in self.nodes:
            node.cold_start()


def replay_trace_counts(
    cluster: DsspCluster,
    home: HomeServer,
    trace,
    *,
    clients: int = 4,
    pages: int | None = None,
) -> dict[str, int]:
    """Replay a recorded trace through an in-process cluster; return counts.

    This is the oracle's *reference replay path*: page ``p`` is issued by
    client ``p % clients``, which pins to node ``client % nodes`` — the
    identical affinity the networked chaos runner uses — so the resulting
    hit/miss/invalidation counts are directly comparable with a networked
    run over the same trace (the fault-free parity suite asserts equality).
    """
    trace.bind(home.registry)
    total_pages = pages if pages is not None else len(trace)
    queries = updates = 0
    for page_index in range(total_pages):
        client_id = page_index % clients
        for operation in trace.sample_page():
            bound = operation.bound
            if operation.is_update:
                level = home.policy.update_level(bound.template.name)
                cluster.update(home.codec.seal_update(bound, level), client_id)
                updates += 1
            else:
                level = home.policy.query_level(bound.template.name)
                cluster.query(home.codec.seal_query(bound, level), client_id)
                queries += 1
    stats = cluster.aggregate_stats()
    return {
        "pages": total_pages,
        "queries": queries,
        "updates": updates,
        "hits": stats.hits,
        "misses": stats.misses,
        "invalidations": stats.invalidations,
    }


def measure_cluster_behavior(
    cluster: DsspCluster,
    home: HomeServer,
    sampler,
    pages: int = 1500,
    clients: int = 64,
    seed: int = 0,
):
    """Cluster counterpart of ``measure_cache_behavior``.

    Pages are attributed to ``clients`` distinct client identities (round
    affinity decided per page, as a CDN request router would), so each
    node's cache warms only with its own share of the population.
    Returns a :class:`~repro.simulation.scalability.CacheBehavior` whose
    miss counts aggregate the whole fleet — the home server sees them all.
    """
    import random

    from repro.simulation.scalability import CacheBehavior

    cluster.cold_start()
    rng = random.Random(seed)
    queries = updates = 0
    for _ in range(pages):
        client_id = rng.randrange(clients)
        for operation in sampler.sample_page(rng):
            bound = operation.bound
            if operation.is_update:
                level = home.policy.update_level(bound.template.name)
                cluster.update(home.codec.seal_update(bound, level), client_id)
                updates += 1
            else:
                level = home.policy.query_level(bound.template.name)
                cluster.query(home.codec.seal_query(bound, level), client_id)
                queries += 1
    stats = cluster.aggregate_stats()
    return CacheBehavior(
        pages=pages,
        queries_per_page=queries / pages,
        hits_per_page=stats.hits / pages,
        misses_per_page=stats.misses / pages,
        updates_per_page=updates / pages,
        invalidations_per_update=(
            stats.invalidations / updates if updates else 0.0
        ),
    )
