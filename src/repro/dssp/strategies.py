"""The four view-invalidation strategy classes as first-class objects.

Paper Section 2.2 defines a *view invalidation strategy* as a function
``S(U, Q, ...) → {I, DNI}`` whose arguments are limited by the information
class it belongs to:

* :class:`BlindStrategy` — sees nothing: always ``I``;
* :class:`TemplateInspectionStrategy` — sees the templates;
* :class:`StatementInspectionStrategy` — sees the bound statements;
* :class:`ViewInspectionStrategy` — additionally sees the cached result.

These are the *minimal-in-class* implementations this library realizes
(truly minimal strategies are uncomputable in general — the query/update
independence problem is undecidable, per Levy & Sagiv).  The production
cache path uses :class:`~repro.dssp.invalidation.InvalidationEngine`, which
fuses the same decision procedures with bucket-level short cuts; the test
suite asserts the engine's decisions coincide with these reference objects.

The class hierarchy realizes the paper's Figure 4 containments: each
strategy consults the weaker ones first and can only *refine* an ``I`` into
a ``DNI``, so invalidation sets shrink monotonically with information.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analysis.constraints import constraint_implies_no_effect
from repro.analysis.independence import statement_independent
from repro.dssp.view_checks import view_allows_skip
from repro.schema.schema import Schema
from repro.sql.ast import Delete, Insert, Select, Update
from repro.storage.rows import ResultSet
from repro.templates.classify import is_ignorable

__all__ = [
    "BlindStrategy",
    "Decision",
    "InvalidationInput",
    "StatementInspectionStrategy",
    "TemplateInspectionStrategy",
    "ViewInspectionStrategy",
]


class Decision(enum.Enum):
    """The two outcomes of a view invalidation strategy."""

    INVALIDATE = "I"
    DO_NOT_INVALIDATE = "DNI"


@dataclass(frozen=True)
class InvalidationInput:
    """Everything a (maximally informed) strategy could be given.

    Strategies read only the fields their class permits; constructing the
    full record is the caller's job, access discipline is the strategy's.

    Attributes:
        update_template: The update's template statement (with parameters).
        query_template: The query's template statement (with parameters).
        update_statement: The bound update (parameters substituted).
        query_statement: The bound query.
        view: The cached plaintext result of ``query_statement``.
    """

    update_template: Insert | Delete | Update
    query_template: Select
    update_statement: Insert | Delete | Update | None = None
    query_statement: Select | None = None
    view: ResultSet | None = None


class BlindStrategy:
    """Sees nothing; correctness forces invalidating everything.

    This is the (unique, hence minimal) correct blind strategy the paper
    describes: "invalidate all cached query results on any update".
    """

    name = "MBS"

    def __init__(self, schema: Schema) -> None:
        self.schema = schema

    def decide(self, item: InvalidationInput) -> Decision:
        """Always ``I``."""
        return Decision.INVALIDATE


class TemplateInspectionStrategy(BlindStrategy):
    """Sees the templates; skips pairs provably independent at that level.

    Uses Lemma 1 (ignorability) and, optionally, the Section 4.5
    integrity-constraint rules — which the paper treats as insensitive and
    therefore available to the DSSP.
    """

    name = "MTIS"

    def __init__(self, schema: Schema, use_integrity_constraints: bool = True):
        super().__init__(schema)
        self.use_integrity_constraints = use_integrity_constraints

    def decide(self, item: InvalidationInput) -> Decision:
        """``DNI`` iff no instance of U can ever affect an instance of Q."""
        if is_ignorable(self.schema, item.update_template, item.query_template):
            return Decision.DO_NOT_INVALIDATE
        if self.use_integrity_constraints and constraint_implies_no_effect(
            self.schema, item.update_template, item.query_template
        ):
            return Decision.DO_NOT_INVALIDATE
        return super().decide(item)


class StatementInspectionStrategy(TemplateInspectionStrategy):
    """Additionally sees parameters; refines via interval independence."""

    name = "MSIS"

    def decide(self, item: InvalidationInput) -> Decision:
        """``DNI`` if templates or bound statements prove independence."""
        if super().decide(item) is Decision.DO_NOT_INVALIDATE:
            return Decision.DO_NOT_INVALIDATE
        if item.update_statement is not None and item.query_statement is not None:
            if statement_independent(
                self.schema, item.update_statement, item.query_statement
            ):
                return Decision.DO_NOT_INVALIDATE
        return Decision.INVALIDATE


class ViewInspectionStrategy(StatementInspectionStrategy):
    """Additionally sees the cached result; refines via view checks."""

    name = "MVIS"

    def decide(self, item: InvalidationInput) -> Decision:
        """``DNI`` if any weaker level, or the view contents, prove safety."""
        if super().decide(item) is Decision.DO_NOT_INVALIDATE:
            return Decision.DO_NOT_INVALIDATE
        if (
            item.update_statement is not None
            and item.query_statement is not None
            and item.view is not None
        ):
            if view_allows_skip(
                self.schema,
                item.update_statement,
                item.query_statement,
                item.view,
            ):
                return Decision.DO_NOT_INVALIDATE
        return Decision.INVALIDATE
