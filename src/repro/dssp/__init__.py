"""The Database Scalability Service Provider runtime (paper Figure 2).

* :class:`~repro.dssp.cache.ViewCache` — the DSSP's store of (possibly
  encrypted) cached query results, keyed exactly as footnote 3 prescribes.
* :mod:`~repro.dssp.invalidation` — the four minimal invalidation strategy
  classes (MBS, MTIS, MSIS, MVIS) and the mixed-strategy engine that
  dispatches per update/query pair on the information actually visible.
* :class:`~repro.dssp.homeserver.HomeServer` — the application's home
  organization: master database, update application, miss service.
* :class:`~repro.dssp.proxy.DsspNode` — ties cache + invalidation + home
  forwarding together behind the client-facing API.
"""

from repro.dssp.cache import CacheEntry, ViewCache
from repro.dssp.homeserver import HomeServer
from repro.dssp.invalidation import (
    InvalidationEngine,
    StrategyClass,
)
from repro.dssp.cluster import DsspCluster, ShardedDsspCluster
from repro.dssp.ring import HashRing
from repro.dssp.correctness import (
    CorrectnessReport,
    verify_invalidation_correctness,
)
from repro.dssp.predicate_index import PredicateIndexer
from repro.dssp.proxy import DsspNode
from repro.dssp.stats import DsspStats
from repro.dssp.strategies import (
    BlindStrategy,
    Decision,
    InvalidationInput,
    StatementInspectionStrategy,
    TemplateInspectionStrategy,
    ViewInspectionStrategy,
)

__all__ = [
    "BlindStrategy",
    "CacheEntry",
    "CorrectnessReport",
    "Decision",
    "DsspCluster",
    "DsspNode",
    "DsspStats",
    "HashRing",
    "HomeServer",
    "InvalidationEngine",
    "InvalidationInput",
    "PredicateIndexer",
    "ShardedDsspCluster",
    "StatementInspectionStrategy",
    "StrategyClass",
    "TemplateInspectionStrategy",
    "ViewCache",
    "ViewInspectionStrategy",
    "verify_invalidation_correctness",
]
