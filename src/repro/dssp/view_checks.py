"""View-inspection refinements (the VIS extra over SIS).

Given a bound update, a cached query's bound statement, and the *plaintext*
cached result (visible only at ``view`` exposure), these checks soundly
refine an "invalidate" decision to "do not invalidate" in exactly the
situations the paper's Section 4.4 counter-examples describe:

* **Deletion** — the result preserves all of the deletion's predicate
  columns, and no result row satisfies the predicate: nothing cached
  derives from a deleted row.  (Sound for top-k too: removing rows outside
  the retained prefix cannot change the prefix.)
* **Modification** — the result preserves the update's key columns, no
  result row matches the key, and the SET values falsify one of the
  query's local predicates on a modified column: the row was absent and
  cannot enter.
* **Insertion vs MIN/MAX** — a single-table ``MIN``/``MAX`` view bounds
  the inserted value away from changing the aggregate.
* **Insertion vs top-k** — the view is full (k rows) and the inserted
  row's order-by key falls strictly beyond the boundary row.

Every check errs toward invalidation; a ``False`` answer never implies the
view actually changed.
"""

from __future__ import annotations

from repro.schema.schema import Schema
from repro.sql.ast import (
    Aggregate,
    AggregateFunc,
    ColumnRef,
    Comparison,
    Delete,
    Insert,
    Literal,
    Select,
    Star,
    Update,
)
from repro.storage.rows import ResultSet

__all__ = ["view_allows_skip"]


def view_allows_skip(
    schema: Schema,
    update: Insert | Delete | Update,
    query: Select,
    view: ResultSet,
) -> bool:
    """True if inspecting the cached result proves no invalidation is needed."""
    if isinstance(update, Delete):
        return _deletion_skip(schema, update, query, view)
    if isinstance(update, Update):
        return _modification_skip(schema, update, query, view)
    return _insertion_skip(schema, update, query, view)


# -- column mapping ---------------------------------------------------------------


def _result_positions_for(
    schema: Schema, query: Select, table: str
) -> dict[str, int] | None:
    """Map ``column name → result position`` for the given base table.

    Returns None when the mapping is unreliable (aggregated results, or the
    table bound more than once).
    """
    if query.has_aggregate() or query.group_by:
        return None
    bindings = [ref for ref in query.tables if ref.name == table]
    if len(bindings) != 1:
        return None
    binding = bindings[0].binding
    multi = len(query.tables) > 1
    positions: dict[str, int] = {}
    index = 0
    for item in query.items:
        if isinstance(item, Star):
            for table_ref in query.tables:
                for column in schema.table(table_ref.name).columns:
                    if table_ref.binding == binding:
                        positions.setdefault(column.name, index)
                    index += 1
        elif isinstance(item, ColumnRef):
            owner = item.table
            if owner is None and not multi:
                owner = binding
            if owner is None:
                owner = _owning_binding(schema, query, item)
            if owner == binding:
                positions.setdefault(item.column, index)
            index += 1
        else:  # pragma: no cover - aggregates excluded above
            index += 1
    return positions


def _owning_binding(schema: Schema, query: Select, ref: ColumnRef) -> str | None:
    owners = [
        table_ref.binding
        for table_ref in query.tables
        if schema.table(table_ref.name).has_column(ref.column)
    ]
    if len(owners) == 1:
        return owners[0]
    return None


def _predicate_columns(where: tuple[Comparison, ...]) -> set[str] | None:
    """Columns used in attribute-vs-constant conjuncts; None if joins appear."""
    columns: set[str] = set()
    for comparison in where:
        if comparison.is_join():
            return None
        for ref in comparison.column_refs():
            columns.add(ref.column)
    return columns


_MISSING = object()


def _project_side(value, positions: dict[str, int], row: tuple):
    if isinstance(value, Literal):
        return value.value
    if isinstance(value, ColumnRef):
        position = positions.get(value.column)
        if position is None:
            return _MISSING
        return row[position]
    return _MISSING  # pragma: no cover - parameters are bound by now


# -- deletion ------------------------------------------------------------------------


def _deletion_skip(
    schema: Schema, update: Delete, query: Select, view: ResultSet
) -> bool:
    needed = _predicate_columns(update.where)
    if needed is None:
        return False
    positions = _result_positions_for(schema, query, update.table)
    if positions is None or not needed <= positions.keys():
        return False
    return not any(
        _strictly_satisfies(update.where, positions, row) for row in view.rows
    )


def _strictly_satisfies(
    where: tuple[Comparison, ...], positions: dict[str, int], row: tuple
) -> bool:
    """Like :func:`_row_satisfies` but requires evaluability of every side."""
    for comparison in where:
        left = _project_side(comparison.left, positions, row)
        right = _project_side(comparison.right, positions, row)
        if left is _MISSING or right is _MISSING:
            return True  # conservative: might satisfy
        if not comparison.op.holds(left, right):
            return False
    return True


# -- modification ----------------------------------------------------------------------


def _modification_skip(
    schema: Schema, update: Update, query: Select, view: ResultSet
) -> bool:
    needed = _predicate_columns(update.where)
    if needed is None:
        return False
    positions = _result_positions_for(schema, query, update.table)
    if positions is None or not needed <= positions.keys():
        return False
    touched = any(
        _strictly_satisfies(update.where, positions, row) for row in view.rows
    )
    if touched:
        return False  # the modified row contributes to the view: invalidate
    # Absent row can only enter if its post-update values satisfy the
    # query's local predicates on the modified columns.
    new_values = {
        column: value.value  # type: ignore[union-attr]
        for column, value in update.assignments
    }
    for comparison in query.where:
        if comparison.is_join():
            continue
        verdict = _evaluates_false_under(comparison, new_values)
        if verdict:
            return True
    return False


def _evaluates_false_under(comparison: Comparison, values: dict[str, object]) -> bool:
    left = _value_under(comparison.left, values)
    right = _value_under(comparison.right, values)
    if left is _MISSING or right is _MISSING:
        return False
    return not comparison.op.holds(left, right)  # type: ignore[arg-type]


def _value_under(value, assignments: dict[str, object]):
    if isinstance(value, Literal):
        return value.value
    if isinstance(value, ColumnRef) and value.column in assignments:
        return assignments[value.column]
    return _MISSING


# -- insertion ---------------------------------------------------------------------------


def _insertion_skip(
    schema: Schema, update: Insert, query: Select, view: ResultSet
) -> bool:
    if len(query.tables) != 1 or query.tables[0].name != update.table:
        return False
    row_values = dict(
        zip(update.columns, (v.value for v in update.values))  # type: ignore[union-attr]
    )
    if _aggregate_bound_skip(query, view, row_values):
        return True
    return _top_k_skip(query, view, row_values)


def _aggregate_bound_skip(
    query: Select, view: ResultSet, row_values: dict
) -> bool:
    """MIN/MAX views bound the inserted value away from mattering."""
    if query.group_by or len(query.items) != 1 or not view.rows:
        return False
    item = query.items[0]
    if not isinstance(item, Aggregate) or isinstance(item.argument, Star):
        return False
    if item.func not in (AggregateFunc.MIN, AggregateFunc.MAX):
        return False
    column = item.argument.column
    if column not in row_values:
        return False
    inserted = row_values[column]
    bound = view.rows[0][0]
    if inserted is None:
        return True  # NULLs are ignored by MIN/MAX
    if bound is None:
        return False  # aggregate over empty/NULL data: anything may change it
    if type(inserted) is str and type(bound) is not str:
        return False
    if item.func is AggregateFunc.MAX:
        return inserted <= bound  # type: ignore[operator]
    return inserted >= bound  # type: ignore[operator]


def _top_k_skip(query: Select, view: ResultSet, row_values: dict) -> bool:
    """A full top-k view whose boundary strictly dominates the new row."""
    if query.limit is None or not query.order_by or len(query.order_by) != 1:
        return False
    if query.has_aggregate() or query.group_by:
        return False
    if not isinstance(query.limit, int) or len(view.rows) < query.limit:
        return False
    order = query.order_by[0]
    column = order.column.column
    if column not in row_values:
        return False
    try:
        position = list(view.columns).index(order.column.qualified())
    except ValueError:
        try:
            position = list(view.columns).index(column)
        except ValueError:
            return False
    inserted = row_values[column]
    boundary = view.rows[-1][position]
    if inserted is None or boundary is None:
        return False
    if isinstance(inserted, str) != isinstance(boundary, str):
        return False
    if order.descending:
        return inserted < boundary  # type: ignore[operator]
    return inserted > boundary  # type: ignore[operator]
