"""The DSSP node: cache + invalidation + home forwarding (paper Figure 2).

One :class:`DsspNode` serves many applications; each application registers
with its (public) template registry and its home server.  Clients talk to
the node through sealed envelopes produced by their application's
:class:`~repro.crypto.envelope.EnvelopeCodec`; the node itself never holds
keys.

The ``query``/``update`` methods also report *where* the work happened
(cache hit vs home round trip) so the scalability simulator can attach
realistic service times and network delays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.crypto.envelope import QueryEnvelope, ResultEnvelope, UpdateEnvelope
from repro.dssp.cache import ViewCache
from repro.dssp.homeserver import HomeServer
from repro.dssp.invalidation import InvalidationEngine
from repro.dssp.predicate_index import PredicateIndexer
from repro.dssp.stats import DsspStats
from repro.errors import CacheError, UnknownApplicationError
from repro.obs.trace import span as trace_span
from repro.templates.registry import TemplateRegistry

__all__ = ["DsspNode", "QueryOutcome", "UpdateOutcome"]


@dataclass(frozen=True)
class QueryOutcome:
    """Result of a query through the DSSP, with provenance for the simulator."""

    result: ResultEnvelope
    cache_hit: bool


@dataclass(frozen=True)
class UpdateOutcome:
    """Result of an update through the DSSP."""

    rows_affected: int
    invalidated: int


@dataclass
class _Tenant:
    engine: InvalidationEngine
    #: None for remote tenants: the application's home lives across the
    #: network and miss/update forwarding is the service layer's job.
    home: HomeServer | None = None


class DsspNode:
    """A shared third-party cache node serving multiple applications."""

    def __init__(
        self,
        cache_capacity: int | None = None,
        use_integrity_constraints: bool = True,
        equality_only_independence: bool = False,
        predicate_index: bool = False,
    ) -> None:
        self.stats = DsspStats()
        self.cache = ViewCache(
            capacity=cache_capacity,
            stats=self.stats,
            predicate_index=predicate_index,
        )
        self._use_constraints = use_integrity_constraints
        self._equality_only = equality_only_independence
        self._predicate_index = predicate_index
        self._tenants: dict[str, _Tenant] = {}

    # -- tenancy -------------------------------------------------------------

    def register_application(
        self, home: HomeServer, registry: TemplateRegistry | None = None
    ) -> None:
        """Attach an application: its home server and public template set."""
        if home.app_id in self._tenants:
            raise CacheError(f"application {home.app_id!r} already registered")
        resolved = registry or home.registry
        engine = self._build_engine(resolved)
        if self._predicate_index:
            self.cache.register_indexer(home.app_id, PredicateIndexer(resolved))
        self._tenants[home.app_id] = _Tenant(engine=engine, home=home)

    def register_remote(self, app_id: str, registry: TemplateRegistry) -> None:
        """Attach an application whose home server is across the network.

        Only the public template set is needed: the node can probe and
        invalidate its cache, while the service layer forwards misses and
        updates to the remote home and admits results via :meth:`admit`.
        """
        if app_id in self._tenants:
            raise CacheError(f"application {app_id!r} already registered")
        if self._predicate_index:
            self.cache.register_indexer(app_id, PredicateIndexer(registry))
        self._tenants[app_id] = _Tenant(engine=self._build_engine(registry))

    def is_registered(self, app_id: str) -> bool:
        """True if the application is already a tenant of this node."""
        return app_id in self._tenants

    def _build_engine(self, registry: TemplateRegistry) -> InvalidationEngine:
        return InvalidationEngine(
            registry,
            use_integrity_constraints=self._use_constraints,
            equality_only_independence=self._equality_only,
            predicate_index=self._predicate_index,
        )

    def _tenant(self, app_id: str) -> _Tenant:
        try:
            return self._tenants[app_id]
        except KeyError:
            raise UnknownApplicationError(app_id) from None

    def _local_home(self, app_id: str) -> HomeServer:
        tenant = self._tenant(app_id)
        if tenant.home is None:
            raise CacheError(
                f"application {app_id!r} is remote: no in-process home server"
            )
        return tenant.home

    # -- client-facing API -----------------------------------------------------

    def query(self, envelope: QueryEnvelope) -> QueryOutcome:
        """Serve a query: cache lookup, else forward to the home server."""
        cached = self.lookup(envelope)
        if cached is not None:
            return QueryOutcome(result=cached, cache_hit=True)
        return QueryOutcome(result=self.fill(envelope), cache_hit=False)

    def update(self, envelope: UpdateEnvelope) -> UpdateOutcome:
        """Route an update to the home server, then invalidate.

        Matches the paper's flow: all updates go to the home organization
        via the DSSP; the DSSP monitors completed updates and invalidates
        cached results as needed — the home organization plays no part in
        invalidation decisions.
        """
        rows = self.forward_update(envelope)
        invalidated = self.invalidate_for(envelope)
        return UpdateOutcome(rows_affected=rows, invalidated=invalidated)

    # -- split-phase API (used by the discrete-event simulator) ---------------------
    #
    # The simulator needs to attach distinct delays to the lookup, the WAN
    # hop, the home service, and the invalidation pass, so it drives these
    # phases separately.  ``query`` / ``update`` above compose them.

    def lookup(self, envelope: QueryEnvelope) -> ResultEnvelope | None:
        """Phase 1 of a query: cache probe.  None means miss (go to home)."""
        self._tenant(envelope.app_id)  # validate tenancy
        with trace_span("dssp.cache_lookup") as lookup_span:
            started = time.perf_counter()
            entry = self.cache.get(envelope.cache_key)
            self.stats.lookup_time_s += time.perf_counter() - started
            lookup_span.set("hit", entry is not None)
        if entry is not None:
            self.stats.hits += 1
            return entry.result
        self.stats.misses += 1
        return None

    def fill(self, envelope: QueryEnvelope) -> ResultEnvelope:
        """Phase 2 of a missed query: home round trip + cache admission."""
        result = self._local_home(envelope.app_id).serve_query(envelope)
        self.cache.put(envelope, result)
        return result

    def admit(self, envelope: QueryEnvelope, result: ResultEnvelope) -> None:
        """Cache a result fetched from a *remote* home (service layer)."""
        self._tenant(envelope.app_id)  # validate tenancy
        self.cache.put(envelope, result)

    def forward_update(self, envelope: UpdateEnvelope) -> int:
        """Phase 1 of an update: application at the home server."""
        return self._local_home(envelope.app_id).apply_update(envelope)

    def invalidate_for(self, envelope: UpdateEnvelope) -> int:
        """Phase 2 of an update: the DSSP-side invalidation pass."""
        tenant = self._tenant(envelope.app_id)
        with trace_span("dssp.invalidate") as invalidate_span:
            started = time.perf_counter()
            count = tenant.engine.process_update(
                envelope, self.cache, self.stats
            )
            self.stats.invalidation_time_s += time.perf_counter() - started
            invalidate_span.set("invalidated", count)
            invalidate_span.set("path", tenant.engine.last_path)
        return count

    # -- observability -------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe live view of this node: counters plus occupancy.

        Exposure-safe by construction: :meth:`DsspStats.to_dict` keys
        invalidations by template *name*, and nothing here touches sealed
        payloads or result rows.
        """
        return {
            "stats": self.stats.to_dict(),
            "cache_entries": len(self.cache),
            "applications": sorted(self._tenants),
        }

    # -- maintenance ---------------------------------------------------------------

    def cold_start(self) -> None:
        """Drop all cached data and counters (each experiment starts cold)."""
        self.cache.clear()
        self.stats.reset()
