"""Shard placement and invalidation affinity for the sharded DSSP tier.

A key-sharded fleet only works if everyone — the router in front of the
clients, every DSSP node, and the home server's fan-out — agrees on where
a view lives *without exchanging cache state*.  This module is that
agreement, built on two choices:

* **Placement is by template bucket, not by individual view.**  A
  template-visible query envelope is placed by
  ``bucket_key(app_id, template_name)``, so every cached instance of one
  query template lives on one shard.  The home server can then compute the
  exact recipient set of an invalidation push from static template
  analysis alone: an update to template ``U`` can only affect views on the
  shards owning the query templates ``U`` invalidates at template level.
* **Blind entries fall back to their cache key.**  A blind query envelope
  exposes no template, so its (encrypted) cache key is the placement key.
  Blind entries therefore scatter across shards — and because nobody can
  say where, any application whose exposure policy permits blind queries
  forces pushes to all shards (:func:`shards_for_update` returns None).

:class:`TemplateAffinity` mirrors the invalidation engine's template-level
decision (:meth:`InvalidationEngine._invalidates_at_template_level`) so
the recipient-set computation is *conservative with respect to the
engine*: any pair the engine would invalidate is in the affinity set.
Disabling integrity constraints here while the engine uses them only
enlarges the set — extra pushes, never missed ones.
"""

from __future__ import annotations

from repro.analysis.constraints import constraint_implies_no_effect
from repro.analysis.exposure import ExposureLevel, ExposurePolicy
from repro.crypto.envelope import QueryEnvelope, UpdateEnvelope
from repro.dssp.cache import CacheEntry
from repro.dssp.ring import HashRing
from repro.templates.classify import is_ignorable
from repro.templates.registry import TemplateRegistry

__all__ = [
    "TemplateAffinity",
    "bucket_key",
    "entry_placement_key",
    "policy_allows_blind_queries",
    "query_placement_key",
    "shards_for_update",
    "update_routing_key",
]


def bucket_key(app_id: str, template_name: str) -> str:
    """Placement key of one application's query-template bucket."""
    return f"{app_id}|{template_name}"


def query_placement_key(envelope: QueryEnvelope) -> str:
    """The key a query envelope is placed by on the ring.

    Template-visible envelopes collapse to their bucket key so a whole
    template's views share a shard; blind envelopes use the cache key.
    """
    if envelope.template_name is not None:
        return bucket_key(envelope.app_id, envelope.template_name)
    return envelope.cache_key


def entry_placement_key(entry: CacheEntry) -> str:
    """The key a resident cache entry is placed by (for re-sharding)."""
    if entry.template_name is not None:
        return bucket_key(entry.app_id, entry.template_name)
    return entry.key


def update_routing_key(envelope: UpdateEnvelope) -> str:
    """The key that picks which shard forwards an update to the home.

    Any deterministic spread works — the update is applied at the home
    either way — so the opaque id doubles as a load-spreading key.
    """
    return envelope.opaque_id


def policy_allows_blind_queries(policy: ExposurePolicy) -> bool:
    """True if any query template is blind (its views scatter by cache key)."""
    return any(
        level is ExposureLevel.BLIND for level in policy.query_levels.values()
    )


class TemplateAffinity:
    """Which query templates an update template can invalidate.

    The memoized answer is the template-level (TIS) decision of the
    invalidation engine, computed from the same static analysis —
    :func:`is_ignorable` plus (optionally) integrity constraints.

    Args:
        registry: The application's public template registry.
        use_integrity_constraints: Must not be *stronger* than the engines
            it filters for; equal (the default on both sides) gives exact
            recipient sets, weaker merely over-approximates.
    """

    def __init__(
        self,
        registry: TemplateRegistry,
        use_integrity_constraints: bool = True,
    ) -> None:
        self._registry = registry
        self._schema = registry.schema
        self._use_constraints = use_integrity_constraints
        self._memo: dict[str, frozenset[str]] = {}

    def affected_queries(self, update_name: str) -> frozenset[str]:
        """Query templates the engine would invalidate for ``update_name``."""
        cached = self._memo.get(update_name)
        if cached is not None:
            return cached
        update = self._registry.update(update_name).statement
        affected = []
        for query_template in self._registry.queries:
            query = query_template.select
            independent = is_ignorable(self._schema, update, query) or (
                self._use_constraints
                and constraint_implies_no_effect(self._schema, update, query)
            )
            if not independent:
                affected.append(query_template.name)
        result = frozenset(affected)
        self._memo[update_name] = result
        return result


def shards_for_update(
    envelope: UpdateEnvelope,
    ring: HashRing,
    affinity: TemplateAffinity,
    blind_queries_possible: bool,
) -> frozenset[str] | None:
    """Shards that may hold views affected by ``envelope``.

    Returns None when the set cannot be narrowed — a blind update exposes
    no template, and blind *query* entries are placed by opaque cache key
    so they may live anywhere — meaning "push to every shard".
    """
    if envelope.template_name is None or blind_queries_possible:
        return None
    affected = affinity.affected_queries(envelope.template_name)
    return frozenset(
        ring.owner(bucket_key(envelope.app_id, name)) for name in affected
    )
