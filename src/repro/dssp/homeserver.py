"""The application's home organization (paper Figure 2, right side).

The home server keeps the **master copies**: all updates are applied here
directly, and cache misses are answered here.  It holds the application's
keys, so it can open sealed envelopes the DSSP forwarded and seal results
according to the exposure policy before they travel back.
"""

from __future__ import annotations

from repro.analysis.exposure import ExposureLevel, ExposurePolicy
from repro.crypto.envelope import (
    EnvelopeCodec,
    QueryEnvelope,
    ResultEnvelope,
    UpdateEnvelope,
)
from repro.crypto.keyring import Keyring
from repro.errors import CacheError
from repro.obs.trace import span as trace_span
from repro.storage.database import Database
from repro.templates.registry import TemplateRegistry

__all__ = ["HomeServer"]


class HomeServer:
    """Master database + trusted crypto endpoint for one application.

    Args:
        app_id: Application identifier (shared with its DSSP tenancy).
        database: Master database (already loaded with initial data).
        registry: The application's template registry.
        policy: Exposure policy (decides how results are sealed).
        keyring: Application keys; generated if omitted.
    """

    def __init__(
        self,
        app_id: str,
        database: Database,
        registry: TemplateRegistry,
        policy: ExposurePolicy,
        keyring: Keyring | None = None,
    ) -> None:
        self.app_id = app_id
        self.database = database
        self.registry = registry
        self.policy = policy
        self.codec = EnvelopeCodec(keyring or Keyring(app_id))
        self.queries_served = 0
        self.updates_applied = 0

    # -- DSSP-facing API -----------------------------------------------------

    def serve_query(self, envelope: QueryEnvelope) -> ResultEnvelope:
        """Answer a cache miss: open, execute, seal per policy.

        The result is sealed at the *query template's* policy level, so the
        DSSP learns its contents only if the template is at ``view``.
        """
        with trace_span("home.crypto_open"):
            select = self.codec.open_query(envelope, self.registry)
        with trace_span("home.db_execute") as execute_span:
            result = self.database.execute(select)
            execute_span.set("rows", len(result))
        self.queries_served += 1
        level = self._result_level(envelope)
        with trace_span("home.crypto_seal", level=level.name.lower()):
            return self.codec.seal_result(result, level)

    def apply_update(self, envelope: UpdateEnvelope) -> int:
        """Apply an update to the master copy; returns rows affected."""
        with trace_span("home.crypto_open"):
            statement = self.codec.open_update(envelope, self.registry)
        with trace_span("home.db_apply") as apply_span:
            affected = self.database.apply(statement)
            apply_span.set("rows", affected)
        self.updates_applied += 1
        return affected

    def _result_level(self, envelope: QueryEnvelope) -> ExposureLevel:
        if envelope.template_name is not None:
            return self.policy.query_level(envelope.template_name)
        # Blind envelope: the template identity itself is hidden, so the
        # result must certainly not be exposed.
        if envelope.level is not ExposureLevel.BLIND:
            raise CacheError("non-blind envelope without template identity")
        return ExposureLevel.BLIND
