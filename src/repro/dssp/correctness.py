"""Executable correctness checking (paper Section 2.2).

The paper defines a view invalidation strategy as *correct* iff for any
query Q, database D, and update U::

    Q[D] != Q[D + U]  =>  S(U, Q, ...) = I

This module turns that definition into a harness a user can run against
any deployment — including one with a custom strategy or exposure policy:
replay a workload through the DSSP while shadowing the master database, and
after every update verify that every still-cached view equals fresh
re-execution.  Any stale survivor is a correctness violation of the
invalidation pipeline.

This is the library form of what the property-based test suite checks; it
exists so downstream users extending the strategies can validate their
changes the same way.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dssp.homeserver import HomeServer
from repro.dssp.proxy import DsspNode

__all__ = ["ConsistencyViolation", "CorrectnessReport", "verify_invalidation_correctness"]


@dataclass(frozen=True)
class ConsistencyViolation:
    """One stale cached view discovered after an update."""

    after_update_sql: str
    cache_key: str
    template_name: str | None
    cached_rows: tuple | None
    fresh_rows: tuple


@dataclass
class CorrectnessReport:
    """Outcome of a correctness verification run."""

    pages: int = 0
    queries: int = 0
    updates: int = 0
    checks: int = 0
    violations: list[ConsistencyViolation] = field(default_factory=list)

    @property
    def correct(self) -> bool:
        """True if no stale cached view was ever observed."""
        return not self.violations

    def summary(self) -> str:
        """One-line human-readable outcome."""
        status = "CORRECT" if self.correct else "VIOLATIONS FOUND"
        return (
            f"{status}: {self.pages} pages, {self.updates} updates, "
            f"{self.checks} post-update view checks, "
            f"{len(self.violations)} violation(s)"
        )


def verify_invalidation_correctness(
    node: DsspNode,
    home: HomeServer,
    sampler,
    pages: int = 300,
    seed: int = 0,
    max_violations: int = 10,
) -> CorrectnessReport:
    """Replay a workload, auditing the cache after every update.

    After each update, every surviving cache entry of the application is
    opened with the home server's codec and compared against fresh
    execution on the master database.  (The audit itself uses trusted keys
    — it plays the role of the application owner validating their DSSP.)

    Stops early once ``max_violations`` have been recorded.
    """
    node.cold_start()
    rng = random.Random(seed)
    report = CorrectnessReport()
    # Map cache keys back to the envelopes that created them so the audit
    # can re-open and re-execute each cached view.
    live_queries: dict[str, object] = {}

    for _ in range(pages):
        report.pages += 1
        for operation in sampler.sample_page(rng):
            bound = operation.bound
            if operation.is_update:
                level = home.policy.update_level(bound.template.name)
                envelope = home.codec.seal_update(bound, level)
                node.update(envelope)
                report.updates += 1
                _audit(node, home, live_queries, bound.sql, report)
                if len(report.violations) >= max_violations:
                    return report
            else:
                level = home.policy.query_level(bound.template.name)
                envelope = home.codec.seal_query(bound, level)
                node.query(envelope)
                live_queries[envelope.cache_key] = envelope
                report.queries += 1
    return report


def _audit(node, home, live_queries, update_sql, report) -> None:
    stale_keys = [
        key for key in live_queries if key not in node.cache
    ]
    for key in stale_keys:
        del live_queries[key]
    for key, envelope in live_queries.items():
        entry = node.cache.get(key)
        if entry is None:  # pragma: no cover - pruned above
            continue
        report.checks += 1
        cached = home.codec.open_result(entry.result)
        select = home.codec.open_query(envelope, home.registry)
        fresh = home.database.execute(select)
        if not cached.equivalent(fresh):
            report.violations.append(
                ConsistencyViolation(
                    after_update_sql=update_sql,
                    cache_key=key,
                    template_name=entry.template_name,
                    cached_rows=cached.rows,
                    fresh_rows=fresh.rows,
                )
            )
