"""Consistent-hash ring for sharded view placement.

The sharded DSSP tier places *view keys* (not clients) across nodes.  A
consistent-hash ring with virtual nodes gives the two properties that
matter for a cache tier:

* **balance** — each shard owns roughly ``1/N`` of the key space, because
  every shard contributes many pseudo-randomly scattered points;
* **minimal movement** — adding or removing one shard reassigns only the
  keys that the joining shard now owns (or the leaving shard owned);
  every other key keeps its owner, so the fleet's warm cache survives
  membership changes.

Hashing uses :mod:`hashlib` (BLAKE2b, 8-byte digest) so ownership is
deterministic across processes and Python invocations — the home server,
every DSSP node, and the load generator must all agree on who owns a key
without coordinating (``hash()`` would differ per process under hash
randomization).
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable

from repro.errors import CacheError

__all__ = ["HashRing"]

#: Default virtual-node count per shard.  64 points per shard keeps the
#: expected load imbalance under ~15% for small fleets while membership
#: changes stay cheap (re-sorting N*64 points).
DEFAULT_VNODES = 64


class HashRing:
    """A consistent-hash ring mapping string keys to shard ids.

    Args:
        nodes: Initial shard ids (order-insensitive: ownership depends
            only on the membership *set*).
        vnodes: Virtual nodes per shard; more points = better balance.
    """

    def __init__(
        self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise CacheError("a ring needs at least one virtual node per shard")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        #: Ring points sorted by hash; ``_hashes`` mirrors the hash column
        #: so ownership lookups are a single bisect.
        self._points: list[tuple[int, str]] = []
        self._hashes: list[int] = []
        for node_id in nodes:
            self.add_node(node_id)

    @staticmethod
    def _hash(data: str) -> int:
        digest = hashlib.blake2b(data.encode(), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    # -- membership ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    @property
    def node_ids(self) -> tuple[str, ...]:
        """Current membership, sorted for reproducible display."""
        return tuple(sorted(self._nodes))

    def add_node(self, node_id: str) -> None:
        """Add a shard to the ring.

        Raises:
            CacheError: if the shard is already a member.
        """
        if node_id in self._nodes:
            raise CacheError(f"shard {node_id!r} already on the ring")
        self._nodes.add(node_id)
        for index in range(self.vnodes):
            point = (self._hash(f"{node_id}#{index}"), node_id)
            at = bisect.bisect_left(self._points, point)
            self._points.insert(at, point)
            self._hashes.insert(at, point[0])

    def remove_node(self, node_id: str) -> None:
        """Remove a shard from the ring.

        Raises:
            CacheError: if the shard is not a member.
        """
        if node_id not in self._nodes:
            raise CacheError(f"shard {node_id!r} is not on the ring")
        self._nodes.discard(node_id)
        self._points = [p for p in self._points if p[1] != node_id]
        self._hashes = [h for h, _ in self._points]

    # -- ownership -------------------------------------------------------------

    def owner(self, key: str) -> str:
        """The shard owning ``key``: first ring point at or after its hash.

        Raises:
            CacheError: if the ring has no members.
        """
        if not self._points:
            raise CacheError("ownership lookup on an empty ring")
        index = bisect.bisect_right(self._hashes, self._hash(key))
        if index == len(self._points):
            index = 0  # wrap around the ring
        return self._points[index][1]

    def __repr__(self) -> str:
        return f"HashRing(nodes={len(self._nodes)}, vnodes={self.vnodes})"
