"""The DSSP's cache of (possibly encrypted) query results.

Entries are keyed by the envelope's cache key (paper footnote 3):

* plaintext statement SQL at ``stmt``/``view`` exposure,
* template name + deterministically-encrypted parameters at ``template``,
* deterministically-encrypted statement at ``blind``.

Each entry remembers the *visible* metadata of the query that produced it —
never more than its exposure level allows — because that is all the
invalidation engine may consult.  Entries are additionally bucketed by
visible template name so template-level invalidation decisions apply to a
whole bucket in one step.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.analysis.exposure import ExposureLevel
from repro.crypto.envelope import QueryEnvelope, ResultEnvelope
from repro.errors import CacheError
from repro.sql.ast import Select
from repro.storage.rows import ResultSet

__all__ = ["CacheEntry", "ViewCache"]


@dataclass(frozen=True)
class CacheEntry:
    """One cached view with its DSSP-visible metadata.

    Attributes:
        key: The envelope cache key.
        app_id: Owning application.
        level: The query's exposure level when cached.
        result: Sealed (or plaintext, at ``view``) result envelope.
        template_name: Visible at ``template`` exposure and above.
        statement: Bound SELECT AST, visible at ``stmt`` and above.
        view_rows: Plaintext result rows, visible only at ``view``.
    """

    key: str
    app_id: str
    level: ExposureLevel
    result: ResultEnvelope
    template_name: str | None = None
    statement: Select | None = None
    view_rows: ResultSet | None = None


class ViewCache:
    """In-memory materialized-view cache with template-name buckets."""

    def __init__(self, capacity: int | None = None) -> None:
        self._entries: dict[str, CacheEntry] = {}
        self._buckets: dict[tuple[str, str | None], set[str]] = {}
        self._capacity = capacity
        self._lru: dict[str, int] = {}
        self._clock = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # -- read path ----------------------------------------------------------

    def get(self, key: str) -> CacheEntry | None:
        """Look up an entry; None on miss.  Refreshes LRU position."""
        entry = self._entries.get(key)
        if entry is not None:
            self._clock += 1
            self._lru[key] = self._clock
        return entry

    def entries_for_app(self, app_id: str) -> list[CacheEntry]:
        """All entries belonging to one application."""
        return [e for e in self._entries.values() if e.app_id == app_id]

    def bucket(self, app_id: str, template_name: str | None) -> tuple[CacheEntry, ...]:
        """Entries of one app with the given visible template name.

        ``template_name=None`` selects the blind bucket (template hidden).
        """
        keys = self._buckets.get((app_id, template_name), ())
        return tuple(self._entries[k] for k in keys)

    def bucket_names(self, app_id: str) -> tuple[str | None, ...]:
        """Visible template names (and possibly None) with live entries."""
        return tuple(
            name
            for (app, name), keys in self._buckets.items()
            if app == app_id and keys
        )

    # -- write path -----------------------------------------------------------

    def put(self, envelope: QueryEnvelope, result: ResultEnvelope) -> CacheEntry:
        """Insert (or refresh) the cached result for a query envelope."""
        if result.app_id != envelope.app_id:
            raise CacheError("result/query envelope application mismatch")
        view_rows = result.plaintext if envelope.level is ExposureLevel.VIEW else None
        entry = CacheEntry(
            key=envelope.cache_key,
            app_id=envelope.app_id,
            level=envelope.level,
            result=result,
            template_name=envelope.template_name,
            statement=envelope.statement,
            view_rows=view_rows,
        )
        if entry.key not in self._entries:
            self._buckets.setdefault(
                (entry.app_id, entry.template_name), set()
            ).add(entry.key)
        self._entries[entry.key] = entry
        self._clock += 1
        self._lru[entry.key] = self._clock
        self._maybe_evict()
        return entry

    def invalidate(self, key: str) -> bool:
        """Drop one entry; True if it existed."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._lru.pop(key, None)
        bucket = self._buckets.get((entry.app_id, entry.template_name))
        if bucket is not None:
            bucket.discard(key)
        return True

    def invalidate_many(self, keys: Iterable[str]) -> int:
        """Drop several entries; returns how many existed."""
        return sum(1 for key in list(keys) if self.invalidate(key))

    def invalidate_bucket(self, app_id: str, template_name: str | None) -> int:
        """Drop a whole template bucket; returns the number of entries."""
        keys = self._buckets.get((app_id, template_name))
        if not keys:
            return 0
        return self.invalidate_many(tuple(keys))

    def invalidate_app(self, app_id: str) -> int:
        """Drop every entry of one application (blind strategy)."""
        keys = [k for k, e in self._entries.items() if e.app_id == app_id]
        return self.invalidate_many(keys)

    def clear(self) -> None:
        """Empty the cache entirely (cold start)."""
        self._entries.clear()
        self._buckets.clear()
        self._lru.clear()

    def _maybe_evict(self) -> None:
        if self._capacity is None:
            return
        while len(self._entries) > self._capacity:
            victim = min(self._lru, key=self._lru.get)  # least recently used
            self.invalidate(victim)
