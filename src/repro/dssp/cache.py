"""The DSSP's cache of (possibly encrypted) query results.

Entries are keyed by the envelope's cache key (paper footnote 3):

* plaintext statement SQL at ``stmt``/``view`` exposure,
* template name + deterministically-encrypted parameters at ``template``,
* deterministically-encrypted statement at ``blind``.

Each entry remembers the *visible* metadata of the query that produced it —
never more than its exposure level allows — because that is all the
invalidation engine may consult.  Entries are additionally bucketed by
visible template name so template-level invalidation decisions apply to a
whole bucket in one step.

Every operation is O(1) in the number of cached entries (amortized):

* recency is tracked by an :class:`~collections.OrderedDict`, so the LRU
  victim is ``popitem(last=False)`` rather than a full scan;
* a per-application key index makes ``invalidate_app`` /
  ``entries_for_app`` proportional to the app's entries, not the cache;
* buckets (and index sets) are pruned as they empty, so iteration never
  visits dead structure.

With ``predicate_index=True`` the cache additionally keys each entry by
the bound values of its statement's indexable selection attributes
(:mod:`repro.dssp.predicate_index`), so the invalidation engine can ask
for the *candidate* entries an update's pinned values could touch instead
of sweeping the whole bucket.  The posting lists are maintained through
the same ``_index``/``_unindex`` choke points as the buckets, so LRU
eviction, ``invalidate_app``, refreshes under a changed identity, and
shard re-placement all keep them exact.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.analysis.exposure import ExposureLevel
from repro.crypto.envelope import QueryEnvelope, ResultEnvelope
from repro.dssp.predicate_index import Attr, PredicateIndexer
from repro.dssp.stats import DsspStats
from repro.errors import CacheError
from repro.sql.ast import Scalar, Select
from repro.storage.rows import ResultSet

__all__ = ["CacheEntry", "ViewCache"]

#: Sentinel posting for a NULL-valued bound attribute (``None`` is a real
#: value only for the nulls set; it never keys ``by_value``).
_NULL = object()


@dataclass(frozen=True)
class CacheEntry:
    """One cached view with its DSSP-visible metadata.

    Attributes:
        key: The envelope cache key.
        app_id: Owning application.
        level: The query's exposure level when cached.
        result: Sealed (or plaintext, at ``view``) result envelope.
        template_name: Visible at ``template`` exposure and above.
        statement: Bound SELECT AST, visible at ``stmt`` and above.
        view_rows: Plaintext result rows, visible only at ``view``.
    """

    key: str
    app_id: str
    level: ExposureLevel
    result: ResultEnvelope
    template_name: str | None = None
    statement: Select | None = None
    view_rows: ResultSet | None = None


@dataclass
class _PredicateBucket:
    """Posting lists of one (app, template) bucket's predicate index."""

    #: Indexable attributes of the bucket's template (fixed per template).
    attrs: frozenset[Attr]
    #: (attr) → bound value → keys of entries pinned at that value.
    by_value: dict[Attr, dict[Scalar, set[str]]] = field(default_factory=dict)
    #: (attr) → keys whose bound value is NULL (always candidates).
    nulls: dict[Attr, set[str]] = field(default_factory=dict)
    #: Keys with no extractable statement (always candidates).
    always: set[str] = field(default_factory=set)
    #: Entries accounted for; must equal the bucket size for the index to
    #: be authoritative (a mid-life ``register_indexer`` call would leave
    #: earlier entries unaccounted — the lookup then declines to narrow).
    size: int = 0


class ViewCache:
    """In-memory materialized-view cache with template-name buckets.

    Args:
        capacity: Max resident entries (None = unbounded); LRU eviction.
        stats: Optional node counters; eviction work is recorded there.
        predicate_index: Maintain per-bucket posting lists of bound
            selection-attribute values (requires :meth:`register_indexer`
            per application before its entries are admitted).
    """

    def __init__(
        self,
        capacity: int | None = None,
        stats: DsspStats | None = None,
        predicate_index: bool = False,
    ) -> None:
        #: Entries in recency order: least recently used first.
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._buckets: dict[tuple[str, str | None], set[str]] = {}
        self._app_keys: dict[str, set[str]] = {}
        self._capacity = capacity
        self._stats = stats
        #: None = feature off; else (app, template) → posting lists.
        self._predicate: dict[tuple[str, str], _PredicateBucket] | None = (
            {} if predicate_index else None
        )
        self._indexers: dict[str, PredicateIndexer] = {}
        #: key → postings to retract on removal: None for always-candidates,
        #: else ((attr, value-or-_NULL), ...).
        self._postings: dict[str, tuple | None] = {}
        self._posting_count = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def predicate_index_enabled(self) -> bool:
        """True if this cache maintains the predicate index."""
        return self._predicate is not None

    def register_indexer(self, app_id: str, indexer: PredicateIndexer) -> None:
        """Attach one application's template analysis to the index."""
        self._indexers[app_id] = indexer

    def index_postings(self) -> int:
        """Live posting count of the predicate index (size gauge)."""
        return self._posting_count

    def register_metrics(self, registry) -> None:
        """Export live occupancy as callable gauges on ``registry``."""
        registry.gauge("cache.entries", lambda: len(self._entries))
        registry.gauge("cache.buckets", lambda: len(self._buckets))
        registry.gauge(
            "cache.capacity",
            lambda: -1 if self._capacity is None else self._capacity,
        )
        registry.gauge("cache.index_postings", lambda: self._posting_count)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # -- read path ----------------------------------------------------------

    def get(self, key: str) -> CacheEntry | None:
        """Look up an entry; None on miss.  Refreshes LRU position."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def entries_for_app(self, app_id: str) -> list[CacheEntry]:
        """All entries belonging to one application."""
        keys = self._app_keys.get(app_id)
        if not keys:
            return []
        return [self._entries[key] for key in keys]

    def bucket(self, app_id: str, template_name: str | None) -> tuple[CacheEntry, ...]:
        """Entries of one app with the given visible template name.

        ``template_name=None`` selects the blind bucket (template hidden).
        """
        keys = self._buckets.get((app_id, template_name), ())
        return tuple(self._entries[k] for k in keys)

    def bucket_names(self, app_id: str) -> tuple[str | None, ...]:
        """Visible template names (and possibly None) with live entries."""
        return tuple(
            name for (app, name) in self._buckets if app == app_id
        )

    def bucket_size(self, app_id: str, template_name: str | None) -> int:
        """Number of live entries in one bucket."""
        return len(self._buckets.get((app_id, template_name), ()))

    def predicate_candidates(
        self,
        app_id: str,
        template_name: str,
        pinned: dict[Attr, frozenset],
    ) -> list[CacheEntry] | None:
        """Entries of a bucket an update with these pins could affect.

        Returns None when the index cannot answer authoritatively (feature
        off, template refused, entries unaccounted, or no indexed attribute
        pinned by the update) — the caller must sweep the bucket.  A
        non-None answer is *exact* with respect to the engine's decision
        procedure: every omitted entry is provably independent of any
        update carrying these pins.
        """
        if self._predicate is None:
            return None
        keys = self._buckets.get((app_id, template_name))
        if not keys:
            return []
        posting = self._predicate.get((app_id, template_name))
        if posting is None or posting.size != len(keys):
            return None
        usable = [attr for attr in posting.attrs if attr in pinned]
        if not usable:
            return None
        candidates: set[str] | None = None
        for attr in usable:
            matched: set[str] = set()
            by_value = posting.by_value.get(attr)
            if by_value:
                for value in pinned[attr]:
                    hits = by_value.get(value)
                    if hits:
                        matched |= hits
            nulls = posting.nulls.get(attr)
            if nulls:
                matched |= nulls
            candidates = (
                matched if candidates is None else candidates & matched
            )
            if not candidates:
                break
        assert candidates is not None
        candidates |= posting.always
        return [self._entries[key] for key in candidates]

    # -- write path -----------------------------------------------------------

    def put(self, envelope: QueryEnvelope, result: ResultEnvelope) -> CacheEntry:
        """Insert (or refresh) the cached result for a query envelope."""
        if result.app_id != envelope.app_id:
            raise CacheError("result/query envelope application mismatch")
        view_rows = result.plaintext if envelope.level is ExposureLevel.VIEW else None
        entry = CacheEntry(
            key=envelope.cache_key,
            app_id=envelope.app_id,
            level=envelope.level,
            result=result,
            template_name=envelope.template_name,
            statement=envelope.statement,
            view_rows=view_rows,
        )
        old = self._entries.get(entry.key)
        if old is not None and (
            old.app_id != entry.app_id
            or old.template_name != entry.template_name
        ):
            # Refresh under a different visible identity (exposure policy
            # changed between runs): the old bucket must not keep pointing
            # at the key the entry moved away from.
            self._unindex(old)
            old = None
        if old is None:
            self._index(entry)
        self._entries[entry.key] = entry
        self._entries.move_to_end(entry.key)
        self._maybe_evict()
        return entry

    def invalidate(self, key: str) -> bool:
        """Drop one entry; True if it existed."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._unindex(entry)
        return True

    def invalidate_many(self, keys: Iterable[str]) -> int:
        """Drop several entries; returns how many existed."""
        return sum(1 for key in list(keys) if self.invalidate(key))

    def invalidate_bucket(self, app_id: str, template_name: str | None) -> int:
        """Drop a whole template bucket; returns the number of entries."""
        keys = self._buckets.get((app_id, template_name))
        if not keys:
            return 0
        return self.invalidate_many(tuple(keys))

    def invalidate_app(self, app_id: str) -> int:
        """Drop every entry of one application (blind strategy)."""
        keys = self._app_keys.get(app_id)
        if not keys:
            return 0
        return self.invalidate_many(tuple(keys))

    def clear(self) -> None:
        """Empty the cache entirely (cold start)."""
        self._entries.clear()
        self._buckets.clear()
        self._app_keys.clear()
        if self._predicate is not None:
            self._predicate.clear()
        self._postings.clear()
        self._posting_count = 0

    # -- index maintenance -----------------------------------------------------

    def _index(self, entry: CacheEntry) -> None:
        self._buckets.setdefault(
            (entry.app_id, entry.template_name), set()
        ).add(entry.key)
        self._app_keys.setdefault(entry.app_id, set()).add(entry.key)
        if self._predicate is not None and entry.template_name is not None:
            self._index_predicate(entry)

    def _index_predicate(self, entry: CacheEntry) -> None:
        indexer = self._indexers.get(entry.app_id)
        if indexer is None:
            return  # unaccounted: the size guard disables narrowing
        assert entry.template_name is not None
        attrs = indexer.query_attributes(entry.template_name)
        if attrs is None:
            return  # refused template (aggregation/group-by/...): sweep
        assert self._predicate is not None
        posting = self._predicate.get((entry.app_id, entry.template_name))
        if posting is None:
            posting = _PredicateBucket(attrs=attrs)
            self._predicate[(entry.app_id, entry.template_name)] = posting
        posting.size += 1
        values = (
            None
            if entry.statement is None
            else indexer.entry_values(entry.template_name, entry.statement)
        )
        if values is None:
            # Statement hidden (template-level entry) or unextractable:
            # the entry must be offered to the engine on every lookup.
            posting.always.add(entry.key)
            self._postings[entry.key] = None
            self._posting_count += 1
            return
        record: list[tuple[Attr, object]] = []
        for attr, bound_values in values.items():
            for value in bound_values:
                if value is None:
                    posting.nulls.setdefault(attr, set()).add(entry.key)
                    record.append((attr, _NULL))
                else:
                    posting.by_value.setdefault(attr, {}).setdefault(
                        value, set()
                    ).add(entry.key)
                    record.append((attr, value))
        self._postings[entry.key] = tuple(record)
        self._posting_count += len(record)

    def _unindex(self, entry: CacheEntry) -> None:
        bucket_id = (entry.app_id, entry.template_name)
        bucket = self._buckets.get(bucket_id)
        if bucket is not None:
            bucket.discard(entry.key)
            if not bucket:
                del self._buckets[bucket_id]
        app_keys = self._app_keys.get(entry.app_id)
        if app_keys is not None:
            app_keys.discard(entry.key)
            if not app_keys:
                del self._app_keys[entry.app_id]
        if self._postings:
            self._unindex_predicate(entry)

    def _unindex_predicate(self, entry: CacheEntry) -> None:
        if entry.key not in self._postings:
            return
        record = self._postings.pop(entry.key)
        assert self._predicate is not None
        bucket_id = (entry.app_id, entry.template_name)
        posting = self._predicate.get(bucket_id)
        if posting is None:  # pragma: no cover - postings imply a bucket
            return
        posting.size -= 1
        if record is None:
            posting.always.discard(entry.key)
            self._posting_count -= 1
        else:
            self._posting_count -= len(record)
            for attr, value in record:
                if value is _NULL:
                    nulls = posting.nulls.get(attr)
                    if nulls is not None:
                        nulls.discard(entry.key)
                        if not nulls:
                            del posting.nulls[attr]
                else:
                    by_value = posting.by_value.get(attr)
                    if by_value is not None:
                        keys = by_value.get(value)
                        if keys is not None:
                            keys.discard(entry.key)
                            if not keys:
                                del by_value[value]
                        if not by_value:
                            del posting.by_value[attr]
        if posting.size <= 0:
            del self._predicate[bucket_id]

    def _maybe_evict(self) -> None:
        if self._capacity is None or len(self._entries) <= self._capacity:
            return
        started = time.perf_counter() if self._stats is not None else 0.0
        evicted = 0
        while len(self._entries) > self._capacity:
            _, victim = self._entries.popitem(last=False)
            self._unindex(victim)
            evicted += 1
        if self._stats is not None:
            self._stats.evictions += evicted
            self._stats.eviction_time_s += time.perf_counter() - started
