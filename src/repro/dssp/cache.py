"""The DSSP's cache of (possibly encrypted) query results.

Entries are keyed by the envelope's cache key (paper footnote 3):

* plaintext statement SQL at ``stmt``/``view`` exposure,
* template name + deterministically-encrypted parameters at ``template``,
* deterministically-encrypted statement at ``blind``.

Each entry remembers the *visible* metadata of the query that produced it —
never more than its exposure level allows — because that is all the
invalidation engine may consult.  Entries are additionally bucketed by
visible template name so template-level invalidation decisions apply to a
whole bucket in one step.

Every operation is O(1) in the number of cached entries (amortized):

* recency is tracked by an :class:`~collections.OrderedDict`, so the LRU
  victim is ``popitem(last=False)`` rather than a full scan;
* a per-application key index makes ``invalidate_app`` /
  ``entries_for_app`` proportional to the app's entries, not the cache;
* buckets (and index sets) are pruned as they empty, so iteration never
  visits dead structure.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass

from repro.analysis.exposure import ExposureLevel
from repro.crypto.envelope import QueryEnvelope, ResultEnvelope
from repro.dssp.stats import DsspStats
from repro.errors import CacheError
from repro.sql.ast import Select
from repro.storage.rows import ResultSet

__all__ = ["CacheEntry", "ViewCache"]


@dataclass(frozen=True)
class CacheEntry:
    """One cached view with its DSSP-visible metadata.

    Attributes:
        key: The envelope cache key.
        app_id: Owning application.
        level: The query's exposure level when cached.
        result: Sealed (or plaintext, at ``view``) result envelope.
        template_name: Visible at ``template`` exposure and above.
        statement: Bound SELECT AST, visible at ``stmt`` and above.
        view_rows: Plaintext result rows, visible only at ``view``.
    """

    key: str
    app_id: str
    level: ExposureLevel
    result: ResultEnvelope
    template_name: str | None = None
    statement: Select | None = None
    view_rows: ResultSet | None = None


class ViewCache:
    """In-memory materialized-view cache with template-name buckets.

    Args:
        capacity: Max resident entries (None = unbounded); LRU eviction.
        stats: Optional node counters; eviction work is recorded there.
    """

    def __init__(
        self, capacity: int | None = None, stats: DsspStats | None = None
    ) -> None:
        #: Entries in recency order: least recently used first.
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._buckets: dict[tuple[str, str | None], set[str]] = {}
        self._app_keys: dict[str, set[str]] = {}
        self._capacity = capacity
        self._stats = stats

    def __len__(self) -> int:
        return len(self._entries)

    def register_metrics(self, registry) -> None:
        """Export live occupancy as callable gauges on ``registry``."""
        registry.gauge("cache.entries", lambda: len(self._entries))
        registry.gauge("cache.buckets", lambda: len(self._buckets))
        registry.gauge(
            "cache.capacity",
            lambda: -1 if self._capacity is None else self._capacity,
        )

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # -- read path ----------------------------------------------------------

    def get(self, key: str) -> CacheEntry | None:
        """Look up an entry; None on miss.  Refreshes LRU position."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def entries_for_app(self, app_id: str) -> list[CacheEntry]:
        """All entries belonging to one application."""
        keys = self._app_keys.get(app_id)
        if not keys:
            return []
        return [self._entries[key] for key in keys]

    def bucket(self, app_id: str, template_name: str | None) -> tuple[CacheEntry, ...]:
        """Entries of one app with the given visible template name.

        ``template_name=None`` selects the blind bucket (template hidden).
        """
        keys = self._buckets.get((app_id, template_name), ())
        return tuple(self._entries[k] for k in keys)

    def bucket_names(self, app_id: str) -> tuple[str | None, ...]:
        """Visible template names (and possibly None) with live entries."""
        return tuple(
            name for (app, name) in self._buckets if app == app_id
        )

    # -- write path -----------------------------------------------------------

    def put(self, envelope: QueryEnvelope, result: ResultEnvelope) -> CacheEntry:
        """Insert (or refresh) the cached result for a query envelope."""
        if result.app_id != envelope.app_id:
            raise CacheError("result/query envelope application mismatch")
        view_rows = result.plaintext if envelope.level is ExposureLevel.VIEW else None
        entry = CacheEntry(
            key=envelope.cache_key,
            app_id=envelope.app_id,
            level=envelope.level,
            result=result,
            template_name=envelope.template_name,
            statement=envelope.statement,
            view_rows=view_rows,
        )
        old = self._entries.get(entry.key)
        if old is not None and (
            old.app_id != entry.app_id
            or old.template_name != entry.template_name
        ):
            # Refresh under a different visible identity (exposure policy
            # changed between runs): the old bucket must not keep pointing
            # at the key the entry moved away from.
            self._unindex(old)
            old = None
        if old is None:
            self._index(entry)
        self._entries[entry.key] = entry
        self._entries.move_to_end(entry.key)
        self._maybe_evict()
        return entry

    def invalidate(self, key: str) -> bool:
        """Drop one entry; True if it existed."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._unindex(entry)
        return True

    def invalidate_many(self, keys: Iterable[str]) -> int:
        """Drop several entries; returns how many existed."""
        return sum(1 for key in list(keys) if self.invalidate(key))

    def invalidate_bucket(self, app_id: str, template_name: str | None) -> int:
        """Drop a whole template bucket; returns the number of entries."""
        keys = self._buckets.get((app_id, template_name))
        if not keys:
            return 0
        return self.invalidate_many(tuple(keys))

    def invalidate_app(self, app_id: str) -> int:
        """Drop every entry of one application (blind strategy)."""
        keys = self._app_keys.get(app_id)
        if not keys:
            return 0
        return self.invalidate_many(tuple(keys))

    def clear(self) -> None:
        """Empty the cache entirely (cold start)."""
        self._entries.clear()
        self._buckets.clear()
        self._app_keys.clear()

    # -- index maintenance -----------------------------------------------------

    def _index(self, entry: CacheEntry) -> None:
        self._buckets.setdefault(
            (entry.app_id, entry.template_name), set()
        ).add(entry.key)
        self._app_keys.setdefault(entry.app_id, set()).add(entry.key)

    def _unindex(self, entry: CacheEntry) -> None:
        bucket_id = (entry.app_id, entry.template_name)
        bucket = self._buckets.get(bucket_id)
        if bucket is not None:
            bucket.discard(entry.key)
            if not bucket:
                del self._buckets[bucket_id]
        app_keys = self._app_keys.get(entry.app_id)
        if app_keys is not None:
            app_keys.discard(entry.key)
            if not app_keys:
                del self._app_keys[entry.app_id]

    def _maybe_evict(self) -> None:
        if self._capacity is None or len(self._entries) <= self._capacity:
            return
        started = time.perf_counter() if self._stats is not None else 0.0
        evicted = 0
        while len(self._entries) > self._capacity:
            _, victim = self._entries.popitem(last=False)
            self._unindex(victim)
            evicted += 1
        if self._stats is not None:
            self._stats.evictions += evicted
            self._stats.eviction_time_s += time.perf_counter() - started
