"""Counters the DSSP keeps for evaluation and the scalability simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DsspStats"]


@dataclass
class DsspStats:
    """Operational counters of one DSSP node.

    ``hits``/``misses`` drive the scalability experiments: a miss costs a
    WAN round trip and home-server work, a hit is served locally.

    The ``*_time_s`` fields accumulate wall-clock time spent in the three
    DSSP-side hot paths (cache lookup, invalidation decisions, LRU
    eviction), so optimizations to those paths are directly measurable.
    """

    hits: int = 0
    misses: int = 0
    updates: int = 0
    invalidations: int = 0
    invalidation_checks: int = 0
    #: Statement-level decisions answered from the engine's memo instead of
    #: re-running interval reasoning.
    decision_memo_hits: int = 0
    #: Entries dropped by capacity eviction (not by invalidation).
    evictions: int = 0
    #: Predicate-index consultations during invalidation (one per
    #: stmt-visible bucket the engine processed with the index enabled).
    index_lookups: int = 0
    #: Entries the predicate index excused from a per-entry decision
    #: (bucket size minus candidate count, summed over indexed lookups).
    index_narrowed: int = 0
    #: Wall-clock seconds spent probing the cache (``DsspNode.lookup``).
    lookup_time_s: float = 0.0
    #: Wall-clock seconds spent deciding + applying invalidations.
    invalidation_time_s: float = 0.0
    #: Wall-clock seconds spent selecting and dropping LRU victims.
    eviction_time_s: float = 0.0
    per_query_invalidations: dict[str, int] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        """Total cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when idle)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    @property
    def decision_memo_rate(self) -> float:
        """Fraction of statement-level decisions served from the memo."""
        total = self.invalidation_checks + self.decision_memo_hits
        if not total:
            return 0.0
        return self.decision_memo_hits / total

    def record_invalidation(self, template_name: str | None, count: int = 1) -> None:
        """Count invalidated entries, attributed to a query template."""
        self.invalidations += count
        key = template_name or "<blind>"
        self.per_query_invalidations[key] = (
            self.per_query_invalidations.get(key, 0) + count
        )

    def to_dict(self) -> dict:
        """JSON-safe snapshot, including the derived rates.

        Keys are template *names* (or ``<blind>``) — never statement text
        or parameters, so the snapshot is safe to export at any exposure
        level.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
            "updates": self.updates,
            "invalidations": self.invalidations,
            "invalidation_checks": self.invalidation_checks,
            "decision_memo_hits": self.decision_memo_hits,
            "decision_memo_rate": self.decision_memo_rate,
            "evictions": self.evictions,
            "index_lookups": self.index_lookups,
            "index_narrowed": self.index_narrowed,
            "lookup_time_s": self.lookup_time_s,
            "invalidation_time_s": self.invalidation_time_s,
            "eviction_time_s": self.eviction_time_s,
            "per_query_invalidations": dict(
                sorted(self.per_query_invalidations.items())
            ),
        }

    def register_metrics(self, registry) -> None:
        """Export the live counters as callable gauges on ``registry``.

        Gauges sample this object at snapshot time, so the registry never
        needs to be threaded through the cache/invalidation hot paths.
        """
        registry.gauge("dssp.hits", lambda: self.hits)
        registry.gauge("dssp.misses", lambda: self.misses)
        registry.gauge("dssp.hit_rate", lambda: self.hit_rate)
        registry.gauge("dssp.updates", lambda: self.updates)
        registry.gauge("dssp.invalidations", lambda: self.invalidations)
        registry.gauge("dssp.evictions", lambda: self.evictions)
        registry.gauge("dssp.index_lookups", lambda: self.index_lookups)
        registry.gauge("dssp.index_narrowed", lambda: self.index_narrowed)
        registry.gauge(
            "dssp.decision_memo_rate", lambda: self.decision_memo_rate
        )

    def merge(self, other: "DsspStats") -> None:
        """Add another node's counters into this one (fleet aggregation)."""
        self.hits += other.hits
        self.misses += other.misses
        self.updates += other.updates
        self.invalidations += other.invalidations
        self.invalidation_checks += other.invalidation_checks
        self.decision_memo_hits += other.decision_memo_hits
        self.evictions += other.evictions
        self.index_lookups += other.index_lookups
        self.index_narrowed += other.index_narrowed
        self.lookup_time_s += other.lookup_time_s
        self.invalidation_time_s += other.invalidation_time_s
        self.eviction_time_s += other.eviction_time_s
        for name, count in other.per_query_invalidations.items():
            self.per_query_invalidations[name] = (
                self.per_query_invalidations.get(name, 0) + count
            )

    def reset(self) -> None:
        """Zero all counters (e.g. between benchmark phases)."""
        self.hits = 0
        self.misses = 0
        self.updates = 0
        self.invalidations = 0
        self.invalidation_checks = 0
        self.decision_memo_hits = 0
        self.evictions = 0
        self.index_lookups = 0
        self.index_narrowed = 0
        self.lookup_time_s = 0.0
        self.invalidation_time_s = 0.0
        self.eviction_time_s = 0.0
        self.per_query_invalidations.clear()
