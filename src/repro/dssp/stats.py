"""Counters the DSSP keeps for evaluation and the scalability simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DsspStats"]


@dataclass
class DsspStats:
    """Operational counters of one DSSP node.

    ``hits``/``misses`` drive the scalability experiments: a miss costs a
    WAN round trip and home-server work, a hit is served locally.
    """

    hits: int = 0
    misses: int = 0
    updates: int = 0
    invalidations: int = 0
    invalidation_checks: int = 0
    per_query_invalidations: dict[str, int] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        """Total cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when idle)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def record_invalidation(self, template_name: str | None, count: int = 1) -> None:
        """Count invalidated entries, attributed to a query template."""
        self.invalidations += count
        key = template_name or "<blind>"
        self.per_query_invalidations[key] = (
            self.per_query_invalidations.get(key, 0) + count
        )

    def reset(self) -> None:
        """Zero all counters (e.g. between benchmark phases)."""
        self.hits = 0
        self.misses = 0
        self.updates = 0
        self.invalidations = 0
        self.invalidation_checks = 0
        self.per_query_invalidations.clear()
