"""The mixed invalidation engine (paper Sections 2.2–2.3).

On every completed update the DSSP must invalidate all cached views that
might have changed.  How precisely it can decide depends on what it sees —
per pair, the *minimum* of the update envelope's and the cache entry's
exposure levels selects the strategy class (Figure 6):

* either side blind → **MBS** behaviour: invalidate unconditionally;
* template visible on both → **MTIS**: skip pairs the static analysis
  proves independent at template level (Lemma 1 + integrity constraints);
* both statements visible → **MSIS**: additionally skip when the bound
  statements are provably independent (interval reasoning on parameters);
* plaintext view also visible → **MVIS**: additionally skip when the view
  contents prove the update misses the cached rows.

The engine is *correct by construction* in the paper's sense: every skip is
justified by a sound proof of independence, so a view that actually changed
is always invalidated.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable

from repro.analysis.constraints import constraint_implies_no_effect
from repro.analysis.exposure import ExposureLevel
from repro.analysis.independence import statement_independent
from repro.crypto.envelope import UpdateEnvelope
from repro.dssp.cache import CacheEntry, ViewCache
from repro.dssp.predicate_index import update_pinned_values
from repro.dssp.stats import DsspStats
from repro.dssp.view_checks import view_allows_skip
from repro.templates.classify import is_ignorable
from repro.templates.registry import TemplateRegistry

__all__ = ["InvalidationEngine", "StrategyClass"]


class StrategyClass(enum.Enum):
    """The four named strategy classes, for uniform-exposure experiments."""

    MBS = "blind"
    MTIS = "template"
    MSIS = "stmt"
    MVIS = "view"

    @property
    def exposure_level(self) -> ExposureLevel:
        """The uniform exposure level that induces this strategy."""
        return {
            StrategyClass.MBS: ExposureLevel.BLIND,
            StrategyClass.MTIS: ExposureLevel.TEMPLATE,
            StrategyClass.MSIS: ExposureLevel.STMT,
            StrategyClass.MVIS: ExposureLevel.VIEW,
        }[self]


class InvalidationEngine:
    """Per-application invalidation decisions over a shared cache.

    Args:
        registry: The application's (public) template registry — the DSSP
            may hold template *texts*; an envelope reveals which template an
            instance came from only at ``template`` exposure and above.
        use_integrity_constraints: Let template-level decisions exploit
            primary/foreign keys (paper Section 4.5).
    """

    #: Bound on the statement-level memo; decisions repeat heavily under
    #: Zipf-skewed parameters, but a pathological workload with unbounded
    #: distinct statements must not grow the memo without limit.
    STATEMENT_MEMO_LIMIT = 65536

    def __init__(
        self,
        registry: TemplateRegistry,
        use_integrity_constraints: bool = True,
        equality_only_independence: bool = False,
        predicate_index: bool = False,
    ) -> None:
        self._registry = registry
        self._schema = registry.schema
        self._use_constraints = use_integrity_constraints
        self._equality_only = equality_only_independence
        self._predicate_index = predicate_index
        #: Which path served the most recent ``process_update`` call:
        #: ``indexed`` (every stmt-visible bucket answered from candidate
        #: lists), ``sweep`` (full bucket scans / bucket drops only),
        #: ``mixed``, or ``blind`` (whole-app drop).  Exposure-safe: the
        #: label never carries statement or parameter content.
        self.last_path = "sweep"
        self._used_index = False
        self._used_sweep = False
        self._template_decision: dict[tuple[str, str], bool] = {}
        #: Memoized ``statement_independent`` outcomes keyed by the pair of
        #: envelope identities (update opaque id, entry cache key).  Both
        #: ids encode template + bound parameters, so equal keys mean the
        #: identical pair of bound statements — the decision is a pure
        #: function of them (schema and reasoning flags are fixed per
        #: engine) and never needs re-deriving.
        self._statement_decision: dict[tuple[str, str], bool] = {}

    # -- template-level (TIS) decision, memoized -----------------------------

    def _invalidates_at_template_level(
        self, update_name: str, query_name: str
    ) -> bool:
        key = (update_name, query_name)
        cached = self._template_decision.get(key)
        if cached is not None:
            return cached
        update = self._registry.update(update_name).statement
        query = self._registry.query(query_name).select
        independent = is_ignorable(self._schema, update, query) or (
            self._use_constraints
            and constraint_implies_no_effect(self._schema, update, query)
        )
        self._template_decision[key] = not independent
        return not independent

    # -- the main entry point ---------------------------------------------------

    def process_update(
        self,
        envelope: UpdateEnvelope,
        cache: ViewCache,
        stats: DsspStats | None = None,
    ) -> int:
        """Invalidate everything the update may have changed; returns count."""
        app_id = envelope.app_id
        self._used_index = False
        self._used_sweep = False
        if stats is not None:
            stats.updates += 1

        if not envelope.template_visible:
            # Blind update: Property 1 — everything of this app must go.
            count = cache.invalidate_app(app_id)
            if stats is not None:
                stats.record_invalidation(None, count)
            self.last_path = "blind"
            return count

        total = 0
        update_name = envelope.template_name
        assert update_name is not None
        for bucket_name in cache.bucket_names(app_id):
            if bucket_name is None:
                # Blind query entries: template unknown → must invalidate.
                count = cache.invalidate_bucket(app_id, None)
                total += count
                if stats is not None:
                    stats.record_invalidation(None, count)
                continue
            if stats is not None:
                stats.invalidation_checks += 1
            if not self._invalidates_at_template_level(update_name, bucket_name):
                continue
            total += self._process_bucket(
                envelope, cache, app_id, bucket_name, stats
            )
        if self._used_index:
            self.last_path = "mixed" if self._used_sweep else "indexed"
        else:
            self.last_path = "sweep"
        return total

    def _process_bucket(
        self,
        envelope: UpdateEnvelope,
        cache: ViewCache,
        app_id: str,
        bucket_name: str,
        stats: DsspStats | None,
    ) -> int:
        if not envelope.statement_visible:
            # Update at 'template' exposure: entry A governs every pair.
            count = cache.invalidate_bucket(app_id, bucket_name)
            if stats is not None:
                stats.record_invalidation(bucket_name, count)
            self._used_sweep = True
            return count

        update_statement = envelope.statement
        assert update_statement is not None
        entries: Iterable[CacheEntry]
        if self._predicate_index:
            # Predicate-index fast path: visit only the entries whose
            # bound selection values the update's pins could touch.  A
            # non-candidate provably survives ``statement_independent``,
            # so the invalidated set is identical to the bucket sweep's.
            if stats is not None:
                stats.index_lookups += 1
            candidates = cache.predicate_candidates(
                app_id, bucket_name, update_pinned_values(update_statement)
            )
            if candidates is None:
                self._used_sweep = True
                entries = cache.bucket(app_id, bucket_name)
            else:
                self._used_index = True
                if stats is not None:
                    stats.index_narrowed += (
                        cache.bucket_size(app_id, bucket_name)
                        - len(candidates)
                    )
                entries = candidates
        else:
            self._used_sweep = True
            entries = cache.bucket(app_id, bucket_name)
        victims: list[str] = []
        for entry in entries:
            if self._entry_survives(envelope, entry, stats):
                continue
            victims.append(entry.key)
        count = cache.invalidate_many(victims)
        if stats is not None and count:
            stats.record_invalidation(bucket_name, count)
        return count

    def _entry_survives(
        self,
        envelope: UpdateEnvelope,
        entry: CacheEntry,
        stats: DsspStats | None,
    ) -> bool:
        """Can this entry be proven unaffected, given its exposure level?"""
        if entry.statement is None:
            return False  # entry at 'template' level: IPM entry A → invalidate
        if self._statements_independent(envelope, entry, stats):
            return True
        if entry.view_rows is None:
            return False  # 'stmt' level: no view to inspect
        # View decisions are NOT memoized: the rows behind the same cache
        # key change whenever the entry is refilled after an invalidation.
        return view_allows_skip(
            self._schema, envelope.statement, entry.statement, entry.view_rows
        )

    def _statements_independent(
        self,
        envelope: UpdateEnvelope,
        entry: CacheEntry,
        stats: DsspStats | None,
    ) -> bool:
        memo_key = (envelope.opaque_id, entry.key)
        cached = self._statement_decision.get(memo_key)
        if cached is not None:
            if stats is not None:
                stats.decision_memo_hits += 1
            return cached
        if stats is not None:
            stats.invalidation_checks += 1
        independent = statement_independent(
            self._schema,
            envelope.statement,
            entry.statement,
            equality_only=self._equality_only,
        )
        if len(self._statement_decision) >= self.STATEMENT_MEMO_LIMIT:
            self._statement_decision.clear()
        self._statement_decision[memo_key] = independent
        return independent
