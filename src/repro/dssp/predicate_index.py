"""Predicate indexing of cached views by bound selection-attribute values.

The IPM decides *whether* a U/Q template pair can interact; within a pair
at ``stmt``/``view`` exposure the engine still runs its per-entry decision
procedure over the whole template bucket.  Łopuszański's single-table
invalidation algorithm (arXiv 2310.15360) shows the upgrade: key each
cached view by the *values* its statement pins on the shared selection
attributes, so an update with ``author = 'X'`` only visits the views whose
parameter matched ``'X'`` — O(affected) instead of O(bucket).

This module is the analysis half of that index:

* :class:`PredicateIndexer` decides, per query template, which attributes
  are *indexable* — (table, column) pairs that **every** binding of the
  table pins with an equality against a constant — and extracts the bound
  values from a statement at cache-insert time;
* :func:`update_pinned_values` extracts the values an update statement
  pins on its table's columns, the lookup key at invalidation time.

Soundness rests on the engine's own decision procedure
(:func:`~repro.analysis.independence.statement_independent`): a bucket
entry whose bound value differs from every pinned value of the update has,
for each binding of the update's table, an equality predicate the update
provably cannot satisfy —

* **Insert**: the inserted row's value for the column differs from the
  entry's pin, so the row fails the binding's predicate;
* **Delete**: the delete's equality pin contradicts the entry's pin, so
  their conjunction is unsatisfiable;
* **Update**: the old row is excluded by the WHERE pin, and the new row
  either keeps the old (contradicting) value or takes a SET value — which
  is why :func:`update_pinned_values` includes SET values for columns the
  WHERE clause also pins.

In every case ``statement_independent`` returns True, so the entry would
survive the full bucket sweep anyway: checking only index candidates
invalidates *exactly* the same set (the equivalence the hypothesis suite
proves).  Templates the argument does not cover — aggregation/group-by
(refused wholesale), NULL-valued bound attributes, entries whose statement
is hidden — fall back to always-candidate status or to the bucket sweep.
"""

from __future__ import annotations

from repro.sql.ast import (
    ColumnRef,
    ComparisonOp,
    Delete,
    Insert,
    Literal,
    Scalar,
    Select,
    Update,
)
from repro.templates.registry import TemplateRegistry

__all__ = ["PredicateIndexer", "update_pinned_values"]

#: An indexed attribute: (base table name, column name).
Attr = tuple[str, str]


def _equality_columns(select: Select, schema) -> dict[str, set[str]] | None:
    """Per *binding*, the columns pinned by an equality against a constant.

    Constants are literals or (template-level) parameters.  Unqualified
    column references count for every binding of their owning table —
    the same resolution rule the independence procedure applies, so an
    attribute declared indexable here is exactly one the procedure can
    turn into a contradiction.  Returns None for aggregation/group-by
    templates (refused: the conservative bucket sweep stays in charge).
    """
    if select.has_aggregate() or select.group_by:
        return None
    scope = {ref.binding: ref.name for ref in select.tables}
    pinned: dict[str, set[str]] = {binding: set() for binding in scope}
    for comparison in select.where:
        if comparison.is_join() or comparison.op is not ComparisonOp.EQ:
            continue
        ref = None
        if isinstance(comparison.left, ColumnRef) and not isinstance(
            comparison.right, ColumnRef
        ):
            ref = comparison.left
        elif isinstance(comparison.right, ColumnRef) and not isinstance(
            comparison.left, ColumnRef
        ):
            ref = comparison.right
        if ref is None:
            continue
        for binding, table in scope.items():
            if ref.table is not None:
                if ref.table == binding:
                    pinned[binding].add(ref.column)
            elif schema.table(table).has_column(ref.column):
                pinned[binding].add(ref.column)
    return pinned


def _indexable_attributes(select: Select, schema) -> frozenset[Attr] | None:
    """Attributes usable as index keys for one query template.

    ``(T, c)`` qualifies only if *every* binding of ``T`` pins ``c`` with
    an equality — a self-join binding without the pin could interact with
    an update regardless of the other binding's value.
    """
    pinned = _equality_columns(select, schema)
    if pinned is None:
        return None
    scope = {ref.binding: ref.name for ref in select.tables}
    attrs: set[Attr] = set()
    for table in set(scope.values()):
        bindings = [b for b, t in scope.items() if t == table]
        shared = set.intersection(*(pinned[b] for b in bindings))
        attrs.update((table, column) for column in shared)
    return frozenset(attrs)


class PredicateIndexer:
    """Per-application analysis behind the cache's predicate index.

    Args:
        registry: The application's public template registry — the same
            artifact :class:`~repro.dssp.placement.TemplateAffinity` works
            from, so the index never sees more than the DSSP already may.
    """

    #: Bound on the per-statement extraction memo (statements are shared
    #: objects via the template bind memo, so identity keying is stable).
    MEMO_LIMIT = 8192

    def __init__(self, registry: TemplateRegistry) -> None:
        self._registry = registry
        self._schema = registry.schema
        self._attrs: dict[str, frozenset[Attr] | None] = {}
        self._values_memo: dict[int, tuple] = {}

    def query_attributes(self, template_name: str) -> frozenset[Attr] | None:
        """Indexable attributes of one query template; None = refused.

        Refusals (unknown template, aggregation, group-by, no attribute
        pinned across all bindings) keep the bucket on the sweep path.
        """
        if template_name in self._attrs:
            return self._attrs[template_name]
        try:
            select = self._registry.query(template_name).select
        except Exception:
            attrs: frozenset[Attr] | None = None
        else:
            attrs = _indexable_attributes(select, self._schema)
            if attrs is not None and not attrs:
                attrs = None
        self._attrs[template_name] = attrs
        return attrs

    def entry_values(
        self, template_name: str, statement: Select
    ) -> dict[Attr, frozenset[Scalar]] | None:
        """Bound values of the template's indexable attributes.

        Self-joins contribute one value per binding (the entry matches a
        pinned update value if *any* binding does).  Returns None when the
        template is refused or the statement does not carry a literal for
        every indexable attribute on every binding — the entry then stays
        an always-candidate.
        """
        attrs = self.query_attributes(template_name)
        if attrs is None:
            return None
        hit = self._values_memo.get(id(statement))
        if hit is not None and hit[0] is statement:
            return hit[1]
        values = self._extract(attrs, statement)
        if len(self._values_memo) >= self.MEMO_LIMIT:
            self._values_memo.clear()
        self._values_memo[id(statement)] = (statement, values)
        return values

    def _extract(
        self, attrs: frozenset[Attr], statement: Select
    ) -> dict[Attr, frozenset[Scalar]] | None:
        scope = {ref.binding: ref.name for ref in statement.tables}
        per_binding: dict[tuple[str, str], set[Scalar]] = {}
        for comparison in statement.where:
            if comparison.is_join() or comparison.op is not ComparisonOp.EQ:
                continue
            if isinstance(comparison.left, ColumnRef) and isinstance(
                comparison.right, Literal
            ):
                ref, literal = comparison.left, comparison.right
            elif isinstance(comparison.right, ColumnRef) and isinstance(
                comparison.left, Literal
            ):
                ref, literal = comparison.right, comparison.left
            else:
                continue
            for binding, table in scope.items():
                if (table, ref.column) not in attrs:
                    continue
                if ref.table is not None and ref.table != binding:
                    continue
                per_binding.setdefault((binding, ref.column), set()).add(
                    literal.value
                )
        values: dict[Attr, frozenset[Scalar]] = {}
        for table, column in attrs:
            bindings = [b for b, t in scope.items() if t == table]
            collected: set[Scalar] = set()
            for binding in bindings:
                bound = per_binding.get((binding, column))
                if not bound:
                    return None  # a binding without its pin: refuse entry
                collected |= bound
            values[(table, column)] = frozenset(collected)
        return values


_PINNED_MEMO_LIMIT = 8192
_pinned_memo: dict[int, tuple] = {}


def update_pinned_values(
    statement: Insert | Delete | Update,
) -> dict[Attr, frozenset[Scalar]]:
    """Values a bound update pins on its table's columns (index lookup key).

    * **Insert** — the fully-known row: one value per column.
    * **Delete** — equality constants of the WHERE clause.
    * **Update** — equality constants of the WHERE clause, plus, for a
      column the update also SETs, the SET value: the modified row leaves
      the old pin *and arrives at* the new value, and both locations must
      be visited for the candidate set to stay sound.

    Columns without an equality pin are absent — an update unconstrained
    on an indexed attribute makes that attribute unusable for narrowing.
    """
    hit = _pinned_memo.get(id(statement))
    if hit is not None and hit[0] is statement:
        return hit[1]
    pinned = _compute_pinned_values(statement)
    if len(_pinned_memo) >= _PINNED_MEMO_LIMIT:
        _pinned_memo.clear()
    _pinned_memo[id(statement)] = (statement, pinned)
    return pinned


def _compute_pinned_values(
    statement: Insert | Delete | Update,
) -> dict[Attr, frozenset[Scalar]]:
    table = statement.table
    if isinstance(statement, Insert):
        return {
            (table, column): frozenset((value.value,))
            for column, value in zip(statement.columns, statement.values)
        }
    collected: dict[str, set[Scalar]] = {}
    for comparison in statement.where:
        if comparison.is_join() or comparison.op is not ComparisonOp.EQ:
            continue
        if isinstance(comparison.left, ColumnRef) and isinstance(
            comparison.right, Literal
        ):
            collected.setdefault(comparison.left.column, set()).add(
                comparison.right.value
            )
        elif isinstance(comparison.right, ColumnRef) and isinstance(
            comparison.left, Literal
        ):
            collected.setdefault(comparison.right.column, set()).add(
                comparison.left.value
            )
    if isinstance(statement, Update):
        for column, value in statement.assignments:
            if column in collected:
                collected[column].add(value.value)
    return {
        (table, column): frozenset(values)
        for column, values in collected.items()
    }
