"""The networked service layer (paper Figures 1 and 2, deployed).

The in-process reproduction wires :class:`~repro.dssp.proxy.DsspNode` and
:class:`~repro.dssp.homeserver.HomeServer` together with direct calls.
This package puts the *network* back between them:

* :mod:`repro.net.wire` — length-prefixed binary frames; envelopes stay
  sealed on the wire, so the exposure guarantees carry over byte-for-byte;
* :mod:`repro.net.home_server` — asyncio server around one or more home
  servers, including the invalidation-stream channel that fans completed
  updates out to subscribed DSSP nodes;
* :mod:`repro.net.dssp_server` — asyncio server around a
  :class:`~repro.dssp.proxy.DsspNode` with remote miss/update forwarding;
* :mod:`repro.net.client` — pooled async client with retry/backoff and
  typed error mapping;
* :mod:`repro.net.loadgen` — closed-loop load generator for measured (not
  analytic-model) strategy comparisons, plus the open-loop driver that
  issues on an arrival schedule with drop accounting;
* :mod:`repro.net.traffic` — seeded arrival processes (Poisson, ON/OFF,
  diurnal, flash-crowd) with byte-for-byte reproducible schedules;
* :mod:`repro.net.scenarios` — named scenario deployments (steady,
  flash_crowd, multi_tenant, diurnal) and the knee-curve sweep;
* :mod:`repro.net.chaos` — seeded, fully deterministic fault injection
  (frame drops/delays/duplications/truncations via an in-process TCP
  proxy, plus node kill/restart schedules);
* :mod:`repro.net.oracle` — the consistency oracle: replays the identical
  trace through the trusted in-process engine and asserts no stale reads,
  no lost acked updates, and home-database convergence.
"""

from repro.net.chaos import (
    ChaosLog,
    ChaosProxy,
    FaultEvent,
    FaultKind,
    FaultPlan,
    make_fault_hook,
)
from repro.net.client import (
    NetQueryOutcome,
    NetUpdateOutcome,
    RetryPolicy,
    Subscription,
    WireClient,
)
from repro.net.dssp_server import DsspNetServer
from repro.net.home_server import HomeNetServer, UpdateDedup
from repro.net.loadgen import (
    LoadReport,
    TenantWorkload,
    run_load,
    run_open_load,
)
from repro.net.oracle import (
    ChaosRunner,
    ChaosTopology,
    OracleReport,
    Violation,
    run_chaos,
)
from repro.net.router import ShardRouter
from repro.net.scenarios import (
    SCENARIOS,
    ScenarioDeployment,
    deploy_scenario,
    find_knee,
    flash_crowd_trace,
    run_scenario,
    sweep_scenario,
)
from repro.net.traffic import (
    ARRIVAL_KINDS,
    ArrivalSchedule,
    DiurnalArrivals,
    FlashCrowdArrivals,
    OnOffArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.net.wire import (
    ErrorCode,
    ErrorResponse,
    FrameType,
    InvalidationBatch,
    InvalidationPush,
    QueryRequest,
    QueryResponse,
    StatsRequest,
    StatsResponse,
    SubscribeRequest,
    SubscribeResponse,
    UpdateRequest,
    UpdateResponse,
    decode_frame,
    decode_traced,
    encode_frame,
)

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalSchedule",
    "ChaosLog",
    "ChaosProxy",
    "ChaosRunner",
    "ChaosTopology",
    "DiurnalArrivals",
    "DsspNetServer",
    "ErrorCode",
    "ErrorResponse",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FlashCrowdArrivals",
    "FrameType",
    "HomeNetServer",
    "InvalidationBatch",
    "InvalidationPush",
    "LoadReport",
    "OnOffArrivals",
    "PoissonArrivals",
    "SCENARIOS",
    "ScenarioDeployment",
    "TenantWorkload",
    "NetQueryOutcome",
    "NetUpdateOutcome",
    "OracleReport",
    "QueryRequest",
    "QueryResponse",
    "RetryPolicy",
    "ShardRouter",
    "StatsRequest",
    "StatsResponse",
    "SubscribeRequest",
    "SubscribeResponse",
    "Subscription",
    "UpdateDedup",
    "UpdateRequest",
    "UpdateResponse",
    "Violation",
    "WireClient",
    "decode_frame",
    "decode_traced",
    "deploy_scenario",
    "encode_frame",
    "find_knee",
    "flash_crowd_trace",
    "make_arrivals",
    "make_fault_hook",
    "run_chaos",
    "run_open_load",
    "run_scenario",
    "sweep_scenario",
]
