"""Async client for DSSP and home servers: pooling, retries, typed errors.

The client owns the trust boundary on the caller's side: wire-level
:class:`~repro.net.wire.ErrorResponse` frames are mapped back to the typed
exceptions of :mod:`repro.errors`, so no stringly-typed control flow (and
no :class:`~repro.errors.CacheError` text matching) leaks across the
service boundary.

Retry discipline: queries are idempotent and retried on any transient
failure (connection loss, ``OVERLOADED``, ``MISS_FORWARDED``, ``TIMEOUT``).
Updates are retried only when the request provably never reached the server
(connect/send failure before the first byte was written) or when the server
shed it unprocessed (``OVERLOADED``); a lost *response* to an applied
update must surface, not silently re-apply.

Pipelining: with ``WireClient(pipeline=N)`` the client multiplexes up to
``N`` in-flight requests over one connection instead of dedicating a
pooled connection per request.  Each request carries its wire v2 request
id; a reader task matches responses — which may arrive in any order — to
their senders through a pending map of per-request futures.  The window
is a hard bound: a request that cannot acquire a slot within the request
timeout fails with a typed ``TIMEOUT`` (and, being provably unsent, stays
retry-safe).  The retry discipline above is unchanged — pipelining swaps
the transport under ``_exchange``, not the failure semantics.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass

from repro.crypto.envelope import QueryEnvelope, ResultEnvelope, UpdateEnvelope
from repro.errors import (
    HomeUnreachableError,
    NetConnectionError,
    NetError,
    NetTimeoutError,
    ReproError,
    ServerOverloadedError,
    UnknownApplicationError,
    WireError,
)
from repro.net import wire
from repro.net.wire import (
    ErrorCode,
    ErrorResponse,
    Frame,
    InvalidationBatch,
    InvalidationPush,
    QueryRequest,
    QueryResponse,
    StatsRequest,
    StatsResponse,
    SubscribeRequest,
    SubscribeResponse,
    UpdateRequest,
    UpdateResponse,
)
from repro.obs import MetricsRegistry, SpanRecorder, new_request_id
from repro.obs.trace import span as trace_span

__all__ = [
    "NetQueryOutcome",
    "NetUpdateOutcome",
    "RetryPolicy",
    "Subscription",
    "WireClient",
    "exception_for",
]

#: Error codes meaning "the server never processed the request".
_UNPROCESSED_CODES = frozenset({ErrorCode.OVERLOADED})
#: Additional codes safe to retry when the request is idempotent.
_IDEMPOTENT_RETRY_CODES = frozenset(
    {ErrorCode.OVERLOADED, ErrorCode.MISS_FORWARDED, ErrorCode.TIMEOUT}
)

_EXCEPTION_FOR_CODE: dict[ErrorCode, type[ReproError]] = {
    ErrorCode.UNKNOWN_APP: UnknownApplicationError,
    ErrorCode.MISS_FORWARDED: HomeUnreachableError,
    ErrorCode.TIMEOUT: NetTimeoutError,
    ErrorCode.BAD_FRAME: WireError,
    ErrorCode.OVERLOADED: ServerOverloadedError,
    ErrorCode.INTERNAL: NetError,
}


def exception_for(response: ErrorResponse) -> ReproError:
    """Typed exception for a wire error frame.

    ``UNKNOWN_APP`` frames carry the offending application id as their
    message, so the reconstructed exception keeps its ``app_id`` attribute.
    """
    if response.code is ErrorCode.UNKNOWN_APP:
        return UnknownApplicationError(response.message)
    return _EXCEPTION_FOR_CODE[response.code](response.message)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for transient failures: exponential + jitter.

    With ``jitter`` on (the default), retry ``attempt`` sleeps a uniform
    draw from ``[backoff_s, backoff_s * multiplier**(attempt + 1)]``
    capped at ``max_backoff_s`` — the stateless form of decorrelated
    jitter.  Without jitter, concurrent clients that all lost the same
    home server retry in lockstep and re-create the very load spike that
    killed it; the jitter spreads the reconnect storm out.

    ``seed`` makes one instance's draws reproducible (chaos runs pin it);
    by default each instance draws from OS entropy, so separate clients
    de-correlate even when constructed identically.
    """

    attempts: int = 3
    backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0
    jitter: bool = True
    seed: int | None = None

    def __post_init__(self) -> None:
        # Not a dataclass field: the RNG is per-instance mutable state,
        # invisible to eq/repr, allowed on a frozen instance via the
        # object protocol.
        object.__setattr__(self, "_rng", random.Random(self.seed))

    def delay(self, attempt: int) -> float:
        """Seconds to sleep before retry number ``attempt`` (0-based)."""
        ceiling = min(
            self.backoff_s * self.multiplier ** (attempt + 1),
            self.max_backoff_s,
        )
        floor = min(self.backoff_s, ceiling)
        if not self.jitter:
            return min(
                self.backoff_s * self.multiplier**attempt, self.max_backoff_s
            )
        return self._rng.uniform(floor, ceiling)  # type: ignore[attr-defined]


@dataclass(frozen=True)
class NetQueryOutcome:
    """A query's answer as observed through the service boundary."""

    result: ResultEnvelope
    cache_hit: bool


@dataclass(frozen=True)
class NetUpdateOutcome:
    """An update's acknowledgement through the service boundary."""

    rows_affected: int
    invalidated: int


class _Connection:
    """One open stream; requests are strictly send-then-receive."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame: int,
        observer=None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._observer = observer

    async def send(self, frame: Frame, *, request_id: str | None = None) -> None:
        await wire.write_frame(
            self._writer,
            frame,
            request_id=request_id,
            max_frame=self._max_frame,
            observer=self._observer,
        )

    async def receive(self) -> Frame:
        frame, _ = await self.receive_traced()
        return frame

    async def receive_traced(self) -> tuple[Frame, str | None]:
        traced = await wire.read_traced(
            self._reader, max_frame=self._max_frame, observer=self._observer
        )
        if traced is None:
            raise NetConnectionError("server closed the connection")
        return traced

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class _ConnectionPool:
    """Bounded pool of lazily opened connections to one address."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        size: int,
        connect_timeout_s: float,
        max_frame: int,
        observer=None,
        on_open=None,
    ) -> None:
        self._host = host
        self._port = port
        self._size = size
        self._connect_timeout_s = connect_timeout_s
        self._max_frame = max_frame
        self._observer = observer
        self._on_open = on_open
        self._idle: list[_Connection] = []
        self._open_count = 0
        self._available = asyncio.Condition()
        self._closed = False

    async def acquire(self) -> _Connection:
        async with self._available:
            while True:
                if self._closed:
                    raise NetConnectionError("client is closed")
                if self._idle:
                    return self._idle.pop()
                if self._open_count < self._size:
                    self._open_count += 1
                    break
                await self._available.wait()
        try:
            return await self._connect()
        except BaseException:
            async with self._available:
                self._open_count -= 1
                self._available.notify()
            raise

    async def _connect(self) -> _Connection:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self._host, self._port),
                self._connect_timeout_s,
            )
        except (ConnectionError, OSError, asyncio.TimeoutError) as error:
            raise NetConnectionError(
                f"cannot connect to {self._host}:{self._port}: {error}"
            ) from error
        if self._on_open is not None:
            self._on_open()
        return _Connection(
            reader, writer, max_frame=self._max_frame, observer=self._observer
        )

    async def release(self, connection: _Connection, *, discard: bool) -> None:
        if discard or self._closed:
            await connection.aclose()
            async with self._available:
                self._open_count -= 1
                self._available.notify()
            return
        async with self._available:
            self._idle.append(connection)
            self._available.notify()

    async def aclose(self) -> None:
        async with self._available:
            self._closed = True
            idle, self._idle = self._idle, []
            self._open_count -= len(idle)
            self._available.notify_all()
        for connection in idle:
            await connection.aclose()


class Subscription:
    """An open invalidation-stream channel (DSSP side).

    Iterate :meth:`frames` to receive
    :class:`~repro.net.wire.InvalidationPush` messages; iteration ends when
    the server closes the channel.  When the channel negotiated batching
    (``batch_enabled``), :meth:`events` also yields
    :class:`~repro.net.wire.InvalidationBatch` frames so a consumer can
    apply a coalesced batch atomically; :meth:`frames` transparently
    explodes batches into singleton pushes for consumers that do not care.
    """

    def __init__(
        self,
        connection: _Connection,
        app_ids: tuple[str, ...],
        *,
        batch_enabled: bool = False,
        shard_filtered: bool = False,
    ):
        self._connection = connection
        self.app_ids = app_ids
        self.batch_enabled = batch_enabled
        #: The home accepted this subscriber's shard topology and narrows
        #: invalidation fan-out to owning shards.
        self.shard_filtered = shard_filtered

    async def frames(self):
        """Yield invalidation pushes until the channel closes."""
        async for frame, request_id in self.events():
            if isinstance(frame, InvalidationBatch):
                for entry_rid, envelope in frame.entries:
                    yield InvalidationPush(envelope)
            else:
                yield frame

    async def events(self):
        """Yield ``(frame, request_id)`` pairs until the channel closes.

        ``frame`` is an :class:`~repro.net.wire.InvalidationPush` or — on
        a batching channel — an :class:`~repro.net.wire.InvalidationBatch`
        (whose per-entry ids carry the tracing; its own id is ``None``).
        The request id is the trace id of the update that caused the push
        (``None`` when the update arrived untraced), so a node can log
        stream invalidations correlated with their originating request.
        """
        while True:
            try:
                frame, request_id = await self._connection.receive_traced()
            except NetConnectionError:
                return
            if isinstance(frame, (InvalidationPush, InvalidationBatch)):
                yield frame, request_id
            elif isinstance(frame, ErrorResponse):
                raise exception_for(frame)
            else:
                raise WireError(
                    f"unexpected {type(frame).__name__} on subscription channel"
                )

    async def aclose(self) -> None:
        await self._connection.aclose()


class _PipelinedChannel:
    """One connection multiplexing many in-flight requests by request id.

    A pending map of per-request futures plus a single reader task: the
    sender registers its future under the request id before the frame
    leaves, the reader resolves whichever future matches each response's
    id — responses may arrive in any order.  The window semaphore bounds
    in-flight requests; overflow is a typed, provably-unsent ``TIMEOUT``.
    A transport or framing failure poisons the whole channel: every
    pending future fails with ``NetConnectionError`` (fate unknown,
    ``sent=True``) and the next request transparently reconnects.
    """

    def __init__(self, client: "WireClient", window: int) -> None:
        if window < 1:
            raise ValueError(f"pipeline window must be >= 1, got {window}")
        self._client = client
        self.window = window
        self._slots = asyncio.Semaphore(window)
        self._pending: dict[str, asyncio.Future] = {}
        self._connection: _Connection | None = None
        self._reader_task: asyncio.Task | None = None
        self._send_lock = asyncio.Lock()
        self._closed = False
        client.metrics.gauge(
            "client.pipeline_depth", lambda: len(self._pending)
        )

    async def exchange(self, frame: Frame, *, request_id: str | None) -> Frame:
        if request_id is None:
            request_id = new_request_id()  # the pending map needs a key
        timeout_s = self._client._request_timeout_s
        try:
            await asyncio.wait_for(self._slots.acquire(), timeout_s)
        except (asyncio.TimeoutError, TimeoutError):
            self._client.metrics.counter(
                "client.pipeline_window_timeouts"
            ).inc()
            raise _ExchangeFailed(
                NetTimeoutError(
                    f"pipeline window of {self.window} requests to "
                    f"{self._client.host}:{self._client.port} stayed full "
                    f"for {timeout_s}s"
                ),
                sent=False,
            ) from None
        future: asyncio.Future | None = None
        try:
            async with self._send_lock:
                connection = await self._ensure_connection()
                if self._client._fault_hook is not None:
                    await self._client._fault_hook(frame, request_id)
                future = asyncio.get_running_loop().create_future()
                stale = self._pending.pop(request_id, None)
                if stale is not None and not stale.done():
                    stale.cancel()
                self._pending[request_id] = future
                try:
                    await connection.send(frame, request_id=request_id)
                except (ConnectionError, OSError) as error:
                    self._drop_connection(connection)
                    raise _ExchangeFailed(
                        NetConnectionError(
                            f"connection to {self._client.host}:"
                            f"{self._client.port} failed: {error}"
                        ),
                        sent=False,
                    ) from error
            try:
                return await asyncio.wait_for(future, timeout_s)
            except (asyncio.TimeoutError, TimeoutError) as error:
                raise _ExchangeFailed(
                    NetTimeoutError(
                        f"no response from {self._client.host}:"
                        f"{self._client.port} within {timeout_s}s"
                    ),
                    sent=True,
                ) from error
            except NetConnectionError as error:
                raise _ExchangeFailed(error, sent=True) from error
        finally:
            if future is not None:
                if self._pending.get(request_id) is future:
                    del self._pending[request_id]
                if future.done() and not future.cancelled():
                    future.exception()  # mark retrieved on racing failures
            self._slots.release()

    async def _ensure_connection(self) -> _Connection:
        # Under the send lock: connect/reconnect races are serialized.
        if self._closed:
            raise _ExchangeFailed(
                NetConnectionError("client is closed"), sent=False
            )
        if self._connection is None:
            try:
                self._connection = await self._client._pool._connect()
            except NetConnectionError as error:
                raise _ExchangeFailed(error, sent=False) from error
            self._reader_task = asyncio.create_task(
                self._read_loop(self._connection)
            )
        return self._connection

    async def _read_loop(self, connection: _Connection) -> None:
        try:
            while True:
                frame, request_id = await connection.receive_traced()
                future = (
                    self._pending.get(request_id)
                    if request_id is not None
                    else None
                )
                if future is None or future.done():
                    # Nobody is waiting: a late response whose sender
                    # already timed out (and possibly retried), or a
                    # duplicate.  Count it; matching is by id only, so it
                    # can never land on another request's future.
                    self._client.metrics.counter(
                        "client.pipeline_unmatched"
                    ).inc()
                    continue
                future.set_result(frame)
        except NetConnectionError as error:
            failure = error
        except WireError as error:
            failure = NetConnectionError(
                f"malformed response from {self._client.host}:"
                f"{self._client.port}: {error}"
            )
        except (ConnectionError, OSError) as error:
            failure = NetConnectionError(
                f"connection to {self._client.host}:"
                f"{self._client.port} failed: {error}"
            )
        self._drop_connection(connection)
        for future in list(self._pending.values()):
            if not future.done():
                future.set_exception(failure)

    def _drop_connection(self, connection: _Connection) -> None:
        if self._connection is connection:
            self._connection = None
        connection._writer.close()

    async def aclose(self) -> None:
        self._closed = True
        connection, self._connection = self._connection, None
        reader_task, self._reader_task = self._reader_task, None
        if connection is not None:
            await connection.aclose()
        if reader_task is not None:
            try:
                await reader_task
            except Exception:
                pass  # the loop reports failures through pending futures


class WireClient:
    """Pooled async client for one server address.

    Works against both server roles: clients point it at a DSSP node,
    DSSP nodes point it at their applications' home servers.

    ``pipeline=N`` switches request transport from one-pooled-connection-
    per-request to a single multiplexed connection with up to ``N``
    requests in flight (see :class:`_PipelinedChannel`); ``None`` keeps
    the serial pooled transport.  Subscriptions and their dedicated
    channels are unaffected either way.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        pool_size: int = 4,
        connect_timeout_s: float = 5.0,
        request_timeout_s: float = 30.0,
        retry: RetryPolicy | None = None,
        max_frame: int = wire.MAX_FRAME_BYTES,
        frame_observer=None,
        metrics: MetricsRegistry | None = None,
        fault_hook=None,
        pipeline: int | None = None,
        tracer: SpanRecorder | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self._retry = retry or RetryPolicy()
        self._request_timeout_s = request_timeout_s
        self._max_frame = max_frame
        self._frame_observer = frame_observer
        self._fault_hook = fault_hook
        self.metrics = metrics or MetricsRegistry()
        #: Span recorder for this caller's side of each request; sink-less
        #: (disabled) by default.  A DSSP node passes its own recorder so
        #: forwarded misses appear as nested client spans on that node.
        self.tracer = tracer or SpanRecorder("client")
        self._pool = _ConnectionPool(
            host,
            port,
            size=pool_size,
            connect_timeout_s=connect_timeout_s,
            max_frame=max_frame,
            observer=frame_observer,
            on_open=self.metrics.counter("client.connections_opened").inc,
        )
        self.pipeline = pipeline
        self._channel = (
            _PipelinedChannel(self, pipeline) if pipeline is not None else None
        )

    # -- public API --------------------------------------------------------

    async def query(
        self, envelope: QueryEnvelope, *, request_id: str | None = None
    ) -> NetQueryOutcome:
        """Issue a sealed query; returns the (still sealed) result.

        A fresh trace id is minted unless the caller supplies one (a DSSP
        node forwarding a miss passes through the client's id).
        """
        response = await self._request(
            QueryRequest(envelope),
            idempotent=True,
            request_id=request_id or new_request_id(),
        )
        if not isinstance(response, QueryResponse):
            raise WireError(
                f"expected RESULT frame, got {type(response).__name__}"
            )
        return NetQueryOutcome(
            result=response.result, cache_hit=response.cache_hit
        )

    async def update(
        self,
        envelope: UpdateEnvelope,
        *,
        origin: str | None = None,
        request_id: str | None = None,
    ) -> NetUpdateOutcome:
        """Issue a sealed update; returns the acknowledgement."""
        response = await self._request(
            UpdateRequest(envelope, origin=origin),
            idempotent=False,
            request_id=request_id or new_request_id(),
        )
        if not isinstance(response, UpdateResponse):
            raise WireError(
                f"expected UPDATE_ACK frame, got {type(response).__name__}"
            )
        return NetUpdateOutcome(
            rows_affected=response.rows_affected,
            invalidated=response.invalidated,
        )

    async def stats(self) -> dict:
        """Fetch the server's live stats snapshot as a parsed dict."""
        response = await self._request(
            StatsRequest(), idempotent=True, request_id=new_request_id()
        )
        if not isinstance(response, StatsResponse):
            raise WireError(
                f"expected STATS_RESULT frame, got {type(response).__name__}"
            )
        return json.loads(response.payload)

    async def subscribe(
        self,
        node_id: str,
        app_ids: tuple[str, ...],
        *,
        supports_batch: bool = False,
        shards: tuple[str, ...] = (),
        vnodes: int = 0,
    ) -> Subscription:
        """Open a dedicated invalidation-stream channel (not pooled).

        ``supports_batch`` advertises that this subscriber understands
        ``INVALIDATE_BATCH`` frames; the returned subscription's
        ``batch_enabled`` reports whether the home agreed.
        ``shards``/``vnodes`` declare the subscriber's sharded topology
        (ring membership + virtual nodes); ``shard_filtered`` on the
        subscription reports whether the home will narrow fan-out with it.
        """
        connection = await self._pool._connect()
        try:
            await connection.send(
                SubscribeRequest(
                    node_id,
                    app_ids,
                    supports_batch=supports_batch,
                    shards=shards,
                    vnodes=vnodes,
                )
            )
            response = await connection.receive()
        except BaseException:
            await connection.aclose()
            raise
        if isinstance(response, ErrorResponse):
            await connection.aclose()
            raise exception_for(response)
        if not isinstance(response, SubscribeResponse):
            await connection.aclose()
            raise WireError(
                f"expected SUBSCRIBED frame, got {type(response).__name__}"
            )
        return Subscription(
            connection,
            response.app_ids,
            batch_enabled=response.batch_enabled,
            shard_filtered=response.shard_filtered,
        )

    async def aclose(self) -> None:
        """Close the pipelined channel (if any) and all pooled connections."""
        if self._channel is not None:
            await self._channel.aclose()
        await self._pool.aclose()

    # -- request machinery -------------------------------------------------

    async def _request(
        self,
        frame: Frame,
        *,
        idempotent: bool,
        request_id: str | None = None,
    ) -> Frame:
        # One trace id covers the whole logical request: retries reuse it,
        # so server-side records of every attempt correlate.
        in_flight = self.metrics.gauge("client.in_flight")
        started = time.perf_counter()
        in_flight.inc()
        with self.tracer.trace(
            request_id, "client.request", frame=type(frame).__name__
        ) as request_span:
            try:
                return await self._request_with_retries(
                    frame, idempotent=idempotent, request_id=request_id
                )
            finally:
                in_flight.dec()
                self.metrics.histogram("client.request_seconds").observe(
                    time.perf_counter() - started,
                    exemplar=(
                        request_id if request_span.recorded else None
                    ),
                )

    async def _request_with_retries(
        self,
        frame: Frame,
        *,
        idempotent: bool,
        request_id: str | None,
    ) -> Frame:
        attempt = 0
        while True:
            try:
                with trace_span("client.exchange", attempt=attempt):
                    response = await self._exchange(
                        frame, request_id=request_id
                    )
            except _ExchangeFailed as failure:
                retryable = idempotent or not failure.sent
                if retryable and attempt + 1 < self._retry.attempts:
                    await self._backoff(attempt)
                    attempt += 1
                    continue
                raise failure.error from failure.error.__cause__
            if isinstance(response, ErrorResponse):
                retryable = response.code in (
                    _IDEMPOTENT_RETRY_CODES
                    if idempotent
                    else _UNPROCESSED_CODES
                )
                if retryable and attempt + 1 < self._retry.attempts:
                    await self._backoff(attempt)
                    attempt += 1
                    continue
                raise exception_for(response)
            return response

    async def _backoff(self, attempt: int) -> None:
        self.metrics.counter("client.retries").inc()
        self.metrics.counter("client.backoff_sleeps").inc()
        await asyncio.sleep(self._retry.delay(attempt))

    async def _exchange(
        self, frame: Frame, *, request_id: str | None = None
    ) -> Frame:
        if self._channel is not None:
            return await self._channel.exchange(frame, request_id=request_id)
        sent = False
        try:
            connection = await self._pool.acquire()
        except NetConnectionError as error:
            raise _ExchangeFailed(error, sent=False) from error
        discard = True
        try:
            if self._fault_hook is not None:
                await self._fault_hook(frame, request_id)
            await connection.send(frame, request_id=request_id)
            sent = True
            try:
                response = await asyncio.wait_for(
                    connection.receive(), self._request_timeout_s
                )
            except WireError as error:
                # A garbled response frame poisons only this connection;
                # the request's fate is unknown (sent=True), so queries
                # retry on a fresh stream and updates surface.
                raise _ExchangeFailed(
                    NetConnectionError(
                        f"malformed response from {self.host}:{self.port}: "
                        f"{error}"
                    ),
                    sent=True,
                ) from error
            discard = False
            return response
        except (asyncio.TimeoutError, TimeoutError) as error:
            raise _ExchangeFailed(
                NetTimeoutError(
                    f"no response from {self.host}:{self.port} within "
                    f"{self._request_timeout_s}s"
                ),
                sent=sent,
            ) from error
        except (ConnectionError, OSError, NetConnectionError) as error:
            wrapped = (
                error
                if isinstance(error, NetConnectionError)
                else NetConnectionError(
                    f"connection to {self.host}:{self.port} failed: {error}"
                )
            )
            raise _ExchangeFailed(wrapped, sent=sent) from error
        finally:
            await self._pool.release(connection, discard=discard)


class _ExchangeFailed(Exception):
    """Internal: a transport-level failure plus whether the request left."""

    def __init__(self, error: NetError, *, sent: bool) -> None:
        super().__init__(str(error))
        self.error = error
        self.sent = sent
