"""Shard-aware request routing for a sharded DSSP cluster.

A :class:`ShardRouter` fronts one :class:`~repro.net.client.WireClient`
(or any duck-typed endpoint with async ``query``/``update``) per shard and
steers each sealed envelope to the shard that *owns* its placement key on
the cluster's consistent-hash ring:

* queries route by :func:`~repro.dssp.placement.query_placement_key` — the
  template bucket for template-visible envelopes, the cache key for blind
  ones — so every client's request for a given view lands on the one node
  allowed to admit it, and the cluster behaves as a single logical cache
  of N× the per-node capacity instead of N diluted copies;
* updates route by :func:`~repro.dssp.placement.update_routing_key`
  (the opaque id), spreading write forwarding across shards — any shard
  can forward an update to the home; placement only matters for *views*.

The router exposes the same ``query``/``update`` surface as a single
endpoint, so :func:`~repro.net.loadgen.run_load` can drive a sharded
cluster by passing ``endpoints=[router]``.  It deliberately has **no**
failover logic: a dead shard surfaces as its transport error, and the
chaos harness (not the router) decides what recovery means.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.dssp.placement import query_placement_key, update_routing_key
from repro.dssp.ring import DEFAULT_VNODES, HashRing
from repro.errors import NetError

__all__ = ["ShardRouter"]


class ShardRouter:
    """Route sealed envelopes to the owning shard of a DSSP cluster.

    Args:
        endpoints: ``shard_id -> endpoint`` map.  The shard ids must match
            the ``node_id``/``shards`` the DSSP servers were started with,
            or routing and admission will disagree about ownership.
        vnodes: Virtual nodes per shard; must match the servers' setting.
    """

    def __init__(
        self,
        endpoints: Mapping[str, object],
        *,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if not endpoints:
            raise NetError("a ShardRouter needs at least one shard endpoint")
        self._endpoints = dict(endpoints)
        self._ring = HashRing(tuple(self._endpoints), vnodes=vnodes)

    @property
    def shard_ids(self) -> tuple[str, ...]:
        return self._ring.node_ids

    def shard_for_query(self, envelope) -> str:
        """Which shard owns this query's placement key."""
        return self._ring.owner(query_placement_key(envelope))

    def shard_for_update(self, envelope) -> str:
        """Which shard this update is forwarded through."""
        return self._ring.owner(update_routing_key(envelope))

    async def query(self, envelope, **kwargs):
        return await self._endpoints[self.shard_for_query(envelope)].query(
            envelope, **kwargs
        )

    async def update(self, envelope, **kwargs):
        return await self._endpoints[self.shard_for_update(envelope)].update(
            envelope, **kwargs
        )

    async def aclose(self) -> None:
        """Close every underlying endpoint that knows how to close."""
        for endpoint in self._endpoints.values():
            aclose = getattr(endpoint, "aclose", None)
            if aclose is not None:
                await aclose()
