"""Networked home organization (paper Figure 2, right side, deployed).

Wraps one or more in-process :class:`~repro.dssp.homeserver.HomeServer`
instances behind the wire protocol:

* ``QUERY`` frames (cache misses forwarded by DSSP nodes) are opened,
  executed against the master database, and the result is sealed per the
  application's exposure policy before it travels back — exactly
  :meth:`HomeServer.serve_query`.
* ``UPDATE`` frames are applied to the master copy, acknowledged, and then
  **fanned out** on the invalidation stream: every subscribed DSSP node
  except the forwarding origin receives an ``INVALIDATE`` push carrying the
  same sealed update envelope.  This is the networked analogue of
  :meth:`~repro.dssp.cluster.DsspCluster.update` — the home organization
  still plays no part in invalidation *decisions*; it merely relays the
  completed update, as the paper's update stream does.
* ``SUBSCRIBE`` frames register a DSSP node's long-lived stream channel.

Fan-out is decoupled from the update request path: the ack never waits for
pushes.  Each subscriber has a bounded send queue drained by its own sender
task with a per-send timeout; a subscriber that stalls (full TCP buffer,
dead peer) is dropped by *closing its channel*, so the node's
reconnect-and-flush safety net restores correctness, and one stuck node can
neither delay the update ack nor starve the other subscribers.

Subscribers that advertise batching (``SubscribeRequest.supports_batch``)
get their queue *coalesced*: whatever has accumulated behind the head
push is drained into one ``INVALIDATE_BATCH`` frame, deduplicating
repeated ``(app_id, opaque_id)`` entries, so a burst of updates costs a
stalled-but-recovering subscriber one frame instead of one per update.
Non-batching subscribers keep receiving byte-identical singleton
``INVALIDATE`` frames — coalescing is per-channel, negotiated, and never
changes *which* invalidations are delivered, only their framing.
"""

from __future__ import annotations

import asyncio
import logging
import time
from collections import OrderedDict
from collections.abc import Iterable

from repro.crypto.envelope import UpdateEnvelope
from repro.dssp.homeserver import HomeServer
from repro.dssp.placement import (
    TemplateAffinity,
    policy_allows_blind_queries,
    shards_for_update,
)
from repro.dssp.ring import HashRing
from repro.errors import UnknownApplicationError, WireError
from repro.net import wire
from repro.net.service import ConnectionContext, WireServer
from repro.net.wire import (
    Frame,
    InvalidationBatch,
    InvalidationPush,
    QueryRequest,
    QueryResponse,
    StatsRequest,
    SubscribeRequest,
    SubscribeResponse,
    UpdateRequest,
    UpdateResponse,
)
from repro.obs.trace import span as trace_span

__all__ = ["HomeNetServer", "UpdateDedup"]

logger = logging.getLogger(__name__)


class UpdateDedup:
    """Bounded idempotency log for ``UPDATE`` requests, keyed by trace id.

    A client retries an update under the *same* request id (and a chaos
    proxy may duplicate the frame outright); applying it twice would
    corrupt the master copy and double the invalidation fan-out.  The home
    remembers the acknowledgement of each recently applied update and
    replays it verbatim for a repeat — without touching the database or
    the stream.

    The ``opaque_id`` guards against trace-id collisions: a repeat whose
    envelope identity differs from the remembered one is *not* treated as
    a duplicate (it is a different update that unluckily reused an id).

    Deliberately a standalone object rather than server state: passing one
    instance across :class:`HomeNetServer` restarts models the durable
    idempotency log a production home would keep, which is what makes
    retry-until-ack safe across a kill/restart.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._entries: OrderedDict[str, tuple[str, UpdateResponse]] = (
            OrderedDict()
        )
        self.hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, request_id: str, opaque_id: str) -> UpdateResponse | None:
        """Remembered ack for this (trace id, envelope) pair, if any."""
        entry = self._entries.get(request_id)
        if entry is None:
            return None
        remembered_opaque, response = entry
        if remembered_opaque != opaque_id:
            logger.warning(
                "request id %s reused by a different update; not deduping",
                request_id,
            )
            return None
        self._entries.move_to_end(request_id)
        self.hits += 1
        return response

    def put(
        self, request_id: str, opaque_id: str, response: UpdateResponse
    ) -> None:
        """Remember the ack; evicts the least recently seen entry."""
        self._entries[request_id] = (opaque_id, response)
        self._entries.move_to_end(request_id)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)


class _Subscriber:
    def __init__(
        self,
        node_id: str,
        app_ids: frozenset[str],
        context: ConnectionContext,
        queue_size: int,
        *,
        batch_enabled: bool = False,
        ring: HashRing | None = None,
    ) -> None:
        self.node_id = node_id
        self.app_ids = app_ids
        self.context = context
        #: Negotiated: this channel may receive INVALIDATE_BATCH frames.
        self.batch_enabled = batch_enabled
        #: The subscriber's declared shard topology, when the home agreed
        #: to narrow fan-out with it (None on unsharded channels).
        self.ring = ring
        #: Pending (push, request id) pairs; the id is the trace id of the
        #: update that caused the push, so invalidations stay correlatable.
        self.queue: asyncio.Queue[tuple[InvalidationPush, str | None]] = (
            asyncio.Queue(maxsize=queue_size)
        )
        self.sender: asyncio.Task | None = None


class HomeNetServer(WireServer):
    """Asyncio server exposing home servers to DSSP nodes over the wire.

    Args:
        homes: The application home server(s) this endpoint masters.
        host/port: Bind address (port 0 picks an ephemeral port).
        push_queue_size: Pending pushes a subscriber may accumulate before
            it is considered stalled and dropped.
        push_timeout_s: Ceiling on one push write; a subscriber whose
            socket cannot take a frame within this window is dropped.
        batch_pushes: Master switch for coalescing; when False the home
            answers every subscriber with ``batch_enabled=False`` and
            sends only singleton frames, whatever the peer advertised.
        push_coalesce_s: Optional dwell after the head push before the
            queue is drained into a batch (0 disables).  A small dwell
            lets a burst of independent updates land in one frame at the
            cost of that much added push latency.
        shard_filtered_pushes: Master switch for shard-aware fan-out;
            when True (default) a subscriber that declares its cluster's
            shard topology on subscribe only receives pushes for updates
            whose affected template buckets it owns on the ring.  The
            affinity used is *conservative* (integrity constraints off),
            so a filtered push is never one the subscriber could need.
        Remaining keyword arguments are the
        :class:`~repro.net.service.WireServer` operational knobs.
    """

    def __init__(
        self,
        homes: HomeServer | Iterable[HomeServer],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        push_queue_size: int = 256,
        push_timeout_s: float = 5.0,
        batch_pushes: bool = True,
        push_coalesce_s: float = 0.0,
        update_dedup: UpdateDedup | None = None,
        shard_filtered_pushes: bool = True,
        **kwargs,
    ) -> None:
        kwargs.setdefault("server_id", "home")
        super().__init__(host, port, **kwargs)
        self._push_queue_size = push_queue_size
        self._push_timeout_s = push_timeout_s
        self._batch_pushes = batch_pushes
        self._push_coalesce_s = push_coalesce_s
        self._shard_filtered_pushes = shard_filtered_pushes
        self.update_dedup = update_dedup or UpdateDedup()
        if isinstance(homes, HomeServer):
            homes = [homes]
        self._homes: dict[str, HomeServer] = {}
        for home in homes:
            if home.app_id in self._homes:
                raise ValueError(f"duplicate application {home.app_id!r}")
            self._homes[home.app_id] = home
        self._subscribers: list[_Subscriber] = []
        # Per-application fan-out filtering inputs, built lazily.  The
        # affinity deliberately ignores integrity constraints: the home
        # must never filter a push a constraint-less subscriber would
        # have applied, so it always computes the *larger* affected set.
        self._affinities: dict[str, TemplateAffinity] = {}
        self._blind_queries: dict[str, bool] = {}
        #: Pushes skipped because the owning shard was someone else.
        self.pushes_filtered = 0

    @property
    def subscriber_count(self) -> int:
        """Live invalidation-stream channels (for tests/monitoring)."""
        return len(self._subscribers)

    def has_subscriber(self, node_id: str) -> bool:
        """True if a node's invalidation-stream channel is currently live."""
        return any(
            subscriber.node_id == node_id for subscriber in self._subscribers
        )

    def _home(self, app_id: str) -> HomeServer:
        try:
            return self._homes[app_id]
        except KeyError:
            raise UnknownApplicationError(app_id) from None

    def _fan_out_inputs(self, app_id: str) -> tuple[TemplateAffinity, bool]:
        """Conservative (constraints-off) affinity + blind-query flag."""
        affinity = self._affinities.get(app_id)
        if affinity is None:
            home = self._home(app_id)
            affinity = TemplateAffinity(
                home.registry, use_integrity_constraints=False
            )
            self._affinities[app_id] = affinity
            self._blind_queries[app_id] = policy_allows_blind_queries(
                home.policy
            )
        return affinity, self._blind_queries[app_id]

    async def handle(
        self, frame: Frame, context: ConnectionContext
    ) -> Frame | None:
        if isinstance(frame, QueryRequest):
            home = self._home(frame.envelope.app_id)
            result = home.serve_query(frame.envelope)
            return QueryResponse(result=result, cache_hit=False)
        if isinstance(frame, UpdateRequest):
            home = self._home(frame.envelope.app_id)
            # Dedup check, apply, and remember happen with no await in
            # between, so the sequence is atomic on the event loop — two
            # copies of the same request cannot interleave mid-apply.
            request_id = context.request_id
            opaque_id = frame.envelope.opaque_id
            if request_id is not None:
                remembered = self.update_dedup.get(request_id, opaque_id)
                if remembered is not None:
                    self.metrics.counter("home.dedup_hits").inc()
                    logger.info(
                        "duplicate update suppressed",
                        extra={
                            "ctx": {
                                "server": self.server_id,
                                "request_id": request_id,
                            }
                        },
                    )
                    return remembered
            rows = home.apply_update(frame.envelope)
            response = UpdateResponse(rows_affected=rows, invalidated=0)
            if request_id is not None:
                self.update_dedup.put(request_id, opaque_id, response)
            self._fan_out(frame, request_id=request_id)
            return response
        if isinstance(frame, SubscribeRequest):
            return self._subscribe(frame, context)
        if isinstance(frame, StatsRequest):
            return self._stats_response()
        raise WireError(f"unexpected frame {type(frame).__name__}")

    def stats_snapshot(self) -> dict:
        """Base snapshot + per-application load + fan-out queue depths."""
        snapshot = super().stats_snapshot()
        snapshot["role"] = "home"
        snapshot["applications"] = {
            app_id: {
                "queries_served": home.queries_served,
                "updates_applied": home.updates_applied,
            }
            for app_id, home in sorted(self._homes.items())
        }
        snapshot["subscribers"] = [
            {
                "node_id": subscriber.node_id,
                "app_ids": sorted(subscriber.app_ids),
                "queue_depth": subscriber.queue.qsize(),
                "shard_filtered": subscriber.ring is not None,
            }
            for subscriber in self._subscribers
        ]
        snapshot["pushes_filtered"] = self.pushes_filtered
        return snapshot

    # -- invalidation stream -----------------------------------------------

    def _subscribe(
        self, frame: SubscribeRequest, context: ConnectionContext
    ) -> SubscribeResponse:
        for app_id in frame.app_ids:
            self._home(app_id)  # all-or-nothing validation
        ring: HashRing | None = None
        if frame.shards and self._shard_filtered_pushes:
            if frame.node_id not in frame.shards:
                raise WireError(
                    f"subscriber {frame.node_id!r} is not in its declared "
                    f"shard set {sorted(frame.shards)}"
                )
            ring = HashRing(frame.shards, vnodes=frame.vnodes)
        subscriber = _Subscriber(
            frame.node_id,
            frozenset(frame.app_ids),
            context,
            self._push_queue_size,
            batch_enabled=frame.supports_batch and self._batch_pushes,
            ring=ring,
        )
        subscriber.sender = asyncio.create_task(self._push_loop(subscriber))
        self._subscribers.append(subscriber)
        context.on_close(lambda: self._unsubscribe(subscriber))
        return SubscribeResponse(
            app_ids=tuple(sorted(subscriber.app_ids)),
            batch_enabled=subscriber.batch_enabled,
            shard_filtered=ring is not None,
        )

    def _unsubscribe(self, subscriber: _Subscriber) -> None:
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            pass
        sender = subscriber.sender
        if (
            sender is not None
            and sender is not asyncio.current_task()
            and not sender.done()
        ):
            sender.cancel()

    def _fan_out(
        self, request: UpdateRequest, *, request_id: str | None = None
    ) -> None:
        """Enqueue the completed update for every subscribed node but the
        origin; the senders deliver asynchronously.

        The origin DSSP invalidates synchronously before acknowledging its
        client, so pushing to it as well would only double-count.  Never
        blocks: the update ack must not hostage on a slow subscriber.
        """
        app_id = request.envelope.app_id
        push = InvalidationPush(envelope=request.envelope)
        with trace_span("home.fanout_enqueue") as fanout_span:
            enqueued = filtered = 0
            for subscriber in list(self._subscribers):
                if app_id not in subscriber.app_ids:
                    continue
                if request.origin is not None and subscriber.node_id == request.origin:
                    continue
                if not self._shard_may_hold(subscriber, request):
                    self.pushes_filtered += 1
                    filtered += 1
                    self.metrics.counter("home.pushes_filtered").inc()
                    continue
                try:
                    subscriber.queue.put_nowait((push, request_id))
                    enqueued += 1
                    self.metrics.counter("home.pushes_enqueued").inc()
                except asyncio.QueueFull:
                    self.metrics.counter("home.subscribers_dropped").inc()
                    logger.warning(
                        "subscriber stalled with %d pushes pending; dropping",
                        subscriber.queue.qsize(),
                        extra={
                            "ctx": {
                                "server": self.server_id,
                                "node_id": subscriber.node_id,
                                "app_id": app_id,
                                "request_id": request_id,
                            }
                        },
                    )
                    self._drop(subscriber)
            fanout_span.set("enqueued", enqueued)
            fanout_span.set("filtered", filtered)

    def _shard_may_hold(
        self, subscriber: _Subscriber, request: UpdateRequest
    ) -> bool:
        """Whether a sharded subscriber can hold views this update affects.

        Unsharded subscribers always qualify.  For sharded ones the home
        asks :func:`shards_for_update` which shards own the affected
        template buckets on *this subscriber's* declared ring; ``None``
        (opaque update or a blind-query policy) falls back to push-to-all.
        """
        if subscriber.ring is None:
            return True
        affinity, blind = self._fan_out_inputs(request.envelope.app_id)
        shards = shards_for_update(
            request.envelope, subscriber.ring, affinity, blind
        )
        return shards is None or subscriber.node_id in shards

    def _coalesce(
        self, entries: list[tuple[InvalidationPush, str | None]]
    ) -> tuple[Frame, str | None, int]:
        """Collapse drained queue entries into one frame.

        Deduplicates literal re-pushes of the same ``(app_id, opaque_id)``
        — only exact repeats, never two distinct updates — then picks the
        cheapest framing: a singleton ``INVALIDATE`` for one survivor
        (byte-identical to the unbatched protocol), an
        ``INVALIDATE_BATCH`` otherwise.  Returns the frame, the request
        id to put in its header, and the invalidations it delivers.
        """
        seen: set[tuple[str, str]] = set()
        deduped: list[tuple[str | None, UpdateEnvelope]] = []
        for push, request_id in entries:
            key = (push.envelope.app_id, push.envelope.opaque_id)
            if key in seen:
                self.metrics.counter("home.push_dedup_dropped").inc()
                continue
            seen.add(key)
            deduped.append((request_id, push.envelope))
        if len(deduped) == 1:
            request_id, envelope = deduped[0]
            return InvalidationPush(envelope), request_id, 1
        return InvalidationBatch(tuple(deduped)), None, len(deduped)

    async def _push_loop(self, subscriber: _Subscriber) -> None:
        """Drain one subscriber's queue onto its channel until it dies.

        On a batching channel, everything queued behind the head push
        (plus anything arriving during the optional coalesce dwell) goes
        out as one frame.
        """
        try:
            while True:
                entries = [await subscriber.queue.get()]
                if subscriber.batch_enabled:
                    if self._push_coalesce_s > 0.0:
                        await asyncio.sleep(self._push_coalesce_s)
                    while len(entries) < wire.MAX_BATCH_ENTRIES:
                        try:
                            entries.append(subscriber.queue.get_nowait())
                        except asyncio.QueueEmpty:
                            break
                frame, request_id, delivered = self._coalesce(entries)
                send_wall = time.time()
                send_started = time.perf_counter()
                await asyncio.wait_for(
                    self._send(
                        subscriber.context, frame, request_id=request_id
                    ),
                    self._push_timeout_s,
                )
                self._record_push_spans(
                    frame,
                    request_id,
                    subscriber,
                    start_s=send_wall,
                    duration_s=time.perf_counter() - send_started,
                    delivered=delivered,
                )
                self.metrics.counter("home.push_frames").inc()
                self.metrics.counter("home.pushes_sent").inc(delivered)
                self.metrics.histogram("home.push_batch_size").observe(
                    delivered
                )
        except (ConnectionError, OSError, asyncio.TimeoutError, TimeoutError):
            self.metrics.counter("home.subscribers_dropped").inc()
            logger.warning(
                "dropping dead subscriber",
                extra={
                    "ctx": {
                        "server": self.server_id,
                        "node_id": subscriber.node_id,
                        "app_ids": ",".join(sorted(subscriber.app_ids)),
                    }
                },
            )
            self._drop(subscriber)

    def _record_push_spans(
        self,
        frame: Frame,
        request_id: str | None,
        subscriber: _Subscriber,
        *,
        start_s: float,
        duration_s: float,
        delivered: int,
    ) -> None:
        """One ``home.push_send`` span per coalesced entry's trace.

        A batched frame serves several traces at once, so the one timed
        send is recorded against every entry's trace id — each sampled
        trace sees the push that carried its invalidation.
        """
        if not self.tracer.enabled:
            return
        if isinstance(frame, InvalidationBatch):
            trace_ids = [entry_rid for entry_rid, _ in frame.entries]
        else:
            trace_ids = [request_id]
        for trace_id in trace_ids:
            self.tracer.record(
                trace_id,
                "home.push_send",
                start_s=start_s,
                duration_s=duration_s,
                subscriber=subscriber.node_id,
                batch=delivered,
            )

    def _drop(self, subscriber: _Subscriber) -> None:
        """Remove a subscriber and close its channel.

        Closing (rather than silently forgetting) is load-bearing: the DSSP
        node sees its stream end, reconnects, and flushes its cache for the
        affected applications — so the pushes it missed cannot leave it
        serving stale entries.
        """
        self._unsubscribe(subscriber)
        subscriber.context.writer.close()
