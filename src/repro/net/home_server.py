"""Networked home organization (paper Figure 2, right side, deployed).

Wraps one or more in-process :class:`~repro.dssp.homeserver.HomeServer`
instances behind the wire protocol:

* ``QUERY`` frames (cache misses forwarded by DSSP nodes) are opened,
  executed against the master database, and the result is sealed per the
  application's exposure policy before it travels back — exactly
  :meth:`HomeServer.serve_query`.
* ``UPDATE`` frames are applied to the master copy, acknowledged, and then
  **fanned out** on the invalidation stream: every subscribed DSSP node
  except the forwarding origin receives an ``INVALIDATE`` push carrying the
  same sealed update envelope.  This is the networked analogue of
  :meth:`~repro.dssp.cluster.DsspCluster.update` — the home organization
  still plays no part in invalidation *decisions*; it merely relays the
  completed update, as the paper's update stream does.
* ``SUBSCRIBE`` frames register a DSSP node's long-lived stream channel.
"""

from __future__ import annotations

import logging
from collections.abc import Iterable

from repro.dssp.homeserver import HomeServer
from repro.errors import UnknownApplicationError, WireError
from repro.net.service import ConnectionContext, WireServer
from repro.net.wire import (
    Frame,
    InvalidationPush,
    QueryRequest,
    QueryResponse,
    SubscribeRequest,
    SubscribeResponse,
    UpdateRequest,
    UpdateResponse,
)

__all__ = ["HomeNetServer"]

logger = logging.getLogger(__name__)


class _Subscriber:
    def __init__(
        self,
        node_id: str,
        app_ids: frozenset[str],
        context: ConnectionContext,
    ) -> None:
        self.node_id = node_id
        self.app_ids = app_ids
        self.context = context


class HomeNetServer(WireServer):
    """Asyncio server exposing home servers to DSSP nodes over the wire.

    Args:
        homes: The application home server(s) this endpoint masters.
        host/port: Bind address (port 0 picks an ephemeral port).
        Remaining keyword arguments are the
        :class:`~repro.net.service.WireServer` operational knobs.
    """

    def __init__(
        self,
        homes: HomeServer | Iterable[HomeServer],
        host: str = "127.0.0.1",
        port: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(host, port, **kwargs)
        if isinstance(homes, HomeServer):
            homes = [homes]
        self._homes: dict[str, HomeServer] = {}
        for home in homes:
            if home.app_id in self._homes:
                raise ValueError(f"duplicate application {home.app_id!r}")
            self._homes[home.app_id] = home
        self._subscribers: list[_Subscriber] = []

    @property
    def subscriber_count(self) -> int:
        """Live invalidation-stream channels (for tests/monitoring)."""
        return len(self._subscribers)

    def _home(self, app_id: str) -> HomeServer:
        try:
            return self._homes[app_id]
        except KeyError:
            raise UnknownApplicationError(app_id) from None

    async def handle(
        self, frame: Frame, context: ConnectionContext
    ) -> Frame | None:
        if isinstance(frame, QueryRequest):
            home = self._home(frame.envelope.app_id)
            result = home.serve_query(frame.envelope)
            return QueryResponse(result=result, cache_hit=False)
        if isinstance(frame, UpdateRequest):
            home = self._home(frame.envelope.app_id)
            rows = home.apply_update(frame.envelope)
            await self._fan_out(frame)
            return UpdateResponse(rows_affected=rows, invalidated=0)
        if isinstance(frame, SubscribeRequest):
            return self._subscribe(frame, context)
        raise WireError(f"unexpected frame {type(frame).__name__}")

    # -- invalidation stream -----------------------------------------------

    def _subscribe(
        self, frame: SubscribeRequest, context: ConnectionContext
    ) -> SubscribeResponse:
        for app_id in frame.app_ids:
            self._home(app_id)  # all-or-nothing validation
        subscriber = _Subscriber(
            frame.node_id, frozenset(frame.app_ids), context
        )
        self._subscribers.append(subscriber)
        context.on_close(lambda: self._unsubscribe(subscriber))
        return SubscribeResponse(app_ids=tuple(sorted(subscriber.app_ids)))

    def _unsubscribe(self, subscriber: _Subscriber) -> None:
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            pass

    async def _fan_out(self, request: UpdateRequest) -> None:
        """Push the completed update to every subscribed node but the origin.

        The origin DSSP invalidates synchronously before acknowledging its
        client, so pushing to it as well would only double-count.
        """
        app_id = request.envelope.app_id
        push = InvalidationPush(envelope=request.envelope)
        for subscriber in list(self._subscribers):
            if app_id not in subscriber.app_ids:
                continue
            if request.origin is not None and subscriber.node_id == request.origin:
                continue
            try:
                await self._send(subscriber.context, push)
            except (ConnectionError, OSError):
                logger.warning(
                    "dropping dead subscriber %s", subscriber.node_id
                )
                self._unsubscribe(subscriber)
