"""Networked DSSP node (paper Figure 2, left side, deployed).

Wraps a keyless :class:`~repro.dssp.proxy.DsspNode` behind the wire
protocol.  Tenancy is *remote*: the node holds each application's public
template registry and its own invalidation engine, while misses and
updates are forwarded to the application's home server over pooled
:class:`~repro.net.client.WireClient` connections.

Invalidation arrives two ways, mirroring :class:`~repro.dssp.cluster.DsspCluster`:

* **synchronously** for updates this node itself forwarded — it invalidates
  its cache before acknowledging the client, so a client never re-reads its
  own stale write through the same node;
* **asynchronously** over the home's invalidation stream for updates that
  entered through other nodes.  The subscription channel reconnects with
  backoff if it drops, and on (re)connect the node flushes its cache for
  the affected applications — pushes may have been missed while detached.
  The node advertises ``INVALIDATE_BATCH`` support on subscribe (unless
  ``batch_invalidations=False``); a coalesced batch is applied atomically
  — every entry invalidated in one synchronous sweep with no await in
  between, so no query can observe a half-applied batch.
"""

from __future__ import annotations

import asyncio
import logging

from repro.dssp.placement import query_placement_key
from repro.dssp.proxy import DsspNode
from repro.dssp.ring import DEFAULT_VNODES, HashRing
from repro.errors import (
    HomeUnreachableError,
    NetConnectionError,
    NetError,
    NetTimeoutError,
    ReproError,
    UnknownApplicationError,
    WireError,
)
from repro.net.client import RetryPolicy, WireClient
from repro.net.service import ConnectionContext, WireServer
from repro.net.wire import (
    Frame,
    InvalidationBatch,
    QueryRequest,
    QueryResponse,
    StatsRequest,
    SubscribeRequest,
    UpdateRequest,
    UpdateResponse,
)
from repro.obs import envelope_context
from repro.obs.trace import span as trace_span
from repro.templates.registry import TemplateRegistry

__all__ = ["DsspNetServer"]

logger = logging.getLogger(__name__)

#: Failures that mean the home could not be reached or never answered.
#: Typed errors the home *returned* (including its own shedding) are not
#: in this set: they travel back to the client with their own codes.
_TRANSPORT_FAILURES = (
    NetConnectionError,
    NetTimeoutError,
    ConnectionError,
    OSError,
)


class DsspNetServer(WireServer):
    """Asyncio server exposing one DSSP node to clients over the wire.

    Args:
        node: The cache + invalidation engine this server fronts.  Register
            applications through :meth:`register_application`, not directly
            on the node.
        node_id: Stable identity on home invalidation streams.
        subscribe_retry: Backoff schedule for re-opening dropped streams.
        batch_invalidations: Advertise ``INVALIDATE_BATCH`` support when
            subscribing (the home still decides; False forces singleton
            pushes on this node's streams).
        shards: Full shard membership of the cluster this node belongs to
            (must include ``node_id``).  When set, the node only *admits*
            entries whose placement key it owns on the consistent-hash
            ring — misses it merely routes are served pass-through — and
            it declares the topology on subscribe so the home can narrow
            invalidation fan-out to owning shards.
        vnodes: Virtual nodes per shard on the ring; must match across
            the cluster and the router.
    """

    def __init__(
        self,
        node: DsspNode,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        node_id: str = "dssp-0",
        subscribe_retry: RetryPolicy | None = None,
        home_retry: RetryPolicy | None = None,
        home_pool_size: int = 4,
        home_timeout_s: float = 30.0,
        batch_invalidations: bool = True,
        shards: tuple[str, ...] | None = None,
        vnodes: int = DEFAULT_VNODES,
        **kwargs,
    ) -> None:
        kwargs.setdefault("server_id", node_id)
        super().__init__(host, port, **kwargs)
        self.node = node
        self.node_id = node_id
        self._batch_invalidations = batch_invalidations
        self._shards: tuple[str, ...] = tuple(shards) if shards else ()
        self._vnodes = int(vnodes)
        self._ring: HashRing | None = None
        if self._shards:
            if node_id not in self._shards:
                raise WireError(
                    f"node {node_id!r} is not in its own shard set "
                    f"{sorted(self._shards)}"
                )
            self._ring = HashRing(self._shards, vnodes=self._vnodes)
        #: Misses served pass-through because another shard owns the key.
        self.passthrough_misses = 0
        # The node's cache and counters export through this server's
        # registry, so one STATS snapshot covers every layer of the node.
        node.stats.register_metrics(self.metrics)
        node.cache.register_metrics(self.metrics)
        self._subscribe_retry = subscribe_retry or RetryPolicy(
            attempts=1_000_000, backoff_s=0.05, max_backoff_s=2.0
        )
        self._home_retry = home_retry
        self._home_pool_size = home_pool_size
        self._home_timeout_s = home_timeout_s
        #: app_id -> home address; populated before start().
        self._home_addresses: dict[str, tuple[str, int]] = {}
        #: home address -> shared client.
        self._home_clients: dict[tuple[str, int], WireClient] = {}
        self._stream_tasks: list[asyncio.Task] = []
        #: Pushes applied from the invalidation stream (tests/monitoring).
        self.stream_pushes_applied = 0
        #: Safety flushes performed on (re)subscribe (tests/monitoring).
        self.stream_flushes = 0
        #: Failed subscribe attempts to the home (tests/monitoring).
        self.stream_subscribe_failures = 0

    # -- tenancy -----------------------------------------------------------

    def register_application(
        self,
        app_id: str,
        registry: TemplateRegistry,
        home_address: tuple[str, int],
    ) -> None:
        """Attach an application: public templates + its home's address.

        Idempotent on the node side, so a restarted server can wrap a
        still-warm :class:`DsspNode` without re-registering its tenants.
        """
        if not self.node.is_registered(app_id):
            self.node.register_remote(app_id, registry)
        self._home_addresses[app_id] = (home_address[0], int(home_address[1]))

    def _home_client(self, app_id: str) -> WireClient:
        try:
            address = self._home_addresses[app_id]
        except KeyError:
            raise UnknownApplicationError(app_id) from None
        client = self._home_clients.get(address)
        if client is None:
            client = WireClient(
                address[0],
                address[1],
                pool_size=self._home_pool_size,
                request_timeout_s=self._home_timeout_s,
                retry=self._home_retry,
                frame_observer=self._frame_observer,
                metrics=self.metrics,
                tracer=self.tracer,
            )
            self._home_clients[address] = client
        return client

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        address = await super().start()
        # One stream per home endpoint, covering all its applications.
        by_home: dict[tuple[str, int], list[str]] = {}
        for app_id, home in self._home_addresses.items():
            by_home.setdefault(home, []).append(app_id)
        for home, app_ids in sorted(by_home.items()):
            task = asyncio.create_task(
                self._stream_loop(home, tuple(sorted(app_ids)))
            )
            self._stream_tasks.append(task)
        return address

    async def stop(self) -> None:
        for task in self._stream_tasks:
            task.cancel()
        for task in self._stream_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._stream_tasks.clear()
        for client in self._home_clients.values():
            await client.aclose()
        self._home_clients.clear()
        await super().stop()

    # -- request handling --------------------------------------------------

    async def handle(
        self, frame: Frame, context: ConnectionContext
    ) -> Frame | None:
        if isinstance(frame, QueryRequest):
            return await self._handle_query(frame, context)
        if isinstance(frame, UpdateRequest):
            return await self._handle_update(frame, context)
        if isinstance(frame, StatsRequest):
            return self._stats_response()
        if isinstance(frame, SubscribeRequest):
            raise WireError("DSSP nodes do not serve invalidation streams")
        raise WireError(f"unexpected frame {type(frame).__name__}")

    async def _handle_query(
        self, frame: QueryRequest, context: ConnectionContext
    ) -> QueryResponse:
        envelope = frame.envelope
        cached = self.node.lookup(envelope)  # validates tenancy
        if cached is not None:
            return QueryResponse(result=cached, cache_hit=True)
        client = self._home_client(envelope.app_id)
        try:
            # The client's trace id rides the forwarded hop, so the home's
            # log records correlate with the originating request.
            with trace_span("dssp.miss_forward"):
                outcome = await client.query(
                    envelope, request_id=context.request_id
                )
        except _TRANSPORT_FAILURES as error:
            # Only transport-level trouble means "home unreachable"; a
            # home-side application error travels back typed as-is.
            raise HomeUnreachableError(
                f"forwarding miss to {client.host}:{client.port} failed: "
                f"{error}"
            ) from error
        if self._owns(envelope):
            self.node.admit(envelope, outcome.result)
        else:
            # Serving pass-through keeps home-side shard filtering sound:
            # the home only pushes invalidations to the owning shard, so a
            # non-owner must never hold a copy it would not hear about.
            self.passthrough_misses += 1
            self.metrics.counter("dssp.passthrough_misses").inc()
        return QueryResponse(result=outcome.result, cache_hit=False)

    def _owns(self, envelope) -> bool:
        """Whether this node's shard owns the envelope's placement key."""
        if self._ring is None:
            return True
        return self._ring.owner(query_placement_key(envelope)) == self.node_id

    async def _handle_update(
        self, frame: UpdateRequest, context: ConnectionContext
    ) -> UpdateResponse:
        envelope = frame.envelope
        client = self._home_client(envelope.app_id)
        try:
            with trace_span("dssp.update_forward"):
                ack = await client.update(
                    envelope,
                    origin=self.node_id,
                    request_id=context.request_id,
                )
        except _TRANSPORT_FAILURES as error:
            raise HomeUnreachableError(
                f"forwarding update to {client.host}:{client.port} failed: "
                f"{error}"
            ) from error
        invalidated = self.node.invalidate_for(envelope)
        return UpdateResponse(
            rows_affected=ack.rows_affected, invalidated=invalidated
        )

    def stats_snapshot(self) -> dict:
        """Base snapshot + the node's cache/invalidation counters."""
        snapshot = super().stats_snapshot()
        snapshot["role"] = "dssp"
        snapshot["dssp"] = self.node.snapshot()
        snapshot["stream_pushes_applied"] = self.stream_pushes_applied
        snapshot["stream_flushes"] = self.stream_flushes
        snapshot["stream_subscribe_failures"] = self.stream_subscribe_failures
        snapshot["applications"] = sorted(self._home_addresses)
        if self._shards:
            snapshot["shards"] = sorted(self._shards)
            snapshot["passthrough_misses"] = self.passthrough_misses
        return snapshot

    # -- invalidation stream -----------------------------------------------

    def _apply_push(
        self, envelope, request_id: str | None, stream_ctx: dict
    ) -> None:
        """Invalidate for one pushed update; failures log, never kill."""
        try:
            # Per-entry trace id: the push span joins the trace of the
            # update that caused it, on whichever node receives it.
            with self.tracer.trace(request_id, "dssp.stream_apply"):
                self.node.invalidate_for(envelope)
            self.stream_pushes_applied += 1
            self.metrics.counter("dssp.stream_pushes").inc()
        except ReproError:
            logger.exception(
                "invalidation push failed",
                extra={
                    "ctx": {
                        **stream_ctx,
                        "request_id": request_id,
                        **envelope_context(envelope),
                    }
                },
            )

    async def _stream_loop(
        self, home: tuple[str, int], app_ids: tuple[str, ...]
    ) -> None:
        """Keep one invalidation-stream subscription alive with backoff."""
        attempt = 0
        while True:
            client = self._home_clients.get(home)
            if client is None:
                client = self._home_client(
                    next(
                        app
                        for app, addr in self._home_addresses.items()
                        if addr == home
                    )
                )
            stream_ctx = {
                "server": self.server_id,
                "home": f"{home[0]}:{home[1]}",
                "app_ids": ",".join(app_ids),
            }
            try:
                subscription = await client.subscribe(
                    self.node_id,
                    app_ids,
                    supports_batch=self._batch_invalidations,
                    shards=self._shards,
                    vnodes=self._vnodes if self._shards else 0,
                )
            except (NetError, ConnectionError, OSError) as error:
                self.stream_subscribe_failures += 1
                logger.debug(
                    "subscribe to %s:%s failed (%s); retrying",
                    *home,
                    error,
                    extra={"ctx": stream_ctx},
                )
                await asyncio.sleep(self._subscribe_retry.delay(attempt))
                attempt = min(attempt + 1, 16)
                continue
            attempt = 0
            # Pushes may have been lost while detached: without a stream
            # cursor, the only safe move is to drop the apps' entries on
            # *every* successful subscribe — on a cold cache (normal first
            # connect) this is a no-op, but a restarted server wrapping a
            # still-warm node must not serve entries that went stale while
            # no subscription existed.
            self.metrics.counter("dssp.stream_reconnects").inc()
            logger.debug(
                "invalidation stream connected; flushing applications",
                extra={"ctx": stream_ctx},
            )
            for app_id in app_ids:
                self.node.cache.invalidate_app(app_id)
            self.stream_flushes += 1
            try:
                async for event, request_id in subscription.events():
                    if isinstance(event, InvalidationBatch):
                        # Atomic on the event loop: every entry is applied
                        # in one synchronous sweep, so no concurrently
                        # served query can observe a half-applied batch.
                        for entry_rid, envelope in event.entries:
                            self._apply_push(envelope, entry_rid, stream_ctx)
                        self.metrics.counter("dssp.stream_batches").inc()
                        self.metrics.histogram(
                            "dssp.stream_batch_size"
                        ).observe(len(event.entries))
                    else:
                        self._apply_push(
                            event.envelope, request_id, stream_ctx
                        )
            except (NetError, ConnectionError, OSError) as error:
                # A garbled or error frame mid-stream must not kill this
                # task — that would leave the node serving a cache nobody
                # invalidates.  Treat it like a dropped channel: close,
                # reconnect, flush.
                logger.warning(
                    "invalidation stream failed (%s); reconnecting",
                    error,
                    extra={"ctx": stream_ctx},
                )
            finally:
                await subscription.aclose()
            # events() ended: channel dropped; loop to reconnect.
