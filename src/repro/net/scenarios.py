"""Named traffic scenarios over a live in-process DSSP topology.

A scenario bundles the moving parts one knee-curve measurement needs —
applications with data, a home endpoint, DSSP node(s) with an injected
service latency, wire clients, tenant weights, and a matching arrival
process — behind one name, so ``repro loadgen --scenario flash_crowd``
and the CI benchmark mean the same experiment:

- ``steady`` — one application under Poisson arrivals; the baseline
  knee-curve scenario.
- ``flash_crowd`` — Poisson baseline plus a mid-run spike that multiplies
  the offered rate and concentrates most of the surge on the workload's
  hottest query template.
- ``multi_tenant`` — one heavy application plus three light ones sharing
  a single DSSP whose ``max_in_flight`` is deliberately small, so
  overload sheds; the per-app books say whether shedding starves the
  light tenants.
- ``diurnal`` — one application under a sinusoidal day-curve.

The deployment is in-process (asyncio localhost sockets, same stack as
``tests/net``), so scenarios run anywhere the test suite runs; the
arrival schedule — not the topology — is the experiment variable.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field

from repro.analysis.exposure import ExposurePolicy
from repro.crypto import Keyring
from repro.crypto.envelope import EnvelopeCodec
from repro.dssp import DsspNode, HomeServer
from repro.dssp.invalidation import StrategyClass
from repro.errors import WorkloadError
from repro.net.dssp_server import DsspNetServer
from repro.net.home_server import HomeNetServer
from repro.net.client import RetryPolicy, WireClient
from repro.net.loadgen import LoadReport, TenantWorkload, run_open_load
from repro.net.traffic import (
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
)
from repro.obs import merge_snapshots
from repro.workloads import get_application, toystore_spec
from repro.workloads.base import Operation
from repro.workloads.trace import Trace, record_trace

__all__ = [
    "SCENARIOS",
    "ScenarioDeployment",
    "deploy_scenario",
    "find_knee",
    "flash_crowd_trace",
    "hot_query_page",
    "run_scenario",
    "scenario_arrivals",
    "sweep_scenario",
]


@dataclass(frozen=True)
class _ScenarioSpec:
    description: str
    arrival_kind: str
    multi_tenant: bool
    #: Per-node concurrent-request ceiling; the shared-DSSP scenario keeps
    #: it small so overload sheds instead of queueing.
    max_in_flight: int
    #: Client pipeline window — the in-flight budget per endpoint.  Under
    #: open-loop overload the excess queues client-side, which is where
    #: the tail latency the knee is detected on comes from.
    pipeline: int


#: The named scenarios ``repro loadgen --scenario`` accepts.
SCENARIOS: dict[str, _ScenarioSpec] = {
    "steady": _ScenarioSpec(
        "one application, Poisson arrivals", "poisson", False, 64, 16
    ),
    "flash_crowd": _ScenarioSpec(
        "mid-run spike concentrated on the hottest template",
        "flash_crowd",
        False,
        64,
        16,
    ),
    "multi_tenant": _ScenarioSpec(
        "one heavy + three light apps sharing a small DSSP",
        "poisson",
        True,
        8,
        32,
    ),
    "diurnal": _ScenarioSpec(
        "sinusoidal day-curve arrivals", "diurnal", False, 64, 16
    ),
}

#: Tenant arrival shares for ``multi_tenant``.
HEAVY_WEIGHT = 0.7
LIGHT_WEIGHT = 0.1


def _spec_for(app: str):
    if app == "toystore":
        return toystore_spec()
    return get_application(app)


def _light_apps(heavy_app: str) -> tuple[str, ...]:
    candidates = ("auction", "bboard", "bookstore", "toystore")
    return tuple(app for app in candidates if app != heavy_app)[:3]


def hot_query_page(
    trace: Trace, registry
) -> tuple[Operation, ...] | None:
    """The most frequent recorded query, as a one-operation page.

    This is the page a flash crowd piles onto: everybody loading the
    same product page.  ``None`` when the trace has no queries.
    """
    frequency: dict[tuple[str, tuple], int] = {}
    for page in trace.iter_pages():
        for kind, name, params in page:
            if kind == "query":
                key = (name, tuple(params))
                frequency[key] = frequency.get(key, 0) + 1
    if not frequency:
        return None
    (name, params), _ = max(
        frequency.items(), key=lambda item: (item[1], item[0])
    )
    bound = registry.query(name).bind(list(params))
    return (Operation.query(bound),)


def flash_crowd_trace(
    trace: Trace,
    registry,
    *,
    seed: int,
    spike_start_frac: float = 0.4,
    spike_frac: float = 0.3,
    hot_fraction: float = 0.8,
) -> Trace:
    """A copy of ``trace`` whose mid-run pages pile onto the hot query.

    For closed-loop replayers (the chaos oracle) that cannot take an
    arrival schedule: pages in the spike window of the *page sequence*
    are replaced by the hot one-query page with probability
    ``hot_fraction``, seeded, so the reference replay sees the identical
    stream.  Updates outside the window are untouched — the oracle still
    exercises invalidation against the concentrated reads.
    """
    hot = hot_query_page(trace, registry)
    if hot is None:
        raise WorkloadError("trace has no queries to concentrate on")
    operation = hot[0]
    hot_page = [
        (
            "query",
            operation.bound.template.name,
            list(operation.bound.params),
        )
    ]
    rng = random.Random(f"flashtrace:{seed}")
    total = len(trace.pages)
    spike_start = spike_start_frac * total
    spike_end = (spike_start_frac + spike_frac) * total
    pages = []
    for index, page in enumerate(trace.iter_pages()):
        in_spike = spike_start <= index < spike_end
        if in_spike and rng.random() < hot_fraction:
            pages.append([tuple(entry) for entry in hot_page])
        else:
            pages.append(page)
    return Trace(application=trace.application, pages=pages)


def scenario_arrivals(name: str, rate: float, seed: int, **overrides):
    """The arrival process a named scenario runs under."""
    spec = SCENARIOS.get(name)
    if spec is None:
        raise WorkloadError(
            f"unknown scenario {name!r}; pick one of "
            f"{', '.join(sorted(SCENARIOS))}"
        )
    if spec.arrival_kind == "flash_crowd":
        return FlashCrowdArrivals(rate=rate, seed=seed, **overrides)
    if spec.arrival_kind == "diurnal":
        return DiurnalArrivals(rate=rate, seed=seed, **overrides)
    return PoissonArrivals(rate=rate, seed=seed, **overrides)


@dataclass
class ScenarioDeployment:
    """A started scenario topology: stop() releases every socket."""

    name: str
    seed: int
    home_net: HomeNetServer
    servers: list[DsspNetServer]
    clients: list[WireClient]
    tenants: list[TenantWorkload]
    spec: _ScenarioSpec = field(repr=False)

    async def stop(self) -> None:
        for client in self.clients:
            await client.aclose()
        for server in self.servers:
            await server.stop()
        await self.home_net.stop()

    def server_snapshot(self) -> dict:
        """Merged metrics snapshot across the DSSP fleet.

        Feed this to :func:`repro.obs.per_app_counters` to recover the
        per-application request/shed books.
        """
        return merge_snapshots(
            *(server.metrics.snapshot() for server in self.servers)
        )

    def sum_invalidations(self) -> int:
        return sum(server.node.stats.invalidations for server in self.servers)


def _make_service_latency(latency_s: float):
    async def hook(frame, request_id):
        await asyncio.sleep(latency_s)

    return hook


async def deploy_scenario(
    name: str,
    *,
    heavy_app: str = "bookstore",
    scale: float = 0.2,
    seed: int = 1,
    nodes: int = 1,
    trace_pages: int = 400,
    service_latency_s: float = 0.004,
    max_in_flight: int | None = None,
    pipeline: int | None = None,
    retry_attempts: int = 1,
) -> ScenarioDeployment:
    """Stand up a named scenario on localhost sockets.

    ``trace_pages`` bounds how many pages a run (or a sweep) can issue
    before the trace wraps; replayed INSERTs collide on wrap, so size it
    above the total pages the measurement will issue.

    ``retry_attempts=1`` (the default) keeps the books exact: every
    client-side operation maps to exactly one server request, so per-app
    server counters reconcile with the report.  Raise it to measure
    retry behaviour instead of accounting.
    """
    spec = SCENARIOS.get(name)
    if spec is None:
        raise WorkloadError(
            f"unknown scenario {name!r}; pick one of "
            f"{', '.join(sorted(SCENARIOS))}"
        )
    max_in_flight = (
        spec.max_in_flight if max_in_flight is None else max_in_flight
    )
    pipeline = spec.pipeline if pipeline is None else pipeline
    apps = [heavy_app]
    weights = [1.0]
    if spec.multi_tenant:
        apps.extend(_light_apps(heavy_app))
        weights = [HEAVY_WEIGHT] + [LIGHT_WEIGHT] * (len(apps) - 1)

    homes = []
    tenants: list[TenantWorkload] = []
    registries = []
    for index, app in enumerate(apps):
        app_spec = _spec_for(app)
        instance = app_spec.instantiate(scale=scale, seed=seed + index)
        policy = ExposurePolicy.uniform(
            app_spec.registry, StrategyClass.MVIS.exposure_level
        )
        keyring = Keyring(app, app.encode().ljust(32, b"k")[:32])
        homes.append(
            HomeServer(
                app, instance.database, app_spec.registry, policy, keyring
            )
        )
        trace = record_trace(
            instance.sampler, trace_pages, seed=seed + index, application=app
        ).bind(app_spec.registry)
        hot_page = None
        if name == "flash_crowd" and app == heavy_app:
            hot_page = hot_query_page(trace, app_spec.registry)
        registries.append(app_spec.registry)
        tenants.append(
            TenantWorkload(
                app=app,
                codec=EnvelopeCodec(keyring),
                policy=policy,
                trace=trace,
                weight=weights[index],
                hot_page=hot_page,
            )
        )

    home_net = HomeNetServer(homes)
    await home_net.start()
    servers: list[DsspNetServer] = []
    clients: list[WireClient] = []
    try:
        for index in range(nodes):
            server = DsspNetServer(
                DsspNode(),
                node_id=f"dssp-{index}",
                fault_hook=_make_service_latency(service_latency_s),
                max_in_flight=max_in_flight,
            )
            for tenant, registry in zip(tenants, registries):
                server.register_application(
                    tenant.app, registry, home_net.address
                )
            await server.start()
            servers.append(server)
            clients.append(
                WireClient(
                    *server.address,
                    pipeline=pipeline,
                    retry=RetryPolicy(attempts=retry_attempts),
                )
            )
    except BaseException:
        for client in clients:
            await client.aclose()
        for server in servers:
            await server.stop()
        await home_net.stop()
        raise
    return ScenarioDeployment(
        name=name,
        seed=seed,
        home_net=home_net,
        servers=servers,
        clients=clients,
        tenants=tenants,
        spec=spec,
    )


async def run_scenario(
    deployment: ScenarioDeployment,
    *,
    rate: float,
    duration_s: float,
    seed: int | None = None,
    max_outstanding: int = 64,
    arrival_options: dict | None = None,
) -> LoadReport:
    """One open-loop run of the deployed scenario at ``rate``.

    Returns the :class:`LoadReport` with the schedule's digest attached
    (``report.arrival``) and the fleet's invalidation delta measured
    around the run.
    """
    seed = deployment.seed if seed is None else seed
    arrivals = scenario_arrivals(
        deployment.name, rate, seed, **(arrival_options or {})
    )
    schedule = arrivals.schedule(duration_s)
    before = deployment.sum_invalidations()
    report = await run_open_load(
        deployment.clients,
        deployment.tenants,
        schedule,
        max_outstanding=max_outstanding,
    )
    return report.with_invalidations(deployment.sum_invalidations() - before)


def find_knee(points: list[dict], deadline_s: float) -> float | None:
    """Last offered rate (ascending) with p99 still under the deadline.

    The prefix has to hold too: a point past saturation whose p99 dips
    back under the deadline (drops thin the histogram) must not resurrect
    the knee.  ``None`` when even the first point blows the deadline.
    """
    knee = None
    for point in points:
        if point["p99_s"] > deadline_s:
            break
        knee = point["offered_rate_s"]
    return knee


async def sweep_scenario(
    deployment: ScenarioDeployment,
    *,
    rates: list[float],
    duration_s: float,
    deadline_s: float,
    seed: int | None = None,
    max_outstanding: int = 64,
) -> dict:
    """Tail latency vs offered load across ``rates``; the knee curve.

    One deployment serves the whole ascending sweep (caches stay warm —
    the paper's steady-state assumption), each point is one seeded
    open-loop run, and the knee is the last offered rate whose p99 held
    the deadline.
    """
    if list(rates) != sorted(rates):
        raise WorkloadError(f"sweep rates must ascend, got {rates}")
    points = []
    for rate in rates:
        report = await run_scenario(
            deployment,
            rate=rate,
            duration_s=duration_s,
            seed=seed,
            max_outstanding=max_outstanding,
        )
        points.append(
            {
                "rate": rate,
                "offered_rate_s": report.offered_rate_s,
                "achieved_rate_s": report.achieved_rate_s,
                "drop_rate": report.drop_rate,
                "offered": report.offered,
                "issued": report.issued,
                "dropped": report.dropped,
                "pages": report.pages,
                "late_pages": report.late_pages,
                "errors": report.errors,
                "hit_rate": report.hit_rate,
                "p50_s": report.p50_s,
                "p90_s": report.p90_s,
                "p99_s": report.p99_s,
                "arrival": report.arrival,
            }
        )
    return {
        "scenario": deployment.name,
        "deadline_s": deadline_s,
        "duration_s": duration_s,
        "points": points,
        "knee_rate_s": find_knee(points, deadline_s),
    }
