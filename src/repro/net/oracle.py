"""End-to-end consistency oracle for the networked DSSP under chaos.

The trusted specification is the in-process engine (:mod:`repro.dssp` +
:mod:`repro.storage`): a reference database that applies every *acked*
update exactly once.  The oracle drives the identical workload trace
through a live 2+-node networked topology wrapped in
:class:`~repro.net.chaos.ChaosProxy` instances, and asserts three
guarantees the paper's correctness argument rests on:

* **No stale reads** — every query answer equals what the reference
  database holds at that point in the trace.  Because the networked
  invalidation path may only *over*-invalidate (synchronous origin
  invalidation, stream pushes, reconnect flushes), any divergence means an
  entry survived that the reference engine would have killed:
  under-invalidation, the one forbidden failure.
* **No lost acked updates** — an acknowledged update is eventually visible
  (its invalidations reach every node, and its effect is in the home's
  master copy at the end).
* **Convergence** — after the trace, the networked home database equals
  the reference database table by table.

The runner is deliberately *sequential* (one operation in flight) and
waits for invalidation convergence after every acked update.  That is
what makes the check exact rather than probabilistic: at each query the
reference state is unambiguous, and — together with the frame-indexed
fault plan — what makes the whole chaos run deterministic.
"""

from __future__ import annotations

import asyncio
import logging
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.exposure import ExposurePolicy
from repro.crypto.envelope import EnvelopeCodec
from repro.crypto.keyring import Keyring
from repro.dssp.homeserver import HomeServer
from repro.dssp.placement import (
    TemplateAffinity,
    policy_allows_blind_queries,
    query_placement_key,
    shards_for_update,
    update_routing_key,
)
from repro.dssp.proxy import DsspNode
from repro.dssp.ring import DEFAULT_VNODES, HashRing
from repro.errors import (
    HomeUnreachableError,
    NetConnectionError,
    NetError,
    NetTimeoutError,
    ServerOverloadedError,
    WireError,
    WorkloadError,
)
from repro.net.chaos import ChaosLog, ChaosProxy, FaultEvent, FaultPlan
from repro.net.client import RetryPolicy, WireClient
from repro.net.dssp_server import DsspNetServer
from repro.net.home_server import HomeNetServer, UpdateDedup
from repro.obs import SpanRecorder, SpanSink
from repro.storage.backends import InMemoryBackend, wrap_database
from repro.storage.database import Database
from repro.storage.rows import sort_key
from repro.templates.registry import TemplateRegistry
from repro.workloads.trace import Trace

__all__ = [
    "ChaosRunner",
    "ChaosTopology",
    "OracleReport",
    "Violation",
    "run_chaos",
]

logger = logging.getLogger(__name__)

#: Failures the runner absorbs by retrying the operation under the same
#: request id.  Anything else (UNKNOWN_APP, INTERNAL, ...) is a harness or
#: workload configuration error and fails the run loudly.
_RETRYABLE = (
    NetConnectionError,
    NetTimeoutError,
    HomeUnreachableError,
    ServerOverloadedError,
    WireError,
)


@dataclass(frozen=True)
class Violation:
    """One observed breach of the oracle's guarantees."""

    kind: str  # stale_read | lost_update | db_divergence | liveness | fatal
    op_index: int
    node: str
    template: str
    detail: str

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "op_index": self.op_index,
            "node": self.node,
            "template": self.template,
            "detail": self.detail,
        }


@dataclass
class OracleReport:
    """Outcome of one chaos run: counts, faults, and any violations."""

    seed: int
    pages: int = 0
    queries: int = 0
    updates: int = 0
    hits: int = 0
    retries: int = 0
    kills: int = 0
    fault_counts: dict = field(default_factory=dict)
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "pages": self.pages,
            "queries": self.queries,
            "updates": self.updates,
            "hits": self.hits,
            "retries": self.retries,
            "kills": self.kills,
            "fault_counts": dict(self.fault_counts),
            "violations": [v.to_dict() for v in self.violations],
        }

    def summary(self) -> str:
        faults = sum(self.fault_counts.values())
        verdict = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (
            f"seed={self.seed} pages={self.pages} queries={self.queries} "
            f"updates={self.updates} hits={self.hits} retries={self.retries} "
            f"faults={faults} kills={self.kills} -> {verdict}"
        )


class _NodeHandle:
    """One DSSP node's live pieces; the server is replaced on restart."""

    def __init__(self, name: str, node: DsspNode) -> None:
        self.name = name
        self.node = node
        self.server: DsspNetServer | None = None
        self.port: int = 0
        self.home_proxy: ChaosProxy | None = None
        self.client_proxy: ChaosProxy | None = None
        self.client: WireClient | None = None


class ChaosTopology:
    """A live N-node DSSP deployment with chaos proxies on every link.

    Wire paths (faults can strike any frame on any proxied hop)::

        oracle client --[ChaosProxy]--> DsspNetServer --[ChaosProxy]--> HomeNetServer
                                            ^--- invalidation stream ---'

    Kills are whole-server events: :meth:`kill_restart` stops a server,
    rebinds a fresh one on the same port over the surviving durable state
    (the home's database + idempotency log, or the node's warm cache), and
    waits for every invalidation stream to re-establish — so a kill never
    leaves the fault schedule's frame accounting ambiguous.
    """

    def __init__(
        self,
        app_id: str,
        registry: TemplateRegistry,
        database: Database,
        policy: ExposurePolicy,
        *,
        plan: FaultPlan,
        log: ChaosLog,
        nodes: int = 2,
        keyring: Keyring | None = None,
        pipeline: int | None = None,
        batch_invalidations: bool = True,
        shards: bool = False,
        vnodes: int = DEFAULT_VNODES,
        backend: str = "memory",
        db_path=None,
        trace_dir=None,
        trace_sample: float = 1.0,
        predicate_index: bool = False,
    ) -> None:
        if nodes < 1:
            raise WorkloadError("chaos topology needs at least one node")
        #: Span tracing: one recorder (and span-log file) per logical node,
        #: reused across kill/restart cycles so a restarted server keeps
        #: appending to the same log.  None = tracing off.
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.trace_sample = trace_sample
        self._tracers: dict[str, SpanRecorder] = {}
        #: Per-client pipelining window (None = serial pooled transport).
        #: The oracle runner stays sequential either way; a window just
        #: routes its operations through the multiplexed channel, so the
        #: pending-map/reader machinery is what the faults exercise.
        self.pipeline = pipeline
        self.batch_invalidations = batch_invalidations
        self.app_id = app_id
        self.registry = registry
        self.policy = policy
        self.plan = plan
        self.log = log
        self.keyring = keyring or Keyring(app_id)
        self.codec = EnvelopeCodec(self.keyring)
        #: The live system's master copy (the caller's database is cloned,
        #: so the reference model can clone the same pristine state).
        #: ``backend="sqlite"`` puts the master behind a durable
        #: :class:`~repro.storage.backends.SqliteBackend` at ``db_path``;
        #: the reference model then runs on an :class:`InMemoryBackend` so
        #: both sides share the canonical ORDER BY/LIMIT semantics (a raw
        #: Database reference would false-positive on tie order).
        self.backend = backend
        self.db_path = db_path
        if backend == "memory":
            home_database = database.clone()
            self.reference_database = home_database
        else:
            home_database = wrap_database(backend, database, path=db_path)
            self.reference_database = InMemoryBackend(database.clone())
        self.home = HomeServer(
            app_id, home_database, registry, policy, self.keyring
        )
        #: Survives home restarts: models the durable idempotency log.
        self.dedup = UpdateDedup()
        self.home_net: HomeNetServer | None = None
        self.home_port: int = 0
        self.predicate_index = predicate_index
        self.handles = [
            _NodeHandle(f"dssp-{i}", DsspNode(predicate_index=predicate_index))
            for i in range(nodes)
        ]
        #: Sharded mode: the nodes form a consistent-hash cluster, each
        #: admitting only keys it owns, and the home narrows invalidation
        #: fan-out to owning shards.  The topology keeps its own copy of
        #: the ring and the home's *conservative* (constraints-off)
        #: affinity so the oracle can predict which nodes a push reaches.
        self.sharded = shards
        self.vnodes = vnodes
        self.ring: HashRing | None = None
        self.affinity: TemplateAffinity | None = None
        self.blind_queries = False
        if shards:
            self.ring = HashRing(
                tuple(handle.name for handle in self.handles), vnodes=vnodes
            )
            self.affinity = TemplateAffinity(
                registry, use_integrity_constraints=False
            )
            self.blind_queries = policy_allows_blind_queries(policy)

    @property
    def clients(self) -> list[WireClient]:
        return [handle.client for handle in self.handles]

    def handle_for(self, name: str) -> _NodeHandle:
        return next(h for h in self.handles if h.name == name)

    # -- lifecycle ---------------------------------------------------------

    def _policy_seed(self, salt: int) -> int:
        return self.plan.seed * 1000 + salt

    def tracer(self, node_id: str) -> SpanRecorder | None:
        """The per-node recorder (shared across restarts), or None."""
        if self.trace_dir is None:
            return None
        recorder = self._tracers.get(node_id)
        if recorder is None:
            recorder = SpanRecorder(
                node_id,
                SpanSink(self.trace_dir / f"{node_id}.spans.jsonl"),
                sample_rate=self.trace_sample,
            )
            self._tracers[node_id] = recorder
        return recorder

    def span_logs(self) -> list[Path]:
        """Paths of every span log this topology wrote (may be empty)."""
        return [
            recorder.sink.path for recorder in self._tracers.values()
        ]

    def _new_home_server(self) -> HomeNetServer:
        return HomeNetServer(
            self.home,
            port=self.home_port,
            update_dedup=self.dedup,
            request_timeout_s=5.0,
            push_timeout_s=2.0,
            tracer=self.tracer("home"),
        )

    def _new_dssp_server(self, index: int) -> DsspNetServer:
        handle = self.handles[index]
        server = DsspNetServer(
            handle.node,
            port=handle.port,
            node_id=handle.name,
            request_timeout_s=5.0,
            home_pool_size=1,
            home_timeout_s=2.0,
            home_retry=RetryPolicy(
                attempts=2,
                backoff_s=0.005,
                max_backoff_s=0.05,
                seed=self._policy_seed(10 + index),
            ),
            subscribe_retry=RetryPolicy(
                attempts=1_000_000,
                backoff_s=0.005,
                max_backoff_s=0.1,
                seed=self._policy_seed(20 + index),
            ),
            batch_invalidations=self.batch_invalidations,
            shards=(
                tuple(h.name for h in self.handles) if self.sharded else None
            ),
            vnodes=self.vnodes,
            tracer=self.tracer(handle.name),
        )
        server.register_application(
            self.app_id, self.registry, handle.home_proxy.address
        )
        return server

    async def start(self) -> None:
        self.home_net = self._new_home_server()
        host, self.home_port = await self.home_net.start()
        for index, handle in enumerate(self.handles):
            handle.home_proxy = ChaosProxy(
                (host, self.home_port),
                self.plan,
                f"{handle.name}->home",
                self.log,
            )
            await handle.home_proxy.start()
            handle.server = self._new_dssp_server(index)
            _, handle.port = await handle.server.start()
            handle.client_proxy = ChaosProxy(
                ("127.0.0.1", handle.port),
                self.plan,
                f"client->{handle.name}",
                self.log,
            )
            proxy_host, proxy_port = await handle.client_proxy.start()
            handle.client = WireClient(
                proxy_host,
                proxy_port,
                pool_size=1,
                request_timeout_s=3.0,
                retry=RetryPolicy(
                    attempts=3,
                    backoff_s=0.005,
                    max_backoff_s=0.05,
                    seed=self._policy_seed(30 + index),
                ),
                pipeline=self.pipeline,
                tracer=self.tracer("client"),
            )
        await self.wait_streams()

    async def stop(self) -> None:
        for handle in self.handles:
            if handle.client is not None:
                await handle.client.aclose()
        for handle in self.handles:
            if handle.server is not None:
                await handle.server.stop()
        if self.home_net is not None:
            await self.home_net.stop()
        for handle in self.handles:
            if handle.client_proxy is not None:
                await handle.client_proxy.stop()
            if handle.home_proxy is not None:
                await handle.home_proxy.stop()
        if self.backend != "memory":
            self.home.database.close()
        for recorder in self._tracers.values():
            recorder.close()

    # -- chaos events ------------------------------------------------------

    async def kill_restart(self, target: str) -> None:
        """Kill and restart one server by name (``home`` or ``dssp-i``).

        Returns only once every affected invalidation stream has fully
        re-established *and re-flushed*.  The barrier is what keeps kills
        deterministic: no operation runs while a subscription (or its
        safety flush) is half-done, so cache contents — and therefore the
        exact frame sequence the fault plan sees — never depend on restart
        timing.
        """
        if target == "home":
            baselines = {
                handle.name: handle.server.stream_flushes
                for handle in self.handles
            }
            await self.home_net.stop()
            if self.backend == "sqlite" and self.db_path is not None:
                # Model a full process death, not just a dropped listener:
                # discard every in-memory structure and resume from what
                # the durable file holds.  Only ``self.dedup`` survives —
                # it stands in for the durable idempotency log.
                old = self.home.database
                old.close()
                reopened = wrap_database(
                    "sqlite", self.reference_database.database,
                    path=self.db_path,
                )
                self.home = HomeServer(
                    self.app_id,
                    reopened,
                    self.registry,
                    self.policy,
                    self.keyring,
                )
            self.home_net = self._new_home_server()
            await self.home_net.start()
            await self.wait_streams(baselines)
            return
        index = next(
            i
            for i, handle in enumerate(self.handles)
            if handle.name == target
        )
        handle = self.handles[index]
        await handle.server.stop()
        # The old subscription must be fully gone from the home before the
        # replacement subscribes, or a lingering half-dead channel could
        # swallow (or leak) a push unpredictably.
        await _eventually(
            lambda: not self.home_net.has_subscriber(handle.name),
            10.0,
            f"{handle.name} old stream teardown",
        )
        handle.server = self._new_dssp_server(index)
        await handle.server.start()
        await self.wait_streams({handle.name: 0})

    async def wait_streams(
        self,
        flush_baselines: dict[str, int] | None = None,
        timeout_s: float = 20.0,
    ) -> None:
        """Block until the named nodes' streams are live and freshly
        flushed (``stream_flushes`` strictly above the given baseline).

        With no baselines given, waits for every node's first flush — the
        start-of-run barrier.
        """
        if flush_baselines is None:
            flush_baselines = {handle.name: 0 for handle in self.handles}
        by_name = {handle.name: handle for handle in self.handles}

        def settled() -> bool:
            if self.home_net is None:
                return False
            return all(
                self.home_net.has_subscriber(name)
                and by_name[name].server.stream_flushes > baseline
                for name, baseline in flush_baselines.items()
            )

        await _eventually(settled, timeout_s, "invalidation streams")

    def home_database(self):
        """The live master copy (a raw :class:`Database` or a backend)."""
        return self.home.database


async def _eventually(
    predicate, timeout_s: float, what: str, poll_s: float = 0.002
) -> None:
    deadline = time.perf_counter() + timeout_s
    while not predicate():
        if time.perf_counter() >= deadline:
            raise TimeoutError(f"timed out waiting for {what}")
        await asyncio.sleep(poll_s)


class _Reference:
    """The trusted sequential model: one database, applied in ack order.

    Takes a raw :class:`Database` or any backend — whatever the topology
    says mirrors the live home's query semantics (`reference_database`).
    """

    def __init__(self, database) -> None:
        self.database = database.clone()

    def execute(self, bound):
        return self.database.execute(bound.select)

    def apply(self, bound) -> int:
        return self.database.apply(bound.statement)


class ChaosRunner:
    """Replay a trace against a chaos topology, checking every answer.

    Client *i* pins to node ``i % nodes`` (the cluster's CDN affinity);
    page *p* is issued by client ``p % clients``.  On a **sharded**
    topology the pin is overridden per operation, exactly as a
    :class:`~repro.net.router.ShardRouter` would: queries go to the shard
    owning their placement key, updates to the shard owning their opaque
    id.  Queries and updates are retried under one request id until they
    succeed — the home's idempotency log is what makes retry-until-ack
    safe — and after each acked update the runner waits until every
    non-origin node *the home will push to* has either applied the
    update's stream push or flushed its cache on a stream reconnect, so
    the next operation observes a converged system.  On a sharded
    topology the expected recipient set is narrowed with the same
    conservative affinity the home's fan-out filter uses; nodes outside
    it cannot hold affected views (they never admit keys they don't own),
    so skipping them is exactly as strong a check.
    """

    def __init__(
        self,
        topology: ChaosTopology,
        trace: Trace,
        *,
        clients: int = 4,
        pages: int | None = None,
        max_attempts: int = 40,
        convergence_timeout_s: float = 20.0,
    ) -> None:
        self.topology = topology
        self.trace = trace.bind(topology.registry)
        self.clients = clients
        self.pages = pages if pages is not None else len(trace)
        self.max_attempts = max_attempts
        self.convergence_timeout_s = convergence_timeout_s
        self.reference = _Reference(topology.reference_database)
        self.report = OracleReport(seed=topology.plan.seed)

    async def run(self) -> OracleReport:
        plan = self.topology.plan
        op_index = 0
        for page_index in range(self.pages):
            target = plan.kill_target(page_index)
            if target is not None:
                logger.info("chaos: killing %s at page %d", target, page_index)
                self.topology.log.append(
                    FaultEvent(
                        link=target,
                        direction="op",
                        frame_type=0,
                        index=page_index,
                        kind="kill",
                    )
                )
                await self.topology.kill_restart(target)
                self.report.kills += 1
            client_id = page_index % self.clients
            node_index = client_id % len(self.topology.handles)
            page = self.trace.sample_page()
            for position, operation in enumerate(page):
                request_id = f"op-{page_index}-{position}"
                try:
                    if operation.is_update:
                        await self._run_update(
                            operation.bound, node_index, request_id, op_index
                        )
                    else:
                        await self._run_query(
                            operation.bound, node_index, request_id, op_index
                        )
                except _Fatal as fatal:
                    self.report.violations.append(fatal.violation)
                    self._finish()
                    return self.report
                op_index += 1
            self.report.pages += 1
        self._check_convergence(op_index)
        self._finish()
        return self.report

    def _finish(self) -> None:
        self.report.fault_counts = self.topology.log.counts()

    # -- operations --------------------------------------------------------

    async def _attempt_until_acked(
        self, send, request_id: str, op_index: int, template: str, node: str
    ):
        """Retry one operation under a pinned request id until it succeeds."""
        last_error: Exception | None = None
        for attempt in range(self.max_attempts):
            if attempt:
                self.report.retries += 1
                await asyncio.sleep(0.002)
            try:
                return await send()
            except _RETRYABLE as error:
                last_error = error
                continue
            except NetError as error:
                raise _Fatal(
                    Violation(
                        kind="fatal",
                        op_index=op_index,
                        node=node,
                        template=template,
                        detail=f"{type(error).__name__}: {error}",
                    )
                ) from error
        raise _Fatal(
            Violation(
                kind="liveness",
                op_index=op_index,
                node=node,
                template=template,
                detail=(
                    f"no ack after {self.max_attempts} attempts; last: "
                    f"{type(last_error).__name__}: {last_error}"
                ),
            )
        )

    async def _run_query(
        self, bound, node_index: int, request_id: str, op_index: int
    ) -> None:
        topology = self.topology
        level = topology.policy.query_level(bound.template.name)
        envelope = topology.codec.seal_query(bound, level)
        if topology.sharded:
            handle = topology.handle_for(
                topology.ring.owner(query_placement_key(envelope))
            )
        else:
            handle = topology.handles[node_index]
        expected = self.reference.execute(bound)
        outcome = await self._attempt_until_acked(
            lambda: handle.client.query(envelope, request_id=request_id),
            request_id,
            op_index,
            bound.template.name,
            handle.name,
        )
        self.report.queries += 1
        if outcome.cache_hit:
            self.report.hits += 1
        served = topology.codec.open_result(outcome.result)
        if not served.equivalent(expected):
            self.report.violations.append(
                Violation(
                    kind="stale_read",
                    op_index=op_index,
                    node=handle.name,
                    template=bound.template.name,
                    detail=(
                        f"served {len(served)} rows != reference "
                        f"{len(expected)} rows "
                        f"(cache_hit={outcome.cache_hit}, rid={request_id})"
                    ),
                )
            )

    async def _run_update(
        self, bound, node_index: int, request_id: str, op_index: int
    ) -> None:
        topology = self.topology
        level = topology.policy.update_level(bound.template.name)
        envelope = topology.codec.seal_update(bound, level)
        if topology.sharded:
            origin = topology.handle_for(
                topology.ring.owner(update_routing_key(envelope))
            )
        else:
            origin = topology.handles[node_index]
        # On a sharded topology the home only pushes to shards owning an
        # affected template bucket (None = push-to-all); waiting on the
        # others would be a guaranteed timeout, and they cannot hold
        # affected views anyway — the no-admit gate kept them clean.
        recipients: frozenset[str] | None = None
        if topology.sharded:
            recipients = shards_for_update(
                envelope,
                topology.ring,
                topology.affinity,
                topology.blind_queries,
            )
        # Convergence baselines for every expected non-origin recipient,
        # captured before the first attempt: if attempt 1 applies but its
        # ack is lost, the fan-out has already happened by the time the
        # retry is deduped.
        baselines = {
            handle.name: (
                handle.server.stream_pushes_applied,
                handle.server.stream_flushes,
            )
            for handle in topology.handles
            if handle.name != origin.name
            and (recipients is None or handle.name in recipients)
        }
        await self._attempt_until_acked(
            lambda: origin.client.update(envelope, request_id=request_id),
            request_id,
            op_index,
            bound.template.name,
            origin.name,
        )
        self.report.updates += 1
        self.reference.apply(bound)
        for handle in topology.handles:
            if handle.name not in baselines:
                continue
            base_pushes, base_flushes = baselines[handle.name]

            def converged(handle=handle, bp=base_pushes, bf=base_flushes):
                # Either the push arrived, or the stream died and the
                # reconnect flush wiped the cache — but a flush only counts
                # once the subscription is live again, or a later update's
                # fan-out could silently miss this node.
                server = handle.server
                if server.stream_pushes_applied > bp:
                    return True
                return (
                    server.stream_flushes > bf
                    and topology.home_net.has_subscriber(handle.name)
                )

            try:
                await _eventually(
                    converged,
                    self.convergence_timeout_s,
                    f"invalidation of {request_id} at {handle.name}",
                )
            except TimeoutError as error:
                raise _Fatal(
                    Violation(
                        kind="lost_update",
                        op_index=op_index,
                        node=handle.name,
                        template=bound.template.name,
                        detail=str(error),
                    )
                ) from error

    def _check_convergence(self, op_index: int) -> None:
        live = self.topology.home_database()
        reference = self.reference.database
        for table in sorted(live.schema.table_names):
            # Total-order value sort, not repr: SQLite's REAL affinity can
            # hand back 3.0 where the reference holds 3 — equal values that
            # repr would order differently, faking a divergence.
            live_rows = sorted(live.rows(table), key=sort_key)
            ref_rows = sorted(reference.rows(table), key=sort_key)
            if live_rows != ref_rows:
                self.report.violations.append(
                    Violation(
                        kind="db_divergence",
                        op_index=op_index,
                        node="home",
                        template=table,
                        detail=(
                            f"table {table!r}: live has {len(live_rows)} "
                            f"rows, reference has {len(ref_rows)}"
                        ),
                    )
                )


class _Fatal(Exception):
    def __init__(self, violation: Violation) -> None:
        super().__init__(violation.detail)
        self.violation = violation


async def run_chaos(
    app_id: str,
    registry: TemplateRegistry,
    database: Database,
    policy: ExposurePolicy,
    trace: Trace,
    plan: FaultPlan,
    *,
    nodes: int = 2,
    clients: int = 4,
    pages: int | None = None,
    keyring: Keyring | None = None,
    pipeline: int | None = None,
    batch_invalidations: bool = True,
    shards: bool = False,
    vnodes: int = DEFAULT_VNODES,
    backend: str = "memory",
    db_path=None,
    trace_dir=None,
    trace_sample: float = 1.0,
    predicate_index: bool = False,
) -> tuple[OracleReport, ChaosLog]:
    """Build a chaos topology, replay the trace, and tear everything down.

    Returns the oracle report and the fault log (whose :meth:`canonical`
    ordering is reproducible for a given plan seed).
    """
    log = ChaosLog()
    topology = ChaosTopology(
        app_id,
        registry,
        database,
        policy,
        plan=plan,
        log=log,
        nodes=nodes,
        keyring=keyring,
        pipeline=pipeline,
        batch_invalidations=batch_invalidations,
        shards=shards,
        vnodes=vnodes,
        backend=backend,
        db_path=db_path,
        trace_dir=trace_dir,
        trace_sample=trace_sample,
        predicate_index=predicate_index,
    )
    await topology.start()
    try:
        runner = ChaosRunner(topology, trace, clients=clients, pages=pages)
        report = await runner.run()
    finally:
        await topology.stop()
    return report, log
