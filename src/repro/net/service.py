"""Shared asyncio server machinery for the DSSP service layer.

Both servers (:class:`~repro.net.home_server.HomeNetServer`,
:class:`~repro.net.dssp_server.DsspNetServer`) are request/response frame
servers with the same operational envelope:

* **Concurrent connections** *and* concurrent requests per connection:
  the read loop spawns a task per request frame, so many requests can be
  in flight on one connection and responses may return out of order.
  The wire v2 request id is the pipelining id — every response carries
  the id of the request it answers, and the client matches on it.
* **Bounded in-flight backpressure**: at most ``max_in_flight`` requests
  execute at once across all connections; excess requests are shed
  immediately with ``OVERLOADED`` rather than queued without bound, so a
  slow home server cannot make a DSSP node accumulate unbounded state.
* **Per-request timeout**: a request that cannot finish within
  ``request_timeout_s`` is answered with ``TIMEOUT``.
* **Typed error mapping**: library exceptions never cross the wire as
  control flow — they become :class:`~repro.net.wire.ErrorResponse` frames
  with a typed code, and the client maps them back to exceptions.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from dataclasses import dataclass, field

from repro.errors import (
    HomeUnreachableError,
    NetTimeoutError,
    ReproError,
    ServerOverloadedError,
    UnknownApplicationError,
    WireError,
)
from repro.net import wire
from repro.net.wire import (
    ErrorCode,
    ErrorResponse,
    Frame,
    StatsRequest,
    StatsResponse,
)
from repro.obs import MetricsRegistry, SpanRecorder, envelope_context

__all__ = ["ConnectionContext", "WireServer"]

logger = logging.getLogger(__name__)


@dataclass(eq=False)  # identity semantics: contexts live in a set
class ConnectionContext:
    """Per-connection state handed to frame handlers."""

    writer: asyncio.StreamWriter
    #: Serializes writes: responses (read loop) vs pushes (broadcasts).
    write_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    #: Callbacks run exactly once when the connection goes away.
    close_callbacks: list = field(default_factory=list)
    #: Trace id of the request this context serves.  Requests on one
    #: connection are dispatched concurrently, so each gets its own
    #: context view (:meth:`for_request`) sharing the connection state;
    #: handlers read the id to propagate it downstream.
    request_id: str | None = None

    def on_close(self, callback) -> None:
        """Register cleanup to run when this connection closes."""
        self.close_callbacks.append(callback)

    def for_request(self, request_id: str | None) -> "ConnectionContext":
        """Per-request view: same connection state, this request's id.

        ``writer``, ``write_lock`` and ``close_callbacks`` are shared by
        reference — a callback registered through the view still fires
        when the underlying connection closes.
        """
        return ConnectionContext(
            writer=self.writer,
            write_lock=self.write_lock,
            close_callbacks=self.close_callbacks,
            request_id=request_id,
        )


class WireServer:
    """Base class: asyncio frame server with backpressure and timeouts."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_in_flight: int = 64,
        request_timeout_s: float = 10.0,
        max_frame: int = wire.MAX_FRAME_BYTES,
        frame_observer=None,
        server_id: str = "server",
        metrics: MetricsRegistry | None = None,
        fault_hook=None,
        tracer: SpanRecorder | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._max_in_flight = max_in_flight
        self.request_timeout_s = request_timeout_s
        self.max_frame = max_frame
        self._frame_observer = frame_observer
        #: Awaited before each request handler runs (chaos injects
        #: deterministic processing stalls here); ``None`` in production.
        self.fault_hook = fault_hook
        self._server: asyncio.AbstractServer | None = None
        self._in_flight: asyncio.Semaphore | None = None
        self._contexts: set[ConnectionContext] = set()
        self._stopping = False
        #: Stable identity in logs and STATS snapshots.
        self.server_id = server_id
        self.metrics = metrics or MetricsRegistry()
        #: Span recorder keyed on the wire request id; sink-less (and
        #: therefore disabled, near-zero cost) unless one is supplied.
        self.tracer = tracer or SpanRecorder(server_id)
        self.metrics.gauge(
            "server.connections", lambda: len(self._contexts)
        )

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound; valid after :meth:`start`."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting connections; returns the address."""
        self._in_flight = asyncio.Semaphore(self._max_in_flight)
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port
        )
        return self.address

    async def serve_forever(self) -> None:
        """Block until cancelled (after :meth:`start`)."""
        assert self._server is not None
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, close every live connection, run cleanups."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for context in list(self._contexts):
            await self._close_context(context)

    # -- connection loop ---------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        context = ConnectionContext(writer=writer)
        self._contexts.add(context)
        tasks: set[asyncio.Task] = set()
        try:
            while not self._stopping:
                try:
                    # Raw read first, then a separately-timed decode: the
                    # span covering codec work must not also bill the idle
                    # time spent waiting for bytes.
                    raw = await wire.read_raw_frame(
                        reader, max_frame=self.max_frame
                    )
                    if raw is None:  # clean EOF
                        break
                    if self._frame_observer is not None:
                        self._frame_observer(raw)
                    _, request_id = wire.peek_raw(raw)
                    with self.tracer.trace(
                        request_id, "server.decode"
                    ) as decode_span:
                        frame, request_id = wire.decode_traced(
                            raw, max_frame=self.max_frame
                        )
                        decode_span.set("bytes", len(raw))
                        decode_span.set("frame", type(frame).__name__)
                except WireError as error:
                    self.metrics.counter("server.bad_frames").inc()
                    logger.warning(
                        "rejecting malformed frame: %s",
                        error,
                        extra={"ctx": {"server": self.server_id}},
                    )
                    await self._send(
                        context, ErrorResponse(ErrorCode.BAD_FRAME, str(error))
                    )
                    break
                # Pipelining: dispatch concurrently and keep reading; the
                # semaphore in _dispatch bounds concurrency and responses
                # go out whenever their handler finishes (out of order).
                task = asyncio.create_task(
                    self._serve_request(frame, context.for_request(request_id))
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, OSError):
            pass  # peer vanished; cleanups below
        finally:
            if tasks:
                # Let in-flight handlers finish (each is bounded by the
                # request timeout) so their effects and responses are not
                # lost to a racing disconnect — matching the sequential
                # protocol, where a read-side EOF never aborted a handler.
                await asyncio.gather(*tasks, return_exceptions=True)
            self._contexts.discard(context)
            await self._close_context(context)

    async def _serve_request(
        self, frame: Frame, context: ConnectionContext
    ) -> None:
        """Run one request to completion and write its response."""
        try:
            response = await self._dispatch(frame, context)
            if response is not None:
                await self._send(
                    context, response, request_id=context.request_id
                )
        except (ConnectionError, OSError):
            pass  # peer vanished; connection cleanup handles the rest
        except WireError:
            # Response encoding failed (e.g. oversized frame): the stream
            # is unusable for this peer — close it rather than stall.
            context.writer.close()

    async def _send(
        self,
        context: ConnectionContext,
        frame: Frame,
        *,
        request_id: str | None = None,
    ) -> None:
        async with context.write_lock:
            await wire.write_frame(
                context.writer,
                frame,
                request_id=request_id,
                max_frame=self.max_frame,
                observer=self._frame_observer,
            )

    async def _close_context(self, context: ConnectionContext) -> None:
        callbacks, context.close_callbacks = context.close_callbacks, []
        for callback in callbacks:
            callback()
        context.writer.close()
        try:
            await context.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # -- request execution -------------------------------------------------

    def _request_ctx(self, frame: Frame, context: ConnectionContext) -> dict:
        """Loggable identifiers for one request: never payload bytes."""
        ctx = {"server": self.server_id, "frame": type(frame).__name__}
        if context.request_id is not None:
            ctx["request_id"] = context.request_id
        envelope = getattr(frame, "envelope", None)
        if envelope is not None:
            ctx.update(envelope_context(envelope))
        return ctx

    async def _dispatch(
        self, frame: Frame, context: ConnectionContext
    ) -> Frame | None:
        assert self._in_flight is not None
        ctx = self._request_ctx(frame, context)
        self.metrics.counter("server.requests").inc()
        # Per-application books (envelope-bearing frames only — STATS and
        # other control frames have no tenant).  Multi-tenant fairness
        # tests reconcile these against each client's local counts, and
        # served-vs-shed per app is what "shedding does not starve the
        # light tenants" is asserted on.
        envelope = getattr(frame, "envelope", None)
        app_id = getattr(envelope, "app_id", None)
        if app_id is not None:
            self.metrics.counter(f"server.app_requests.{app_id}").inc()
        if self._in_flight.locked():
            # All permits taken: shed instead of queueing without bound.
            self.metrics.counter("server.shed").inc()
            if app_id is not None:
                self.metrics.counter(f"server.app_shed.{app_id}").inc()
            logger.warning("shedding request under backpressure", extra={"ctx": ctx})
            return ErrorResponse(
                ErrorCode.OVERLOADED,
                f"more than {self._max_in_flight} requests in flight",
            )
        in_flight = self.metrics.gauge("server.in_flight")
        started = time.perf_counter()
        with self.tracer.trace(
            context.request_id, "server.handle", frame=type(frame).__name__
        ) as handle_span:
            async with self._in_flight:
                in_flight.inc()
                try:
                    response = await asyncio.wait_for(
                        self._handle_with_hook(frame, context),
                        self.request_timeout_s,
                    )
                    logger.debug("request served", extra={"ctx": ctx})
                    return response
                except (asyncio.TimeoutError, TimeoutError):
                    self.metrics.counter("server.timeouts").inc()
                    logger.warning("request timed out", extra={"ctx": ctx})
                    handle_span.set("error", "timeout")
                    return ErrorResponse(
                        ErrorCode.TIMEOUT,
                        f"request exceeded {self.request_timeout_s}s",
                    )
                except NetTimeoutError as error:
                    self.metrics.counter("server.timeouts").inc()
                    handle_span.set("error", "timeout")
                    return ErrorResponse(ErrorCode.TIMEOUT, str(error))
                except UnknownApplicationError as error:
                    return ErrorResponse(ErrorCode.UNKNOWN_APP, error.app_id)
                except HomeUnreachableError as error:
                    self.metrics.counter("server.forward_failures").inc()
                    logger.warning(
                        "home unreachable: %s", error, extra={"ctx": ctx}
                    )
                    handle_span.set("error", "home_unreachable")
                    return ErrorResponse(ErrorCode.MISS_FORWARDED, str(error))
                except ServerOverloadedError as error:
                    # A downstream hop shed the request unprocessed: relay the
                    # code so the client keeps its retry-safety guarantee.
                    return ErrorResponse(ErrorCode.OVERLOADED, str(error))
                except WireError as error:
                    self.metrics.counter("server.bad_frames").inc()
                    return ErrorResponse(ErrorCode.BAD_FRAME, str(error))
                except ReproError as error:
                    # Typed library errors are expected application failures
                    # (e.g. replayed INSERTs colliding): one line, no traceback.
                    self.metrics.counter("server.internal_errors").inc()
                    logger.warning(
                        "request failed: %s: %s",
                        type(error).__name__,
                        error,
                        extra={"ctx": ctx},
                    )
                    handle_span.set("error", type(error).__name__)
                    return ErrorResponse(
                        ErrorCode.INTERNAL, f"{type(error).__name__}: {error}"
                    )
                except Exception as error:
                    # A handler bug must not tear down the connection without an
                    # ERROR frame — the client could misread a silently dropped
                    # connection as "update never sent".
                    self.metrics.counter("server.internal_errors").inc()
                    logger.exception(
                        "request handler crashed", extra={"ctx": ctx}
                    )
                    handle_span.set("error", type(error).__name__)
                    return ErrorResponse(
                        ErrorCode.INTERNAL, f"{type(error).__name__}: {error}"
                    )
                finally:
                    in_flight.dec()
                    # Exemplars only for sampled requests: the linked trace
                    # must actually exist in the span logs.
                    self.metrics.histogram("server.handle_seconds").observe(
                        time.perf_counter() - started,
                        exemplar=(
                            context.request_id
                            if handle_span.recorded
                            else None
                        ),
                    )

    async def _handle_with_hook(
        self, frame: Frame, context: ConnectionContext
    ) -> Frame | None:
        # Inside the request timeout on purpose: a hook stall long enough
        # to blow the deadline is answered with TIMEOUT like any slow
        # handler, which is exactly the failure chaos wants to provoke.
        if self.fault_hook is not None:
            await self.fault_hook(frame, context.request_id)
        return await self.handle(frame, context)

    # -- observability -----------------------------------------------------

    def stats_snapshot(self) -> dict:
        """JSON-safe live snapshot; subclasses layer their own sections in."""
        return {
            "node_id": self.server_id,
            "metrics": self.metrics.snapshot(),
        }

    def _stats_response(self) -> StatsResponse:
        snapshot = self.stats_snapshot()
        return StatsResponse(
            node_id=self.server_id,
            payload=json.dumps(snapshot, separators=(",", ":"), default=str),
        )

    async def handle(
        self, frame: Frame, context: ConnectionContext
    ) -> Frame | None:
        """Serve one request frame; subclasses implement the semantics.

        Subclasses answer :class:`~repro.net.wire.StatsRequest` via
        :meth:`_stats_response` after layering their sections into
        :meth:`stats_snapshot`.
        """
        if isinstance(frame, StatsRequest):
            return self._stats_response()
        raise NotImplementedError
