"""Deterministic fault injection for the networked DSSP.

Jepsen-style chaos, minus the wall clock: every fault is decided by a pure
function of ``(seed, link, direction, frame type, per-type frame index)``,
so the same :class:`FaultPlan` seed produces the *same* fault schedule on
every run regardless of scheduling jitter — which is what makes a failing
chaos run replayable.

Faults are injected at two points:

* :class:`ChaosProxy` — an in-process TCP proxy spliced into a link
  (client→DSSP or DSSP→home).  It understands the wire framing just enough
  to act on whole frames: **drop** (swallow the frame and sever the
  connection, as real TCP must), **delay** (hold the frame), **duplicate**
  (send a request twice; the extra response is swallowed on the way back),
  and **truncate** (forward a prefix, then sever).
* Server/client ``fault_hook``\\s — deterministic processing stalls inside
  a node, driving request timeouts without touching the network.

Node **kill/restart** events are not frame faults: the plan schedules them
at operation indices (``kill_every``) and the harness (the oracle runner
or the load generator) enacts them between operations, so a "crash" is
always a whole-process event, never a torn half-operation.

Every decision that fires is recorded as a :class:`FaultEvent` in a
:class:`ChaosLog`; the log's canonical form (sorted by decision key, not
by wall-clock arrival) is the determinism contract checked by the tests.
"""

from __future__ import annotations

import asyncio
import enum
import hashlib
import json
import logging
from dataclasses import dataclass, field

from repro.net import wire
from repro.net.wire import FrameType
from repro.obs import MetricsRegistry

__all__ = [
    "ChaosLog",
    "ChaosProxy",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "make_fault_hook",
]

logger = logging.getLogger(__name__)

#: Frame types that are safe to duplicate client→server: both are
#: idempotent at the receiver (queries trivially, updates via the home's
#: dedup log), and both follow strict request→response framing, so the
#: proxy knows exactly one extra response comes back to swallow.
_DUPLICABLE = frozenset({int(FrameType.QUERY), int(FrameType.UPDATE)})


class FaultKind(enum.Enum):
    """What the plan decided to do with one frame (or one operation)."""

    PASS = "pass"
    DROP = "drop"
    DELAY = "delay"
    DUPLICATE = "duplicate"
    TRUNCATE = "truncate"
    KILL = "kill"
    STALL = "stall"

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.value


@dataclass(frozen=True)
class FaultDecision:
    """One plan verdict; ``PASS`` decisions are not logged."""

    kind: FaultKind
    #: Seconds to hold the frame (DELAY) or stall the handler (STALL).
    delay_s: float = 0.0
    #: Fraction of the frame's bytes to forward before severing (TRUNCATE).
    keep_fraction: float = 0.0


@dataclass(frozen=True)
class FaultEvent:
    """A fault that actually fired, in canonical (replayable) coordinates."""

    link: str
    direction: str  # "c2s" | "s2c" | "op"
    frame_type: int
    index: int
    kind: str
    request_id: str | None = None
    detail: str = ""

    def key(self) -> tuple[str, str, int, int]:
        return (self.link, self.direction, self.frame_type, self.index)

    def to_dict(self) -> dict:
        return {
            "link": self.link,
            "direction": self.direction,
            "frame_type": self.frame_type,
            "index": self.index,
            "kind": self.kind,
            "request_id": self.request_id,
            "detail": self.detail,
        }


def _unit(seed: int, *parts: object) -> float:
    """Deterministic uniform draw in [0, 1) keyed by the decision tuple."""
    material = "|".join([str(seed), *(str(part) for part in parts)])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, fully deterministic fault schedule.

    ``decide`` is a pure function: nothing is consumed, so concurrent
    links cannot perturb each other's schedules, and the nth QUERY frame
    on a given link/direction meets the same fate on every run.
    """

    seed: int
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    duplicate_rate: float = 0.0
    truncate_rate: float = 0.0
    stall_rate: float = 0.0
    max_delay_s: float = 0.05
    #: Kill a node every this many operations (None: never).
    kill_every: int | None = None
    #: Round-robin pool of kill targets ("home", "dssp-0", ...).
    kill_targets: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        total = (
            self.drop_rate
            + self.delay_rate
            + self.duplicate_rate
            + self.truncate_rate
        )
        if total > 1.0:
            raise ValueError(f"frame fault rates sum to {total} > 1")

    @classmethod
    def uniform(
        cls,
        seed: int,
        fault_rate: float,
        *,
        kill_every: int | None = None,
        kill_targets: tuple[str, ...] = (),
    ) -> FaultPlan:
        """Spread one aggregate rate evenly across the four frame faults."""
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError(f"fault_rate {fault_rate} outside [0, 1]")
        quarter = fault_rate / 4.0
        return cls(
            seed=seed,
            drop_rate=quarter,
            delay_rate=quarter,
            duplicate_rate=quarter,
            truncate_rate=quarter,
            kill_every=kill_every,
            kill_targets=kill_targets,
        )

    def decide(
        self, link: str, direction: str, frame_type: int, index: int
    ) -> FaultDecision:
        """Fate of the ``index``-th ``frame_type`` frame on this flow."""
        roll = _unit(self.seed, link, direction, frame_type, index)
        threshold = self.drop_rate
        if roll < threshold:
            return FaultDecision(FaultKind.DROP)
        threshold += self.delay_rate
        if roll < threshold:
            # A second independent draw sizes the delay.
            fraction = _unit(self.seed, "delay", link, direction, frame_type, index)
            return FaultDecision(
                FaultKind.DELAY, delay_s=fraction * self.max_delay_s
            )
        threshold += self.duplicate_rate
        if roll < threshold:
            if direction == "c2s" and frame_type in _DUPLICABLE:
                return FaultDecision(FaultKind.DUPLICATE)
            return FaultDecision(FaultKind.PASS)
        threshold += self.truncate_rate
        if roll < threshold:
            fraction = _unit(
                self.seed, "truncate", link, direction, frame_type, index
            )
            return FaultDecision(FaultKind.TRUNCATE, keep_fraction=fraction)
        return FaultDecision(FaultKind.PASS)

    def decide_stall(self, server_id: str, index: int) -> FaultDecision:
        """Processing stall for a server's ``index``-th handled request."""
        if self.stall_rate <= 0.0:
            return FaultDecision(FaultKind.PASS)
        roll = _unit(self.seed, "stall", server_id, index)
        if roll < self.stall_rate:
            fraction = _unit(self.seed, "stall-len", server_id, index)
            return FaultDecision(
                FaultKind.STALL, delay_s=fraction * self.max_delay_s
            )
        return FaultDecision(FaultKind.PASS)

    def kill_target(self, op_index: int) -> str | None:
        """Node to kill *before* operation ``op_index``, if any."""
        if not self.kill_every or not self.kill_targets or op_index == 0:
            return None
        if op_index % self.kill_every != 0:
            return None
        round_number = op_index // self.kill_every - 1
        return self.kill_targets[round_number % len(self.kill_targets)]


class ChaosLog:
    """Append-only record of fired faults with a canonical ordering.

    Arrival order depends on scheduling; the *canonical* order (sorted by
    each event's decision key) does not — two runs with the same seed must
    produce identical canonical logs, and the chaos tests assert exactly
    that.
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self._events: list[FaultEvent] = []
        self._metrics = metrics

    def append(self, event: FaultEvent) -> None:
        self._events.append(event)
        if self._metrics is not None:
            self._metrics.counter(f"chaos.{event.kind}").inc()
        logger.debug(
            "chaos: %s",
            event.kind,
            extra={"ctx": event.to_dict()},
        )

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        """Events in arrival order (scheduling-dependent)."""
        return tuple(self._events)

    def canonical(self) -> tuple[FaultEvent, ...]:
        """Events in decision-key order: the determinism contract."""
        return tuple(sorted(self._events, key=FaultEvent.key))

    def counts(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for event in self._events:
            totals[event.kind] = totals.get(event.kind, 0) + 1
        return dict(sorted(totals.items()))

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(
            {
                "counts": self.counts(),
                "events": [event.to_dict() for event in self.canonical()],
            },
            indent=indent,
        )


@dataclass
class _FlowState:
    """Shared per-(direction, frame type) frame counters for one link.

    Shared across connections on purpose: the decision index advances per
    frame *type* on the link, so reconnects (which chaos itself causes)
    don't reset the schedule or replay the same decisions.
    """

    counters: dict[tuple[str, int], int] = field(default_factory=dict)

    def next_index(self, direction: str, frame_type: int) -> int:
        key = (direction, frame_type)
        index = self.counters.get(key, 0)
        self.counters[key] = index + 1
        return index


class ChaosProxy:
    """Frame-aware TCP proxy that enacts a :class:`FaultPlan` on one link.

    Splice it between a client and a server (or a DSSP node and its home):
    point the downstream side at ``upstream`` and clients at
    :attr:`address`.  Each accepted connection gets its own upstream
    connection and two pump tasks (client→server, server→client); frame
    fates come from the shared plan via per-link flow counters.

    TCP honesty: a "dropped" frame severs the connection, because a real
    network cannot remove bytes from the middle of a healthy stream — the
    peer would desynchronize.  Severing exercises exactly the recovery
    paths the service claims to have (client retries, reconnect-and-flush).
    """

    def __init__(
        self,
        upstream: tuple[str, int],
        plan: FaultPlan,
        link: str,
        log: ChaosLog,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: int = wire.MAX_FRAME_BYTES,
    ) -> None:
        self.upstream = (upstream[0], int(upstream[1]))
        self.plan = plan
        self.link = link
        self.log = log
        self._host = host
        self._port = port
        self._max_frame = max_frame
        self._flow = _FlowState()
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        #: Extra s2c frames to swallow, per live connection pair (the
        #: response to a duplicated request must not reach the client).
        self._swallow: dict[int, int] = {}

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise RuntimeError("proxy is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._accept, self._host, self._port
        )
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.kill_connections()

    async def kill_connections(self) -> None:
        """Sever every live proxied connection (connection-churn chaos)."""
        writers, self._connections = self._connections, set()
        for writer in writers:
            writer.close()
        for writer in writers:
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- connection pumps ---------------------------------------------------

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            up_reader, up_writer = await asyncio.open_connection(
                *self.upstream
            )
        except (ConnectionError, OSError):
            writer.close()
            return
        self._connections.add(writer)
        self._connections.add(up_writer)
        pair_id = id(writer)
        self._swallow[pair_id] = 0
        # Pumps can see (and cancel) each other: a sever decision must
        # stop the opposite pump *before* the stream dies, or an in-flight
        # reply could race the teardown and consume a fault index in one
        # run but not another.
        pumps: dict[str, asyncio.Task] = {}
        c2s = asyncio.create_task(
            self._pump(reader, up_writer, "c2s", pair_id, pumps)
        )
        s2c = asyncio.create_task(
            self._pump(up_reader, writer, "s2c", pair_id, pumps)
        )
        pumps["c2s"] = c2s
        pumps["s2c"] = s2c
        try:
            await asyncio.wait(
                {c2s, s2c}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for task in (c2s, s2c):
                task.cancel()
            for task in (c2s, s2c):
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
            self._swallow.pop(pair_id, None)
            for half in (writer, up_writer):
                self._connections.discard(half)
                half.close()
                try:
                    await half.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        direction: str,
        pair_id: int,
        pumps: dict[str, asyncio.Task],
    ) -> None:
        def sever_sibling() -> None:
            sibling = pumps.get("s2c" if direction == "c2s" else "c2s")
            if sibling is not None and sibling is not asyncio.current_task():
                sibling.cancel()

        try:
            while True:
                raw = await wire.read_raw_frame(
                    reader, max_frame=self._max_frame
                )
                if raw is None:
                    writer.write_eof()
                    return
                frame_type, request_id = wire.peek_raw(raw)
                if direction == "s2c" and self._swallow.get(pair_id, 0) > 0:
                    # The response to a duplicated request: the client sent
                    # one request and must see exactly one response.  Not a
                    # plan decision, so no flow index is consumed.  Under
                    # pipelining the swallowed frame may answer a *different*
                    # in-flight request — response counts are still conserved,
                    # and the starved request resolves through its normal
                    # timeout/retry path (queries re-ask; updates are covered
                    # by retry-until-ack + the home's idempotency log).
                    self._swallow[pair_id] -= 1
                    continue
                index = self._flow.next_index(direction, frame_type)
                decision = self.plan.decide(
                    self.link, direction, frame_type, index
                )
                if decision.kind is FaultKind.PASS:
                    writer.write(raw)
                    await writer.drain()
                    continue
                if decision.kind is FaultKind.DELAY:
                    self._record(
                        direction,
                        frame_type,
                        index,
                        FaultKind.DELAY,
                        request_id,
                        f"{decision.delay_s * 1000:.1f}ms",
                    )
                    await asyncio.sleep(decision.delay_s)
                    writer.write(raw)
                    await writer.drain()
                    continue
                if decision.kind is FaultKind.DUPLICATE:
                    self._record(
                        direction,
                        frame_type,
                        index,
                        FaultKind.DUPLICATE,
                        request_id,
                    )
                    self._swallow[pair_id] = (
                        self._swallow.get(pair_id, 0) + 1
                    )
                    writer.write(raw)
                    writer.write(raw)
                    await writer.drain()
                    continue
                if decision.kind is FaultKind.TRUNCATE:
                    keep = max(1, int(len(raw) * decision.keep_fraction))
                    keep = min(keep, len(raw) - 1)
                    self._record(
                        direction,
                        frame_type,
                        index,
                        FaultKind.TRUNCATE,
                        request_id,
                        f"{keep}/{len(raw)}B",
                    )
                    sever_sibling()
                    writer.write(raw[:keep])
                    await writer.drain()
                    return  # sever: the stream is now unparseable
                # DROP: swallow the frame and sever both halves.
                self._record(
                    direction, frame_type, index, FaultKind.DROP, request_id
                )
                sever_sibling()
                return
        except (ConnectionError, OSError, wire.WireError):
            return
        finally:
            writer.close()

    def _record(
        self,
        direction: str,
        frame_type: int,
        index: int,
        kind: FaultKind,
        request_id: str | None,
        detail: str = "",
    ) -> None:
        self.log.append(
            FaultEvent(
                link=self.link,
                direction=direction,
                frame_type=frame_type,
                index=index,
                kind=kind.value,
                request_id=request_id,
                detail=detail,
            )
        )


def make_fault_hook(plan: FaultPlan, server_id: str, log: ChaosLog):
    """Deterministic processing-stall hook for a ``WireServer``.

    The returned coroutine function matches the ``fault_hook`` signature
    (``frame, request_id``) and stalls the handler per
    :meth:`FaultPlan.decide_stall`, with its own per-server index.
    """
    state = {"index": 0}

    async def hook(frame, request_id: str | None) -> None:
        index = state["index"]
        state["index"] = index + 1
        decision = plan.decide_stall(server_id, index)
        if decision.kind is FaultKind.STALL:
            log.append(
                FaultEvent(
                    link=server_id,
                    direction="op",
                    frame_type=0,
                    index=index,
                    kind=FaultKind.STALL.value,
                    request_id=request_id,
                    detail=f"{decision.delay_s * 1000:.1f}ms",
                )
            )
            await asyncio.sleep(decision.delay_s)

    return hook
