"""Length-prefixed binary wire protocol for the DSSP service layer.

Framing (all integers big-endian)::

    +-------+---------+------------+--------------+=========+
    | magic | version | frame type | payload len  | payload |
    |  2 B  |   1 B   |    1 B     |     4 B      |  len B  |
    +-------+---------+------------+--------------+=========+

Payloads are sequences of primitive fields: ``u8``/``u32`` integers,
length-prefixed UTF-8 strings, length-prefixed byte strings, and optionals
(a one-byte presence flag followed by the value).  Statements travel as
their SQL text and are re-parsed on decode — the parser/formatter pair
round-trips the AST exactly, which the codec property tests pin down.

Security invariant: the codec is a *projection* of the envelope — it writes
only fields the envelope carries, and envelopes carry plaintext only for
what their exposure level permits (see :mod:`repro.crypto.envelope`).  The
DSSP-visible bytes of a sealed envelope on the wire are therefore exactly
the DSSP-visible fields in memory; nothing is opened or re-sealed en route.

Every decode error raises :class:`~repro.errors.WireError` (the ``BAD_FRAME``
wire code): truncated or oversized frames, bad magic/version, unknown frame
types, trailing bytes, and statement text that does not parse.
"""

from __future__ import annotations

import asyncio
import enum
import struct
from dataclasses import dataclass

from repro.analysis.exposure import ExposureLevel
from repro.crypto.envelope import (
    QueryEnvelope,
    ResultEnvelope,
    UpdateEnvelope,
    deserialize_result,
    serialize_result,
)
from repro.errors import CryptoError, SqlError, WireError
from repro.sql.ast import Delete, Insert, Select, Update
from repro.sql.formatter import to_sql
from repro.sql.parser import parse

__all__ = [
    "ErrorCode",
    "ErrorResponse",
    "Frame",
    "FrameType",
    "HEADER_SIZE",
    "InvalidationPush",
    "MAX_FRAME_BYTES",
    "QueryRequest",
    "QueryResponse",
    "SubscribeRequest",
    "SubscribeResponse",
    "UpdateRequest",
    "UpdateResponse",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "write_frame",
]

MAGIC = b"DW"
VERSION = 1
_HEADER = struct.Struct(">2sBBI")
HEADER_SIZE = _HEADER.size
#: Default ceiling on payload size; a frame claiming more is rejected
#: before any allocation happens.
MAX_FRAME_BYTES = 8 * 1024 * 1024


class FrameType(enum.IntEnum):
    """One byte on the wire selecting the payload codec."""

    QUERY = 1
    UPDATE = 2
    SUBSCRIBE = 3
    RESULT = 4
    UPDATE_ACK = 5
    SUBSCRIBED = 6
    INVALIDATE = 7
    ERROR = 8


class ErrorCode(enum.IntEnum):
    """Typed wire error codes (replaces exception text on the boundary).

    Values are the on-wire byte and are frozen: never renumber an existing
    member; new codes take fresh values at the end.
    """

    UNKNOWN_APP = 1
    MISS_FORWARDED = 2
    TIMEOUT = 3
    BAD_FRAME = 4
    OVERLOADED = 5
    INTERNAL = 6


# -- frame dataclasses -----------------------------------------------------------


@dataclass(frozen=True)
class QueryRequest:
    """Client → DSSP (or DSSP → home, on a miss): serve this query."""

    envelope: QueryEnvelope


@dataclass(frozen=True)
class UpdateRequest:
    """Client → DSSP → home: apply this update.

    ``origin`` identifies the forwarding DSSP node so the home's
    invalidation stream can skip it (the origin invalidates synchronously
    before acknowledging its client).
    """

    envelope: UpdateEnvelope
    origin: str | None = None


@dataclass(frozen=True)
class SubscribeRequest:
    """DSSP → home: open the invalidation-stream channel."""

    node_id: str
    app_ids: tuple[str, ...]


@dataclass(frozen=True)
class QueryResponse:
    """Answer to a :class:`QueryRequest` (still sealed per policy)."""

    result: ResultEnvelope
    cache_hit: bool


@dataclass(frozen=True)
class UpdateResponse:
    """Answer to an :class:`UpdateRequest`."""

    rows_affected: int
    invalidated: int


@dataclass(frozen=True)
class SubscribeResponse:
    """Answer to a :class:`SubscribeRequest`; the channel stays open."""

    app_ids: tuple[str, ...]


@dataclass(frozen=True)
class InvalidationPush:
    """Home → subscribed DSSP node: a completed update to invalidate for."""

    envelope: UpdateEnvelope


@dataclass(frozen=True)
class ErrorResponse:
    """Any failure crossing the boundary, as a typed code + message."""

    code: ErrorCode
    message: str


Frame = (
    QueryRequest
    | UpdateRequest
    | SubscribeRequest
    | QueryResponse
    | UpdateResponse
    | SubscribeResponse
    | InvalidationPush
    | ErrorResponse
)


# -- primitive field codecs ------------------------------------------------------


class _Writer:
    def __init__(self) -> None:
        self._buf = bytearray()

    def u8(self, value: int) -> None:
        self._buf.append(value & 0xFF)

    def u32(self, value: int) -> None:
        self._buf += value.to_bytes(4, "big")

    def blob(self, value: bytes) -> None:
        self.u32(len(value))
        self._buf += value

    def text(self, value: str) -> None:
        self.blob(value.encode())

    def opt_blob(self, value: bytes | None) -> None:
        if value is None:
            self.u8(0)
        else:
            self.u8(1)
            self.blob(value)

    def opt_text(self, value: str | None) -> None:
        self.opt_blob(None if value is None else value.encode())

    def getvalue(self) -> bytes:
        return bytes(self._buf)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise WireError(
                f"truncated payload: wanted {count} bytes at offset "
                f"{self._pos}, have {len(self._data) - self._pos}"
            )
        piece = self._data[self._pos : end]
        self._pos = end
        return piece

    def u8(self) -> int:
        return self._take(1)[0]

    def u32(self) -> int:
        return int.from_bytes(self._take(4), "big")

    def blob(self) -> bytes:
        length = self.u32()
        return self._take(length)

    def text(self) -> str:
        try:
            return self.blob().decode()
        except UnicodeDecodeError as error:
            raise WireError(f"invalid UTF-8 in string field: {error}") from error

    def opt_blob(self) -> bytes | None:
        flag = self.u8()
        if flag == 0:
            return None
        if flag != 1:
            raise WireError(f"bad presence flag {flag}")
        return self.blob()

    def opt_text(self) -> str | None:
        raw = self.opt_blob()
        if raw is None:
            return None
        try:
            return raw.decode()
        except UnicodeDecodeError as error:
            raise WireError(f"invalid UTF-8 in string field: {error}") from error

    def done(self) -> None:
        if self._pos != len(self._data):
            raise WireError(
                f"{len(self._data) - self._pos} trailing bytes after payload"
            )


# -- envelope codecs -------------------------------------------------------------


def _read_level(reader: _Reader) -> ExposureLevel:
    raw = reader.u8()
    try:
        return ExposureLevel(raw)
    except ValueError:
        raise WireError(f"unknown exposure level {raw}") from None


def _read_statement(reader: _Reader):
    source = reader.opt_text()
    if source is None:
        return None
    try:
        return parse(source)
    except SqlError as error:
        raise WireError(f"statement does not parse: {error}") from error


def _write_query_envelope(writer: _Writer, envelope: QueryEnvelope) -> None:
    writer.text(envelope.app_id)
    writer.u8(int(envelope.level))
    writer.text(envelope.cache_key)
    writer.opt_text(envelope.template_name)
    writer.opt_text(envelope.template_sql)
    writer.opt_text(
        None if envelope.statement is None else to_sql(envelope.statement)
    )
    writer.opt_text(envelope.statement_sql)
    writer.opt_blob(envelope.sealed_statement)
    writer.opt_blob(envelope.sealed_params)


def _read_query_envelope(reader: _Reader) -> QueryEnvelope:
    app_id = reader.text()
    level = _read_level(reader)
    cache_key = reader.text()
    template_name = reader.opt_text()
    template_sql = reader.opt_text()
    statement = _read_statement(reader)
    if statement is not None and not isinstance(statement, Select):
        raise WireError("query envelope statement is not a SELECT")
    return QueryEnvelope(
        app_id=app_id,
        level=level,
        cache_key=cache_key,
        template_name=template_name,
        template_sql=template_sql,
        statement=statement,
        statement_sql=reader.opt_text(),
        sealed_statement=reader.opt_blob(),
        sealed_params=reader.opt_blob(),
    )


def _write_update_envelope(writer: _Writer, envelope: UpdateEnvelope) -> None:
    writer.text(envelope.app_id)
    writer.u8(int(envelope.level))
    writer.text(envelope.opaque_id)
    writer.opt_text(envelope.template_name)
    writer.opt_text(envelope.template_sql)
    writer.opt_text(
        None if envelope.statement is None else to_sql(envelope.statement)
    )
    writer.opt_text(envelope.statement_sql)
    writer.opt_blob(envelope.sealed_statement)
    writer.opt_blob(envelope.sealed_params)


def _read_update_envelope(reader: _Reader) -> UpdateEnvelope:
    app_id = reader.text()
    level = _read_level(reader)
    opaque_id = reader.text()
    template_name = reader.opt_text()
    template_sql = reader.opt_text()
    statement = _read_statement(reader)
    if statement is not None and not isinstance(
        statement, (Insert, Delete, Update)
    ):
        raise WireError("update envelope statement is not a DML statement")
    return UpdateEnvelope(
        app_id=app_id,
        level=level,
        opaque_id=opaque_id,
        template_name=template_name,
        template_sql=template_sql,
        statement=statement,
        statement_sql=reader.opt_text(),
        sealed_statement=reader.opt_blob(),
        sealed_params=reader.opt_blob(),
    )


def _write_result_envelope(writer: _Writer, envelope: ResultEnvelope) -> None:
    writer.text(envelope.app_id)
    writer.opt_blob(
        None
        if envelope.plaintext is None
        else serialize_result(envelope.plaintext)
    )
    writer.opt_blob(envelope.ciphertext)


def _read_result_envelope(reader: _Reader) -> ResultEnvelope:
    app_id = reader.text()
    raw_plaintext = reader.opt_blob()
    if raw_plaintext is None:
        plaintext = None
    else:
        try:
            plaintext = deserialize_result(raw_plaintext)
        except CryptoError as error:
            raise WireError(str(error)) from error
    return ResultEnvelope(
        app_id=app_id, plaintext=plaintext, ciphertext=reader.opt_blob()
    )


# -- frame codecs ----------------------------------------------------------------


def _write_payload(writer: _Writer, frame: Frame) -> FrameType:
    if isinstance(frame, QueryRequest):
        _write_query_envelope(writer, frame.envelope)
        return FrameType.QUERY
    if isinstance(frame, UpdateRequest):
        writer.opt_text(frame.origin)
        _write_update_envelope(writer, frame.envelope)
        return FrameType.UPDATE
    if isinstance(frame, SubscribeRequest):
        writer.text(frame.node_id)
        writer.u32(len(frame.app_ids))
        for app_id in frame.app_ids:
            writer.text(app_id)
        return FrameType.SUBSCRIBE
    if isinstance(frame, QueryResponse):
        writer.u8(1 if frame.cache_hit else 0)
        _write_result_envelope(writer, frame.result)
        return FrameType.RESULT
    if isinstance(frame, UpdateResponse):
        writer.u32(frame.rows_affected)
        writer.u32(frame.invalidated)
        return FrameType.UPDATE_ACK
    if isinstance(frame, SubscribeResponse):
        writer.u32(len(frame.app_ids))
        for app_id in frame.app_ids:
            writer.text(app_id)
        return FrameType.SUBSCRIBED
    if isinstance(frame, InvalidationPush):
        _write_update_envelope(writer, frame.envelope)
        return FrameType.INVALIDATE
    if isinstance(frame, ErrorResponse):
        writer.u8(int(frame.code))
        writer.text(frame.message)
        return FrameType.ERROR
    raise WireError(f"cannot encode {type(frame).__name__}")


def _read_app_ids(reader: _Reader) -> tuple[str, ...]:
    count = reader.u32()
    if count > 4096:
        raise WireError(f"implausible app-id count {count}")
    return tuple(reader.text() for _ in range(count))


def _decode_payload(frame_type: int, payload: bytes) -> Frame:
    reader = _Reader(payload)
    if frame_type == FrameType.QUERY:
        frame: Frame = QueryRequest(_read_query_envelope(reader))
    elif frame_type == FrameType.UPDATE:
        origin = reader.opt_text()
        frame = UpdateRequest(_read_update_envelope(reader), origin=origin)
    elif frame_type == FrameType.SUBSCRIBE:
        node_id = reader.text()
        frame = SubscribeRequest(node_id, _read_app_ids(reader))
    elif frame_type == FrameType.RESULT:
        cache_hit = reader.u8() != 0
        frame = QueryResponse(_read_result_envelope(reader), cache_hit)
    elif frame_type == FrameType.UPDATE_ACK:
        frame = UpdateResponse(reader.u32(), reader.u32())
    elif frame_type == FrameType.SUBSCRIBED:
        frame = SubscribeResponse(_read_app_ids(reader))
    elif frame_type == FrameType.INVALIDATE:
        frame = InvalidationPush(_read_update_envelope(reader))
    elif frame_type == FrameType.ERROR:
        code_id = reader.u8()
        try:
            code = ErrorCode(code_id)
        except ValueError:
            raise WireError(f"unknown error code {code_id}") from None
        frame = ErrorResponse(code, reader.text())
    else:
        raise WireError(f"unknown frame type {frame_type}")
    reader.done()
    return frame


def encode_frame(frame: Frame, *, max_frame: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one frame, header included."""
    writer = _Writer()
    frame_type = _write_payload(writer, frame)
    payload = writer.getvalue()
    if len(payload) > max_frame:
        raise WireError(
            f"frame payload of {len(payload)} bytes exceeds limit {max_frame}"
        )
    return _HEADER.pack(MAGIC, VERSION, frame_type, len(payload)) + payload


def _check_header(header: bytes, *, max_frame: int) -> tuple[int, int]:
    magic, version, frame_type, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r}")
    if version != VERSION:
        raise WireError(f"unsupported protocol version {version}")
    if length > max_frame:
        raise WireError(f"frame of {length} bytes exceeds limit {max_frame}")
    return frame_type, length


def decode_frame(data: bytes, *, max_frame: int = MAX_FRAME_BYTES) -> Frame:
    """Inverse of :func:`encode_frame` for one complete frame.

    Raises:
        WireError: on any protocol violation, including partial frames and
            trailing bytes.
    """
    if len(data) < HEADER_SIZE:
        raise WireError(
            f"truncated header: {len(data)} of {HEADER_SIZE} bytes"
        )
    frame_type, length = _check_header(data[:HEADER_SIZE], max_frame=max_frame)
    payload = data[HEADER_SIZE:]
    if len(payload) != length:
        raise WireError(
            f"payload length mismatch: header says {length}, have {len(payload)}"
        )
    return _decode_payload(frame_type, payload)


# -- asyncio stream helpers ------------------------------------------------------


async def read_frame(
    reader: asyncio.StreamReader,
    *,
    max_frame: int = MAX_FRAME_BYTES,
    observer=None,
) -> Frame | None:
    """Read one frame from a stream; ``None`` on clean EOF between frames.

    ``observer(raw_bytes)``, if given, sees the exact bytes that crossed
    the wire — used by tests to assert what a network observer could learn.

    Raises:
        WireError: on EOF mid-frame, oversized frames, or codec failures.
    """
    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise WireError(
            f"connection closed mid-header ({len(error.partial)} bytes)"
        ) from error
    frame_type, length = _check_header(header, max_frame=max_frame)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise WireError(
            f"connection closed mid-frame ({len(error.partial)} of "
            f"{length} payload bytes)"
        ) from error
    if observer is not None:
        observer(header + payload)
    return _decode_payload(frame_type, payload)


async def write_frame(
    writer: asyncio.StreamWriter,
    frame: Frame,
    *,
    max_frame: int = MAX_FRAME_BYTES,
    observer=None,
) -> None:
    """Serialize and send one frame, waiting for the transport to drain."""
    data = encode_frame(frame, max_frame=max_frame)
    if observer is not None:
        observer(data)
    writer.write(data)
    await writer.drain()
