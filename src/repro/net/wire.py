"""Length-prefixed binary wire protocol for the DSSP service layer.

Framing, protocol version 2 (all integers big-endian)::

    +-------+---------+------------+---------+--------------+========+=========+
    | magic | version | frame type | rid len | payload len  |  rid   | payload |
    |  2 B  |   1 B   |    1 B     |   1 B   |     4 B      | rid B  |  len B  |
    +-------+---------+------------+---------+--------------+========+=========+

``rid`` is an optional request (trace) id — UTF-8, at most
:data:`MAX_REQUEST_ID_BYTES` bytes, empty when absent.  Clients mint one
per logical request (:func:`repro.obs.new_request_id`), servers echo it on
the response, and a DSSP node forwards the *same* id on its miss/update
hop to the home server, so one id correlates the whole request path.
Version 1 frames (no rid slot) are rejected: the id sits before the
payload and cannot be skipped safely.

Payloads are sequences of primitive fields: ``u8``/``u32`` integers,
length-prefixed UTF-8 strings, length-prefixed byte strings, and optionals
(a one-byte presence flag followed by the value).  Statements travel as
their SQL text and are re-parsed on decode — the parser/formatter pair
round-trips the AST exactly, which the codec property tests pin down.

Security invariant: the codec is a *projection* of the envelope — it writes
only fields the envelope carries, and envelopes carry plaintext only for
what their exposure level permits (see :mod:`repro.crypto.envelope`).  The
DSSP-visible bytes of a sealed envelope on the wire are therefore exactly
the DSSP-visible fields in memory; nothing is opened or re-sealed en route.

Every decode error raises :class:`~repro.errors.WireError` (the ``BAD_FRAME``
wire code): truncated or oversized frames, bad magic/version, unknown frame
types, trailing bytes, and statement text that does not parse.
"""

from __future__ import annotations

import asyncio
import enum
import json
import struct
from dataclasses import dataclass

from repro.analysis.exposure import ExposureLevel
from repro.crypto.envelope import (
    QueryEnvelope,
    ResultEnvelope,
    UpdateEnvelope,
    deserialize_result,
    serialize_result,
)
from repro.errors import CryptoError, SqlError, WireError
from repro.sql.ast import Delete, Insert, Select, Update
from repro.sql.formatter import to_sql
from repro.sql.parser import parse

__all__ = [
    "ErrorCode",
    "ErrorResponse",
    "Frame",
    "FrameType",
    "HEADER_SIZE",
    "InvalidationBatch",
    "InvalidationPush",
    "MAX_BATCH_ENTRIES",
    "MAX_FRAME_BYTES",
    "MAX_REQUEST_ID_BYTES",
    "QueryRequest",
    "QueryResponse",
    "StatsRequest",
    "StatsResponse",
    "SubscribeRequest",
    "SubscribeResponse",
    "UpdateRequest",
    "UpdateResponse",
    "decode_frame",
    "decode_traced",
    "encode_frame",
    "peek_raw",
    "read_frame",
    "read_raw_frame",
    "read_traced",
    "write_frame",
]

MAGIC = b"DW"
VERSION = 2
_HEADER = struct.Struct(">2sBBBI")
HEADER_SIZE = _HEADER.size
#: Default ceiling on payload size; a frame claiming more is rejected
#: before any allocation happens.
MAX_FRAME_BYTES = 8 * 1024 * 1024
#: Ceiling on the request-id slot in the header.
MAX_REQUEST_ID_BYTES = 64
#: Ceiling on entries in one ``INVALIDATE_BATCH`` frame.
MAX_BATCH_ENTRIES = 4096


class FrameType(enum.IntEnum):
    """One byte on the wire selecting the payload codec."""

    QUERY = 1
    UPDATE = 2
    SUBSCRIBE = 3
    RESULT = 4
    UPDATE_ACK = 5
    SUBSCRIBED = 6
    INVALIDATE = 7
    ERROR = 8
    STATS = 9
    STATS_RESULT = 10
    INVALIDATE_BATCH = 11


class ErrorCode(enum.IntEnum):
    """Typed wire error codes (replaces exception text on the boundary).

    Values are the on-wire byte and are frozen: never renumber an existing
    member; new codes take fresh values at the end.
    """

    UNKNOWN_APP = 1
    MISS_FORWARDED = 2
    TIMEOUT = 3
    BAD_FRAME = 4
    OVERLOADED = 5
    INTERNAL = 6


# -- frame dataclasses -----------------------------------------------------------


@dataclass(frozen=True)
class QueryRequest:
    """Client → DSSP (or DSSP → home, on a miss): serve this query."""

    envelope: QueryEnvelope


@dataclass(frozen=True)
class UpdateRequest:
    """Client → DSSP → home: apply this update.

    ``origin`` identifies the forwarding DSSP node so the home's
    invalidation stream can skip it (the origin invalidates synchronously
    before acknowledging its client).
    """

    envelope: UpdateEnvelope
    origin: str | None = None


@dataclass(frozen=True)
class SubscribeRequest:
    """DSSP → home: open the invalidation-stream channel.

    ``supports_batch`` advertises that the subscriber understands
    ``INVALIDATE_BATCH`` frames.  It is encoded as a trailing capability
    byte emitted *only when set*, so a subscriber that does not batch
    produces bytes identical to the pre-batching protocol and an old
    home simply never sees the field.

    ``shards``/``vnodes`` declare the sharded topology the subscriber is
    part of: the full ring membership plus the virtual-node count, enough
    for the home to rebuild the placement ring and narrow its fan-out to
    owning shards.  Encoded after the capability byte and emitted only
    when ``shards`` is non-empty (the capability byte is then always
    written, as 0 or 1, so the trailing fields stay unambiguous).
    """

    node_id: str
    app_ids: tuple[str, ...]
    supports_batch: bool = False
    shards: tuple[str, ...] = ()
    vnodes: int = 0


@dataclass(frozen=True)
class QueryResponse:
    """Answer to a :class:`QueryRequest` (still sealed per policy)."""

    result: ResultEnvelope
    cache_hit: bool


@dataclass(frozen=True)
class UpdateResponse:
    """Answer to an :class:`UpdateRequest`."""

    rows_affected: int
    invalidated: int


@dataclass(frozen=True)
class SubscribeResponse:
    """Answer to a :class:`SubscribeRequest`; the channel stays open.

    ``batch_enabled`` confirms the home will coalesce pushes into
    ``INVALIDATE_BATCH`` frames on this channel; same trailing-byte
    encoding as :class:`SubscribeRequest.supports_batch`.
    ``shard_filtered`` confirms the home accepted the declared shard
    topology and will narrow invalidation fan-out to owning shards; a
    second trailing byte, emitted only when set (the batch byte is then
    always written so positions stay unambiguous).
    """

    app_ids: tuple[str, ...]
    batch_enabled: bool = False
    shard_filtered: bool = False


@dataclass(frozen=True)
class InvalidationPush:
    """Home → subscribed DSSP node: a completed update to invalidate for."""

    envelope: UpdateEnvelope


@dataclass(frozen=True)
class InvalidationBatch:
    """Home → subscribed DSSP node: several coalesced pushes, one frame.

    Each entry pairs the originating request's trace id (optional) with
    the sealed update envelope, exactly as the equivalent sequence of
    singleton ``INVALIDATE`` frames would have carried them.  The frame's
    own header rid slot stays empty — per-entry ids preserve tracing
    across coalescing.
    """

    entries: tuple[tuple[str | None, UpdateEnvelope], ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise WireError("invalidation batch must not be empty")
        if len(self.entries) > MAX_BATCH_ENTRIES:
            raise WireError(
                f"invalidation batch of {len(self.entries)} entries "
                f"exceeds limit {MAX_BATCH_ENTRIES}"
            )


@dataclass(frozen=True)
class ErrorResponse:
    """Any failure crossing the boundary, as a typed code + message."""

    code: ErrorCode
    message: str


@dataclass(frozen=True)
class StatsRequest:
    """Ask a live node for its observability snapshot."""


@dataclass(frozen=True)
class StatsResponse:
    """A node's snapshot: its identity plus a JSON document.

    ``payload`` is the JSON serialization of the node's stats snapshot
    (counters, gauges, histogram quantiles).  It travels as text so the
    frame codec stays schema-free while the decoder still rejects
    non-JSON payloads at the boundary.
    """

    node_id: str
    payload: str


Frame = (
    QueryRequest
    | UpdateRequest
    | SubscribeRequest
    | QueryResponse
    | UpdateResponse
    | SubscribeResponse
    | InvalidationPush
    | InvalidationBatch
    | ErrorResponse
    | StatsRequest
    | StatsResponse
)


# -- primitive field codecs ------------------------------------------------------


class _Writer:
    def __init__(self) -> None:
        self._buf = bytearray()

    def u8(self, value: int) -> None:
        self._buf.append(value & 0xFF)

    def u32(self, value: int) -> None:
        self._buf += value.to_bytes(4, "big")

    def blob(self, value: bytes) -> None:
        self.u32(len(value))
        self._buf += value

    def text(self, value: str) -> None:
        self.blob(value.encode())

    def opt_blob(self, value: bytes | None) -> None:
        if value is None:
            self.u8(0)
        else:
            self.u8(1)
            self.blob(value)

    def opt_text(self, value: str | None) -> None:
        self.opt_blob(None if value is None else value.encode())

    def getvalue(self) -> bytes:
        return bytes(self._buf)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise WireError(
                f"truncated payload: wanted {count} bytes at offset "
                f"{self._pos}, have {len(self._data) - self._pos}"
            )
        piece = self._data[self._pos : end]
        self._pos = end
        return piece

    def u8(self) -> int:
        return self._take(1)[0]

    def u32(self) -> int:
        return int.from_bytes(self._take(4), "big")

    def blob(self) -> bytes:
        length = self.u32()
        return self._take(length)

    def text(self) -> str:
        try:
            return self.blob().decode()
        except UnicodeDecodeError as error:
            raise WireError(f"invalid UTF-8 in string field: {error}") from error

    def opt_blob(self) -> bytes | None:
        flag = self.u8()
        if flag == 0:
            return None
        if flag != 1:
            raise WireError(f"bad presence flag {flag}")
        return self.blob()

    def opt_text(self) -> str | None:
        raw = self.opt_blob()
        if raw is None:
            return None
        try:
            return raw.decode()
        except UnicodeDecodeError as error:
            raise WireError(f"invalid UTF-8 in string field: {error}") from error

    def at_end(self) -> bool:
        """True when the payload is exhausted (for trailing optionals)."""
        return self._pos == len(self._data)

    def done(self) -> None:
        if self._pos != len(self._data):
            raise WireError(
                f"{len(self._data) - self._pos} trailing bytes after payload"
            )


# -- envelope codecs -------------------------------------------------------------


def _read_level(reader: _Reader) -> ExposureLevel:
    raw = reader.u8()
    try:
        return ExposureLevel(raw)
    except ValueError:
        raise WireError(f"unknown exposure level {raw}") from None


def _read_statement(reader: _Reader):
    source = reader.opt_text()
    if source is None:
        return None
    try:
        return parse(source)
    except SqlError as error:
        raise WireError(f"statement does not parse: {error}") from error


def _write_query_envelope(writer: _Writer, envelope: QueryEnvelope) -> None:
    writer.text(envelope.app_id)
    writer.u8(int(envelope.level))
    writer.text(envelope.cache_key)
    writer.opt_text(envelope.template_name)
    writer.opt_text(envelope.template_sql)
    writer.opt_text(
        None if envelope.statement is None else to_sql(envelope.statement)
    )
    writer.opt_text(envelope.statement_sql)
    writer.opt_blob(envelope.sealed_statement)
    writer.opt_blob(envelope.sealed_params)


def _read_query_envelope(reader: _Reader) -> QueryEnvelope:
    app_id = reader.text()
    level = _read_level(reader)
    cache_key = reader.text()
    template_name = reader.opt_text()
    template_sql = reader.opt_text()
    statement = _read_statement(reader)
    if statement is not None and not isinstance(statement, Select):
        raise WireError("query envelope statement is not a SELECT")
    return QueryEnvelope(
        app_id=app_id,
        level=level,
        cache_key=cache_key,
        template_name=template_name,
        template_sql=template_sql,
        statement=statement,
        statement_sql=reader.opt_text(),
        sealed_statement=reader.opt_blob(),
        sealed_params=reader.opt_blob(),
    )


def _write_update_envelope(writer: _Writer, envelope: UpdateEnvelope) -> None:
    writer.text(envelope.app_id)
    writer.u8(int(envelope.level))
    writer.text(envelope.opaque_id)
    writer.opt_text(envelope.template_name)
    writer.opt_text(envelope.template_sql)
    writer.opt_text(
        None if envelope.statement is None else to_sql(envelope.statement)
    )
    writer.opt_text(envelope.statement_sql)
    writer.opt_blob(envelope.sealed_statement)
    writer.opt_blob(envelope.sealed_params)


def _read_update_envelope(reader: _Reader) -> UpdateEnvelope:
    app_id = reader.text()
    level = _read_level(reader)
    opaque_id = reader.text()
    template_name = reader.opt_text()
    template_sql = reader.opt_text()
    statement = _read_statement(reader)
    if statement is not None and not isinstance(
        statement, (Insert, Delete, Update)
    ):
        raise WireError("update envelope statement is not a DML statement")
    return UpdateEnvelope(
        app_id=app_id,
        level=level,
        opaque_id=opaque_id,
        template_name=template_name,
        template_sql=template_sql,
        statement=statement,
        statement_sql=reader.opt_text(),
        sealed_statement=reader.opt_blob(),
        sealed_params=reader.opt_blob(),
    )


def _write_result_envelope(writer: _Writer, envelope: ResultEnvelope) -> None:
    writer.text(envelope.app_id)
    writer.opt_blob(
        None
        if envelope.plaintext is None
        else serialize_result(envelope.plaintext)
    )
    writer.opt_blob(envelope.ciphertext)


def _read_result_envelope(reader: _Reader) -> ResultEnvelope:
    app_id = reader.text()
    raw_plaintext = reader.opt_blob()
    if raw_plaintext is None:
        plaintext = None
    else:
        try:
            plaintext = deserialize_result(raw_plaintext)
        except CryptoError as error:
            raise WireError(str(error)) from error
    return ResultEnvelope(
        app_id=app_id, plaintext=plaintext, ciphertext=reader.opt_blob()
    )


# -- frame codecs ----------------------------------------------------------------


def _write_payload(writer: _Writer, frame: Frame) -> FrameType:
    if isinstance(frame, QueryRequest):
        _write_query_envelope(writer, frame.envelope)
        return FrameType.QUERY
    if isinstance(frame, UpdateRequest):
        writer.opt_text(frame.origin)
        _write_update_envelope(writer, frame.envelope)
        return FrameType.UPDATE
    if isinstance(frame, SubscribeRequest):
        writer.text(frame.node_id)
        writer.u32(len(frame.app_ids))
        for app_id in frame.app_ids:
            writer.text(app_id)
        if frame.shards:
            if frame.vnodes < 1:
                raise WireError("shard topology requires vnodes >= 1")
            writer.u8(1 if frame.supports_batch else 0)
            writer.u32(frame.vnodes)
            writer.u32(len(frame.shards))
            for shard in frame.shards:
                writer.text(shard)
        elif frame.supports_batch:
            writer.u8(1)
        return FrameType.SUBSCRIBE
    if isinstance(frame, QueryResponse):
        writer.u8(1 if frame.cache_hit else 0)
        _write_result_envelope(writer, frame.result)
        return FrameType.RESULT
    if isinstance(frame, UpdateResponse):
        writer.u32(frame.rows_affected)
        writer.u32(frame.invalidated)
        return FrameType.UPDATE_ACK
    if isinstance(frame, SubscribeResponse):
        writer.u32(len(frame.app_ids))
        for app_id in frame.app_ids:
            writer.text(app_id)
        if frame.shard_filtered:
            writer.u8(1 if frame.batch_enabled else 0)
            writer.u8(1)
        elif frame.batch_enabled:
            writer.u8(1)
        return FrameType.SUBSCRIBED
    if isinstance(frame, InvalidationPush):
        _write_update_envelope(writer, frame.envelope)
        return FrameType.INVALIDATE
    if isinstance(frame, InvalidationBatch):
        writer.u32(len(frame.entries))
        for entry_rid, envelope in frame.entries:
            writer.opt_text(entry_rid)
            _write_update_envelope(writer, envelope)
        return FrameType.INVALIDATE_BATCH
    if isinstance(frame, ErrorResponse):
        writer.u8(int(frame.code))
        writer.text(frame.message)
        return FrameType.ERROR
    if isinstance(frame, StatsRequest):
        return FrameType.STATS
    if isinstance(frame, StatsResponse):
        writer.text(frame.node_id)
        writer.text(frame.payload)
        return FrameType.STATS_RESULT
    raise WireError(f"cannot encode {type(frame).__name__}")


def _read_app_ids(reader: _Reader) -> tuple[str, ...]:
    count = reader.u32()
    if count > 4096:
        raise WireError(f"implausible app-id count {count}")
    return tuple(reader.text() for _ in range(count))


def _read_capability(reader: _Reader) -> bool:
    """Trailing optional capability byte; absent means unsupported.

    Pre-batching peers end the payload here, so absence (not a zero
    byte) is the backward-compatible "no" — emitters write the byte
    unset (0) only when a later trailing field forces its presence.
    """
    if reader.at_end():
        return False
    flag = reader.u8()
    if flag not in (0, 1):
        raise WireError(f"bad capability byte {flag}")
    return flag == 1


def _read_shard_topology(reader: _Reader) -> tuple[tuple[str, ...], int]:
    """Trailing shard-topology fields; absent means unsharded."""
    if reader.at_end():
        return (), 0
    vnodes = reader.u32()
    if vnodes < 1:
        raise WireError(f"implausible vnode count {vnodes}")
    count = reader.u32()
    if count == 0 or count > 4096:
        raise WireError(f"implausible shard count {count}")
    return tuple(reader.text() for _ in range(count)), vnodes


def _decode_payload(frame_type: int, payload: bytes) -> Frame:
    reader = _Reader(payload)
    if frame_type == FrameType.QUERY:
        frame: Frame = QueryRequest(_read_query_envelope(reader))
    elif frame_type == FrameType.UPDATE:
        origin = reader.opt_text()
        frame = UpdateRequest(_read_update_envelope(reader), origin=origin)
    elif frame_type == FrameType.SUBSCRIBE:
        node_id = reader.text()
        app_ids = _read_app_ids(reader)
        supports_batch = _read_capability(reader)
        shards, vnodes = _read_shard_topology(reader)
        frame = SubscribeRequest(
            node_id,
            app_ids,
            supports_batch=supports_batch,
            shards=shards,
            vnodes=vnodes,
        )
    elif frame_type == FrameType.RESULT:
        cache_hit = reader.u8() != 0
        frame = QueryResponse(_read_result_envelope(reader), cache_hit)
    elif frame_type == FrameType.UPDATE_ACK:
        frame = UpdateResponse(reader.u32(), reader.u32())
    elif frame_type == FrameType.SUBSCRIBED:
        app_ids = _read_app_ids(reader)
        batch_enabled = _read_capability(reader)
        frame = SubscribeResponse(
            app_ids,
            batch_enabled=batch_enabled,
            shard_filtered=_read_capability(reader),
        )
    elif frame_type == FrameType.INVALIDATE:
        frame = InvalidationPush(_read_update_envelope(reader))
    elif frame_type == FrameType.INVALIDATE_BATCH:
        count = reader.u32()
        if count == 0 or count > MAX_BATCH_ENTRIES:
            raise WireError(f"implausible batch entry count {count}")
        frame = InvalidationBatch(
            tuple(
                (reader.opt_text(), _read_update_envelope(reader))
                for _ in range(count)
            )
        )
    elif frame_type == FrameType.ERROR:
        code_id = reader.u8()
        try:
            code = ErrorCode(code_id)
        except ValueError:
            raise WireError(f"unknown error code {code_id}") from None
        frame = ErrorResponse(code, reader.text())
    elif frame_type == FrameType.STATS:
        frame = StatsRequest()
    elif frame_type == FrameType.STATS_RESULT:
        node_id = reader.text()
        payload = reader.text()
        try:
            json.loads(payload)
        except ValueError as error:
            raise WireError(f"stats payload is not JSON: {error}") from error
        frame = StatsResponse(node_id, payload)
    else:
        raise WireError(f"unknown frame type {frame_type}")
    reader.done()
    return frame


def _encode_request_id(request_id: str | None) -> bytes:
    if request_id is None:
        return b""
    encoded = request_id.encode()
    if len(encoded) > MAX_REQUEST_ID_BYTES:
        raise WireError(
            f"request id of {len(encoded)} bytes exceeds "
            f"limit {MAX_REQUEST_ID_BYTES}"
        )
    return encoded


def _decode_request_id(raw: bytes) -> str | None:
    if not raw:
        return None
    try:
        return raw.decode()
    except UnicodeDecodeError as error:
        raise WireError(f"invalid UTF-8 in request id: {error}") from error


def encode_frame(
    frame: Frame,
    *,
    request_id: str | None = None,
    max_frame: int = MAX_FRAME_BYTES,
) -> bytes:
    """Serialize one frame, header (and optional request id) included."""
    writer = _Writer()
    frame_type = _write_payload(writer, frame)
    payload = writer.getvalue()
    if len(payload) > max_frame:
        raise WireError(
            f"frame payload of {len(payload)} bytes exceeds limit {max_frame}"
        )
    rid = _encode_request_id(request_id)
    header = _HEADER.pack(MAGIC, VERSION, frame_type, len(rid), len(payload))
    return header + rid + payload


def _check_header(header: bytes, *, max_frame: int) -> tuple[int, int, int]:
    magic, version, frame_type, rid_length, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r}")
    if version != VERSION:
        raise WireError(f"unsupported protocol version {version}")
    if rid_length > MAX_REQUEST_ID_BYTES:
        raise WireError(
            f"request id of {rid_length} bytes exceeds "
            f"limit {MAX_REQUEST_ID_BYTES}"
        )
    if length > max_frame:
        raise WireError(f"frame of {length} bytes exceeds limit {max_frame}")
    return frame_type, rid_length, length


def decode_traced(
    data: bytes, *, max_frame: int = MAX_FRAME_BYTES
) -> tuple[Frame, str | None]:
    """Inverse of :func:`encode_frame`: ``(frame, request_id)``.

    Raises:
        WireError: on any protocol violation, including partial frames and
            trailing bytes.
    """
    if len(data) < HEADER_SIZE:
        raise WireError(
            f"truncated header: {len(data)} of {HEADER_SIZE} bytes"
        )
    frame_type, rid_length, length = _check_header(
        data[:HEADER_SIZE], max_frame=max_frame
    )
    body = data[HEADER_SIZE:]
    if len(body) != rid_length + length:
        raise WireError(
            f"frame length mismatch: header says {rid_length}+{length}, "
            f"have {len(body)}"
        )
    request_id = _decode_request_id(body[:rid_length])
    return _decode_payload(frame_type, body[rid_length:]), request_id


def decode_frame(data: bytes, *, max_frame: int = MAX_FRAME_BYTES) -> Frame:
    """:func:`decode_traced` for callers that ignore the request id."""
    return decode_traced(data, max_frame=max_frame)[0]


def peek_raw(data: bytes) -> tuple[int, str | None]:
    """``(frame_type, request_id)`` of a raw frame without decoding it.

    The chaos proxy keys its fault decisions on the frame type and logs
    the trace id of the frame it mutates; neither requires (or should
    risk) running the payload codecs.  The header must already have been
    validated by :func:`read_raw_frame`.
    """
    rid_length = data[4]
    return data[3], _decode_request_id(
        data[HEADER_SIZE : HEADER_SIZE + rid_length]
    )


# -- asyncio stream helpers ------------------------------------------------------


async def read_raw_frame(
    reader: asyncio.StreamReader, *, max_frame: int = MAX_FRAME_BYTES
) -> bytes | None:
    """Read one frame's exact bytes (header included); ``None`` on EOF.

    Only the header is validated — the payload is passed through opaque,
    which is what a frame-delimiting proxy needs: it must forward sealed
    payloads untouched, not decode them.

    Raises:
        WireError: on EOF mid-frame or a malformed header.
    """
    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise WireError(
            f"connection closed mid-header ({len(error.partial)} bytes)"
        ) from error
    _, rid_length, length = _check_header(header, max_frame=max_frame)
    try:
        body = await reader.readexactly(rid_length + length)
    except asyncio.IncompleteReadError as error:
        raise WireError(
            f"connection closed mid-frame ({len(error.partial)} of "
            f"{rid_length + length} body bytes)"
        ) from error
    return header + body


async def read_traced(
    reader: asyncio.StreamReader,
    *,
    max_frame: int = MAX_FRAME_BYTES,
    observer=None,
) -> tuple[Frame, str | None] | None:
    """Read one frame + request id; ``None`` on clean EOF between frames.

    ``observer(raw_bytes)``, if given, sees the exact bytes that crossed
    the wire — used by tests to assert what a network observer could learn.

    Raises:
        WireError: on EOF mid-frame, oversized frames, or codec failures.
    """
    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise WireError(
            f"connection closed mid-header ({len(error.partial)} bytes)"
        ) from error
    frame_type, rid_length, length = _check_header(header, max_frame=max_frame)
    try:
        body = await reader.readexactly(rid_length + length)
    except asyncio.IncompleteReadError as error:
        raise WireError(
            f"connection closed mid-frame ({len(error.partial)} of "
            f"{rid_length + length} body bytes)"
        ) from error
    if observer is not None:
        observer(header + body)
    request_id = _decode_request_id(body[:rid_length])
    return _decode_payload(frame_type, body[rid_length:]), request_id


async def read_frame(
    reader: asyncio.StreamReader,
    *,
    max_frame: int = MAX_FRAME_BYTES,
    observer=None,
) -> Frame | None:
    """:func:`read_traced` for callers that ignore the request id."""
    traced = await read_traced(reader, max_frame=max_frame, observer=observer)
    return None if traced is None else traced[0]


async def write_frame(
    writer: asyncio.StreamWriter,
    frame: Frame,
    *,
    request_id: str | None = None,
    max_frame: int = MAX_FRAME_BYTES,
    observer=None,
) -> None:
    """Serialize and send one frame, waiting for the transport to drain."""
    data = encode_frame(frame, request_id=request_id, max_frame=max_frame)
    if observer is not None:
        observer(data)
    writer.write(data)
    await writer.drain()
