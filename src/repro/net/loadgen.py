"""Closed-loop load generator for a live DSSP topology.

Drives the networked system with the same Zipf page workloads the
analytic experiments use, but *measures* instead of predicting: N virtual
clients each run a closed loop (think → request page → wait for all of the
page's operations → next page), exactly the client model of the paper's
simulator, and the report carries measured throughput and p50/p90 page
latencies per strategy.

Fairness across strategies comes from a recorded
:class:`~repro.workloads.trace.Trace`: every strategy replays the identical
operation stream (the trace persists through ``Trace.to_json`` so separate
loadgen processes can share one).  Client affinity over multiple DSSP
endpoints is stable (client *i* → endpoint ``i % len(endpoints)``), the
same CDN-style routing as :class:`~repro.dssp.cluster.DsspCluster`.

The measured counts also yield a
:class:`~repro.simulation.scalability.CacheBehavior`, so a measured run is
directly cross-checkable against the analytic
:func:`~repro.simulation.scalability.predict_p90`.

``pipeline=N`` switches each virtual client from one closed loop to ``N``
concurrent page lanes on its endpoint — a *partially* open mode that
keeps up to ``N`` pages in flight per client but still clocks issuance
off completions.  Pair it with endpoints built as
``WireClient(pipeline=N)`` so the extra concurrency multiplexes over one
pipelined connection instead of fanning out across the pool.

True open-loop measurement lives in :func:`run_open_load`: a seeded
:class:`~repro.net.traffic.ArrivalSchedule` launches pages on its own
clock regardless of completions, a bounded outstanding-request guard
drops (and counts) arrivals the system cannot absorb, and the report
carries offered vs achieved rate so overload is measured, not hidden.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, replace

from repro.analysis.exposure import ExposurePolicy
from repro.crypto.envelope import EnvelopeCodec
from repro.errors import NetError, WorkloadError
from repro.net.client import WireClient
from repro.net.traffic import ArrivalSchedule
from repro.obs import Histogram
from repro.simulation.scalability import CacheBehavior
from repro.workloads.trace import Trace

__all__ = ["LoadReport", "TenantWorkload", "run_load", "run_open_load"]


@dataclass(frozen=True)
class LoadReport:
    """What a closed-loop run against a live topology measured."""

    clients: int
    duration_s: float
    pages: int
    queries: int
    updates: int
    hits: int
    errors: int
    #: Page latencies in fixed log buckets; O(1) per observation, O(buckets)
    #: per quantile — no re-sorting the full sample list.
    latency: Histogram
    #: Page lanes per client (1 = closed loop, N = open-loop pipelined).
    pipeline: int = 1
    #: Pages whose lane was already in flight at the deadline and finished
    #: after it.  In closed/pipelined runs they (and their operations) are
    #: excluded from the headline counts above — a duration-bounded run
    #: would otherwise overstate throughput at high ``pipeline``, since up
    #: to clients×pipeline lanes can straggle past the cutoff.  In
    #: open-loop runs (``open_loop=True``) the arrival schedule already
    #: bounds issuance, so late pages *stay* in the headline counts and
    #: this field just counts drain stragglers — dropping their (long)
    #: latencies would understate the tail exactly where the knee lives.
    late_pages: int = 0
    #: True when an arrival schedule clocked issuance
    #: (:func:`run_open_load`); False for completion-clocked runs, even
    #: pipelined ones — ``pipeline=N`` bounds in-flight pages but still
    #: only issues on completion, so it can never overload the system.
    open_loop: bool = False
    #: Arrivals the run *offered*.  Closed/pipelined runs issue every
    #: arrival they offer (``offered == pages + late_pages + errors``);
    #: open-loop runs may drop some at the outstanding guard.  The
    #: invariant either way: ``offered == issued + dropped``.  0 on
    #: reports from callers that predate offered-load accounting.
    offered: int = 0
    #: Offered arrivals never issued because ``max_outstanding`` requests
    #: were already in flight.  Always 0 for closed/pipelined runs.
    dropped: int = 0
    #: The arrival schedule's compact description (kind, rate, seed,
    #: sha256 digest — see ``ArrivalSchedule.to_dict``); ``None`` for
    #: closed-loop runs.
    arrival: dict | None = None
    #: Per-application books for multi-tenant runs: app id → counter dict
    #: (offered/dropped/pages/late_pages/errors/queries/updates/hits);
    #: ``None`` for single-tenant runs.
    per_app: dict | None = None
    #: Server-side invalidations this run caused, when the caller fetched
    #: STATS around the run (see :meth:`with_invalidations`); ``None``
    #: means "not measured", never "zero".
    invalidations: int | None = None
    #: Per-phase latency breakdown sourced from the client's local span
    #: sink (see :func:`repro.obs.assemble.phase_aggregates`), when the
    #: run traced itself; ``None`` means "not traced".
    phases: dict | None = None

    @property
    def hit_rate(self) -> float:
        """Fraction of queries answered from a DSSP cache."""
        if not self.queries:
            return 0.0
        return self.hits / self.queries

    @property
    def throughput_pages_s(self) -> float:
        """Completed pages per wall-clock second."""
        if self.duration_s <= 0:
            return 0.0
        return self.pages / self.duration_s

    @property
    def mode(self) -> str:
        """``open`` | ``pipelined`` | ``closed`` — how issuance was clocked."""
        if self.open_loop:
            return "open"
        return "pipelined" if self.pipeline > 1 else "closed"

    @property
    def issued(self) -> int:
        """Offered arrivals that were actually launched."""
        return self.offered - self.dropped

    @property
    def offered_rate_s(self) -> float:
        """Offered arrivals per second (the open-loop x-axis)."""
        if self.duration_s <= 0:
            return 0.0
        return self.offered / self.duration_s

    @property
    def achieved_rate_s(self) -> float:
        """Completed pages per second — diverges from ``offered_rate_s``
        past the knee, where drops, errors, and stragglers absorb the
        difference."""
        return self.throughput_pages_s

    @property
    def drop_rate(self) -> float:
        """Fraction of offered arrivals dropped at the outstanding guard."""
        if not self.offered:
            return 0.0
        return self.dropped / self.offered

    def percentile(self, fraction: float) -> float:
        """Page-latency percentile (0 < fraction <= 1)."""
        return self.latency.quantile(fraction)

    @property
    def p50_s(self) -> float:
        """Median page latency."""
        return self.percentile(0.50)

    @property
    def p90_s(self) -> float:
        """90th-percentile page latency (the paper's SLA metric)."""
        return self.percentile(0.90)

    @property
    def p99_s(self) -> float:
        """99th-percentile page latency (tail behaviour under load)."""
        return self.percentile(0.99)

    def with_invalidations(self, invalidations: int) -> "LoadReport":
        """Copy of this report with the server-side invalidation count.

        The client cannot observe invalidations directly; callers that
        fetch STATS snapshots before and after the run attach the delta
        here so :meth:`behavior` can report a real
        ``invalidations_per_update``.
        """
        if invalidations < 0:
            raise WorkloadError(
                f"invalidation count cannot be negative: {invalidations}"
            )
        return replace(self, invalidations=invalidations)

    def with_phases(self, phases: dict) -> "LoadReport":
        """Copy of this report with a per-phase latency breakdown.

        The load generator itself only times whole pages; a caller that
        ran with a local span sink attaches the per-phase aggregates
        (``repro.obs.assemble.phase_aggregates`` over the sink's spans)
        so the JSON report can show where page time went.
        """
        return replace(self, phases=dict(phases))

    def behavior(self) -> CacheBehavior:
        """Measured per-page profile, for ``predict_p90`` cross-checks.

        Raises:
            WorkloadError: if no pages completed, or if updates ran but
                the server-side invalidation count was never attached
                (``invalidations is None``).  Silently reporting a zero
                ratio would feed ``predict_p90`` a fan-out cost the run
                did not actually have; a caller without server stats must
                either attach a measured delta via
                :meth:`with_invalidations` or skip the profile.
        """
        if not self.pages:
            raise WorkloadError("no pages completed; nothing to profile")
        if self.updates and self.invalidations is None:
            raise WorkloadError(
                f"{self.updates} updates ran but invalidations were not "
                "measured; attach the server STATS delta with "
                "with_invalidations() before profiling"
            )
        if self.updates:
            invalidations_per_update = self.invalidations / self.updates
        else:
            invalidations_per_update = 0.0
        return CacheBehavior(
            pages=self.pages,
            queries_per_page=self.queries / self.pages,
            hits_per_page=self.hits / self.pages,
            misses_per_page=(self.queries - self.hits) / self.pages,
            updates_per_page=self.updates / self.pages,
            invalidations_per_update=invalidations_per_update,
        )

    def summary(self) -> str:
        """One-line human-readable digest."""
        line = (
            f"pages={self.pages} throughput={self.throughput_pages_s:.1f}/s "
            f"p50={self.p50_s * 1000:.1f}ms p90={self.p90_s * 1000:.1f}ms "
            f"p99={self.p99_s * 1000:.1f}ms "
            f"hits={self.hits} hit_rate={self.hit_rate:.3f} "
            f"errors={self.errors} late_pages={self.late_pages}"
        )
        if self.open_loop:
            line += (
                f" offered={self.offered_rate_s:.1f}/s "
                f"achieved={self.achieved_rate_s:.1f}/s "
                f"dropped={self.dropped} ({self.drop_rate:.1%})"
            )
        return line

    def to_dict(self) -> dict:
        """JSON-safe report for machine consumers (CI artifacts)."""
        report = {
            "clients": self.clients,
            "pipeline": self.pipeline,
            "mode": self.mode,
            "invalidations": self.invalidations,
            "duration_s": self.duration_s,
            "offered": self.offered,
            "dropped": self.dropped,
            "pages": self.pages,
            "queries": self.queries,
            "updates": self.updates,
            "hits": self.hits,
            "errors": self.errors,
            "late_pages": self.late_pages,
            "hit_rate": self.hit_rate,
            "offered_rate_s": self.offered_rate_s,
            "achieved_rate_s": self.achieved_rate_s,
            "drop_rate": self.drop_rate,
            "throughput_pages_s": self.throughput_pages_s,
            "p50_s": self.p50_s,
            "p90_s": self.p90_s,
            "p99_s": self.p99_s,
            "latency": self.latency.snapshot(),
        }
        if self.arrival is not None:
            report["arrival"] = self.arrival
        if self.per_app is not None:
            report["per_app"] = self.per_app
        if self.phases is not None:
            report["phases"] = self.phases
        return report


class _SharedStream:
    """Hands consecutive trace pages to whichever client asks next."""

    def __init__(
        self, trace: Trace, pages: int | None, deadline: float | None
    ) -> None:
        self._trace = trace
        self._remaining = pages
        self._deadline = deadline

    def next_page(self):
        if self.past_deadline():
            return None
        if self._remaining is not None:
            if self._remaining <= 0:
                return None
            self._remaining -= 1
        return self._trace.sample_page()

    def past_deadline(self) -> bool:
        return (
            self._deadline is not None
            and time.perf_counter() >= self._deadline
        )


async def run_load(
    endpoints: list[WireClient],
    codec: EnvelopeCodec,
    policy: ExposurePolicy,
    trace: Trace,
    *,
    clients: int = 8,
    pages: int | None = None,
    duration_s: float | None = None,
    pipeline: int = 1,
    fail_fast: bool = False,
    on_page=None,
) -> LoadReport:
    """Drive a live topology and measure it.

    Args:
        endpoints: One :class:`WireClient` per DSSP node.
        codec: The application's trusted client-side codec (holds keys).
        policy: Exposure policy used to seal each operation.
        trace: Recorded page stream, already bound to the registry.
        clients: Closed-loop virtual client count.
        pages: Stop after this many pages (None = until ``duration_s``).
        duration_s: Stop after this much wall-clock time.
        pipeline: Concurrent page lanes per client (1 = closed loop);
            client affinity to its endpoint is unchanged, the lanes just
            keep that many pages in flight at once.
        fail_fast: Re-raise the first request error instead of counting it.
        on_page: Optional async callback awaited with the cumulative
            completed-page count after each page (chaos uses it to sever
            connections every N pages).

    Note:
        A duration-bounded run can wrap around the trace; replayed INSERT
        operations then collide with rows the first pass already created
        and the home rejects them.  Those pages land in ``errors`` — keep
        ``pages <= len(trace)`` when a clean error count matters.

    Returns:
        The measured :class:`LoadReport`.
    """
    if not endpoints:
        raise WorkloadError("loadgen needs at least one DSSP endpoint")
    if pages is None and duration_s is None:
        raise WorkloadError("set a pages budget or a duration (or both)")
    if pipeline < 1:
        raise WorkloadError(f"pipeline must be >= 1, got {pipeline}")
    started = time.perf_counter()
    stream = _SharedStream(
        trace,
        pages,
        None if duration_s is None else started + duration_s,
    )
    counters = {
        "offered": 0,
        "pages": 0,
        "queries": 0,
        "updates": 0,
        "hits": 0,
        "errors": 0,
        "late_pages": 0,
    }
    latency = Histogram("loadgen.page_seconds")

    async def client_loop(client_id: int) -> None:
        endpoint = endpoints[client_id % len(endpoints)]
        while True:
            page = stream.next_page()
            if page is None:
                return
            # Completion-clocked issuance: every offered page is issued,
            # so offered == pages + late_pages + errors and dropped stays
            # 0.  Tracking it anyway keeps the open-loop accounting
            # identity (offered == issued + dropped) checkable on every
            # report, pipelined or not.
            counters["offered"] += 1
            page_started = time.perf_counter()
            # Operations always merge into the counters — they really hit
            # the servers, and server-side counters (hits, invalidations)
            # must stay reconcilable with the client's books.  Only the
            # *page* is conditional: a page finishing after the deadline
            # is excluded from ``pages`` and the latency histogram so
            # duration-bounded throughput is not overstated.
            local = {"queries": 0, "updates": 0, "hits": 0}
            failed = False
            for operation in page:
                bound = operation.bound
                try:
                    if operation.is_update:
                        level = policy.update_level(bound.template.name)
                        await endpoint.update(codec.seal_update(bound, level))
                        local["updates"] += 1
                    else:
                        level = policy.query_level(bound.template.name)
                        outcome = await endpoint.query(
                            codec.seal_query(bound, level)
                        )
                        local["queries"] += 1
                        if outcome.cache_hit:
                            local["hits"] += 1
                except NetError:
                    if fail_fast:
                        raise
                    counters["errors"] += 1
                    failed = True
                    break
            for key, count in local.items():
                counters[key] += count
            if failed:
                continue
            if stream.past_deadline():
                counters["late_pages"] += 1
                continue
            counters["pages"] += 1
            latency.observe(time.perf_counter() - page_started)
            if on_page is not None:
                await on_page(counters["pages"])

    await asyncio.gather(
        *(
            client_loop(client_id)
            for client_id in range(clients)
            for _ in range(pipeline)
        )
    )
    elapsed = time.perf_counter() - started
    if duration_s is not None:
        # Headline pages all finished inside the budget (stragglers are
        # in ``late_pages``), so the matching denominator is the budget
        # window, not the budget plus straggler drain time.
        elapsed = min(elapsed, duration_s)
    return LoadReport(
        clients=clients,
        duration_s=elapsed,
        pages=counters["pages"],
        queries=counters["queries"],
        updates=counters["updates"],
        hits=counters["hits"],
        errors=counters["errors"],
        latency=latency,
        pipeline=pipeline,
        late_pages=counters["late_pages"],
        offered=counters["offered"],
        dropped=0,
    )


@dataclass(frozen=True)
class TenantWorkload:
    """One application's share of an open-loop run.

    ``weight`` is the tenant's share of arrivals (normalised over all
    tenants); ``hot_page`` is a pre-bound operation list the generator
    substitutes for arrivals the schedule marks hot (flash crowds aim
    their surge at one template).
    """

    app: str
    codec: EnvelopeCodec
    policy: ExposurePolicy
    trace: Trace
    weight: float = 1.0
    hot_page: tuple | None = None

    def __post_init__(self) -> None:
        if not self.weight > 0:
            raise WorkloadError(
                f"tenant {self.app!r} weight must be positive, "
                f"got {self.weight}"
            )


_PER_APP_KEYS = (
    "offered",
    "dropped",
    "pages",
    "late_pages",
    "errors",
    "queries",
    "updates",
    "hits",
)


async def run_open_load(
    endpoints: list[WireClient],
    tenants: list[TenantWorkload],
    schedule: ArrivalSchedule,
    *,
    max_outstanding: int = 256,
    fail_fast: bool = False,
    on_page=None,
) -> LoadReport:
    """Drive a live topology open-loop: issue on the arrival schedule.

    Each timestamp in ``schedule`` launches one page without waiting for
    earlier pages — offered load is the schedule's, not the system's.
    The only brake is ``max_outstanding``: an arrival finding that many
    pages already in flight is *dropped* and counted, never queued, so
    the report says how much offered load the system absorbed instead of
    letting an unbounded task pile hide the overload (and eventually
    falsify latencies with scheduler noise).

    Tenants split arrivals by ``weight`` via a seeded choice that
    consumes one RNG draw per arrival whether or not the arrival is
    dropped — per-app offered counts depend only on the schedule and
    seed, not on timing.  Arrivals the schedule marks hot use the
    tenant's ``hot_page`` (when set) instead of advancing its trace.

    Unlike :func:`run_load`, pages completing after the schedule window
    stay in the headline counts and histogram (``late_pages`` just
    counts them): under overload the stragglers *are* the tail, and
    excluding them would flatter p99 exactly where the knee lives.

    Returns a :class:`LoadReport` with ``open_loop=True``, offered /
    dropped accounting, the schedule's digest under ``arrival``, and
    per-app books when more than one tenant runs.
    """
    if not endpoints:
        raise WorkloadError("open-loop loadgen needs at least one endpoint")
    if not tenants:
        raise WorkloadError("open-loop loadgen needs at least one tenant")
    if max_outstanding < 1:
        raise WorkloadError(
            f"max_outstanding must be >= 1, got {max_outstanding}"
        )
    apps = [tenant.app for tenant in tenants]
    if len(set(apps)) != len(apps):
        raise WorkloadError(f"duplicate tenant apps: {apps}")
    weights = [tenant.weight for tenant in tenants]
    tenant_rng = random.Random(f"tenants:{schedule.seed}")
    counters = {key: 0 for key in _PER_APP_KEYS}
    per_app = {
        tenant.app: {key: 0 for key in _PER_APP_KEYS} for tenant in tenants
    }
    latency = Histogram("loadgen.page_seconds")
    outstanding: set[asyncio.Task] = set()
    failures: list[BaseException] = []
    started = time.perf_counter()
    window_end = started + schedule.duration_s

    async def run_page(tenant: TenantWorkload, page, endpoint) -> None:
        books = per_app[tenant.app]
        page_started = time.perf_counter()
        local = {"queries": 0, "updates": 0, "hits": 0}
        failed = False
        for operation in page:
            bound = operation.bound
            try:
                if operation.is_update:
                    level = tenant.policy.update_level(bound.template.name)
                    await endpoint.update(
                        tenant.codec.seal_update(bound, level)
                    )
                    local["updates"] += 1
                else:
                    level = tenant.policy.query_level(bound.template.name)
                    outcome = await endpoint.query(
                        tenant.codec.seal_query(bound, level)
                    )
                    local["queries"] += 1
                    if outcome.cache_hit:
                        local["hits"] += 1
            except NetError as error:
                if fail_fast:
                    failures.append(error)
                counters["errors"] += 1
                books["errors"] += 1
                failed = True
                break
        for key, count in local.items():
            counters[key] += count
            books[key] += count
        if failed:
            return
        finished = time.perf_counter()
        if finished > window_end:
            counters["late_pages"] += 1
            books["late_pages"] += 1
        counters["pages"] += 1
        books["pages"] += 1
        latency.observe(finished - page_started)
        if on_page is not None:
            await on_page(counters["pages"])

    for index, at in enumerate(schedule.timestamps):
        if len(tenants) == 1:
            tenant = tenants[0]
        else:
            pick = tenant_rng.choices(range(len(tenants)), weights=weights)
            tenant = tenants[pick[0]]
        target = started + at
        delay = target - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        if failures and fail_fast:
            break
        counters["offered"] += 1
        per_app[tenant.app]["offered"] += 1
        if len(outstanding) >= max_outstanding:
            counters["dropped"] += 1
            per_app[tenant.app]["dropped"] += 1
            continue
        hot = bool(schedule.hot) and schedule.hot[index]
        if hot and tenant.hot_page is not None:
            page = tenant.hot_page
        else:
            page = tenant.trace.sample_page()
        task = asyncio.create_task(
            run_page(tenant, page, endpoints[index % len(endpoints)])
        )
        outstanding.add(task)
        task.add_done_callback(outstanding.discard)

    if outstanding:
        await asyncio.gather(*outstanding)
    if failures and fail_fast:
        raise failures[0]
    return LoadReport(
        clients=len(endpoints),
        duration_s=schedule.duration_s,
        pages=counters["pages"],
        queries=counters["queries"],
        updates=counters["updates"],
        hits=counters["hits"],
        errors=counters["errors"],
        latency=latency,
        pipeline=1,
        late_pages=counters["late_pages"],
        open_loop=True,
        offered=counters["offered"],
        dropped=counters["dropped"],
        arrival=schedule.to_dict(),
        per_app=per_app if len(tenants) > 1 else None,
    )
