"""Seeded open-loop arrival processes for the load generator.

The paper's scalability claim is a curve — users served at a latency
target — and a curve needs offered load the system does not control.  A
closed-loop client waits for each page before requesting the next, so
under overload it self-throttles and the measured throughput follows the
service rate instead of exposing the knee.  The processes here generate
the *arrival schedule* up front, independent of completions: every
timestamp is an offered request, whether or not the system keeps up.

Every process is a pure function of ``(rate, seed, duration)``: the same
inputs reproduce the identical timestamp tuple, and
:meth:`ArrivalSchedule.digest` commits to it byte-for-byte so a report
(or a CI gate) can prove two runs offered exactly the same load.

Four shapes cover the ROADMAP's scenario-diversity item:

- :class:`PoissonArrivals` — memoryless steady load (open-loop M/G/k).
- :class:`OnOffArrivals` — bursty ON/OFF windows; same mean rate, but the
  load arrives compressed into ON periods.
- :class:`DiurnalArrivals` — a sinusoidal day-curve, thinned from a
  homogeneous peak-rate stream (non-homogeneous Poisson).
- :class:`FlashCrowdArrivals` — steady baseline plus a mid-run spike
  window that multiplies the rate and concentrates a configurable
  fraction of spike traffic on one hot template (the ``hot`` mask; the
  load generator maps hot arrivals to a single hot page).
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from dataclasses import dataclass, field

from repro.errors import WorkloadError

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalSchedule",
    "PoissonArrivals",
    "OnOffArrivals",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "make_arrivals",
]

#: CLI-facing names accepted by :func:`make_arrivals`.
ARRIVAL_KINDS = ("poisson", "onoff", "diurnal", "flash_crowd")


@dataclass(frozen=True)
class ArrivalSchedule:
    """A concrete, fully materialised arrival plan for one run.

    ``timestamps`` are seconds since run start, non-decreasing, all inside
    ``[0, duration_s)``.  ``hot`` (when non-empty) is aligned with
    ``timestamps`` and marks arrivals the generator should aim at the
    scenario's hot page instead of the next trace page.
    """

    kind: str
    rate: float
    seed: int
    duration_s: float
    timestamps: tuple[float, ...]
    hot: tuple[bool, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.hot and len(self.hot) != len(self.timestamps):
            raise WorkloadError(
                f"hot mask length {len(self.hot)} does not match "
                f"{len(self.timestamps)} timestamps"
            )
        previous = 0.0
        for at in self.timestamps:
            if at < previous:
                raise WorkloadError(
                    f"arrival schedule is not monotonic at t={at}"
                )
            previous = at
        if self.timestamps and self.timestamps[-1] >= self.duration_s:
            raise WorkloadError(
                f"arrival at t={self.timestamps[-1]} is outside the "
                f"{self.duration_s}s window"
            )

    @property
    def offered(self) -> int:
        """How many requests this schedule offers."""
        return len(self.timestamps)

    @property
    def offered_rate_s(self) -> float:
        """Offered arrivals per second over the schedule window."""
        if self.duration_s <= 0:
            return 0.0
        return self.offered / self.duration_s

    @property
    def hot_count(self) -> int:
        """How many arrivals are aimed at the hot page."""
        return sum(1 for flag in self.hot if flag)

    def digest(self) -> str:
        """Canonical sha256 over the full schedule.

        Two schedules share a digest iff every timestamp (to full float
        precision, via ``repr``-faithful JSON floats) and every hot flag
        agree — "same seed reproduces the same schedule" is checkable
        byte-for-byte without shipping the timestamps themselves.
        """
        canonical = json.dumps(
            {
                "kind": self.kind,
                "rate": self.rate,
                "seed": self.seed,
                "duration_s": self.duration_s,
                "timestamps": list(self.timestamps),
                "hot": [1 if flag else 0 for flag in self.hot],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("ascii")).hexdigest()

    def to_dict(self) -> dict:
        """Compact JSON-safe description (digest instead of timestamps)."""
        return {
            "kind": self.kind,
            "rate": self.rate,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "offered": self.offered,
            "offered_rate_s": self.offered_rate_s,
            "hot_count": self.hot_count,
            "digest": self.digest(),
        }


def _check_rate(rate: float) -> None:
    if not rate > 0:
        raise WorkloadError(f"arrival rate must be positive, got {rate}")


def _check_duration(duration_s: float) -> None:
    if not duration_s > 0:
        raise WorkloadError(f"duration must be positive, got {duration_s}")


def _poisson_stream(
    rng: random.Random, rate: float, start: float, end: float
) -> list[float]:
    """Homogeneous Poisson arrivals at ``rate`` inside ``[start, end)``."""
    arrivals: list[float] = []
    at = start
    while True:
        at += rng.expovariate(rate)
        if at >= end:
            return arrivals
        arrivals.append(at)


@dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless arrivals at a constant mean rate."""

    rate: float
    seed: int = 0
    kind: str = field(default="poisson", init=False)

    def __post_init__(self) -> None:
        _check_rate(self.rate)

    def schedule(self, duration_s: float) -> ArrivalSchedule:
        _check_duration(duration_s)
        rng = random.Random(f"poisson:{self.seed}:{self.rate}")
        return ArrivalSchedule(
            kind=self.kind,
            rate=self.rate,
            seed=self.seed,
            duration_s=duration_s,
            timestamps=tuple(_poisson_stream(rng, self.rate, 0.0, duration_s)),
        )


@dataclass(frozen=True)
class OnOffArrivals:
    """Bursty arrivals: Poisson bursts during ON windows, silence OFF.

    The mean rate over a full ON+OFF cycle equals ``rate``: during ON the
    instantaneous rate is ``rate / duty`` where ``duty = on_s / period``.
    """

    rate: float
    seed: int = 0
    on_s: float = 1.0
    off_s: float = 1.0
    kind: str = field(default="onoff", init=False)

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if not self.on_s > 0:
            raise WorkloadError(f"on_s must be positive, got {self.on_s}")
        if self.off_s < 0:
            raise WorkloadError(f"off_s cannot be negative, got {self.off_s}")

    def schedule(self, duration_s: float) -> ArrivalSchedule:
        _check_duration(duration_s)
        rng = random.Random(f"onoff:{self.seed}:{self.rate}")
        period = self.on_s + self.off_s
        burst_rate = self.rate * period / self.on_s
        arrivals: list[float] = []
        window_start = 0.0
        while window_start < duration_s:
            window_end = min(window_start + self.on_s, duration_s)
            arrivals.extend(
                _poisson_stream(rng, burst_rate, window_start, window_end)
            )
            window_start += period
        return ArrivalSchedule(
            kind=self.kind,
            rate=self.rate,
            seed=self.seed,
            duration_s=duration_s,
            timestamps=tuple(arrivals),
        )


@dataclass(frozen=True)
class DiurnalArrivals:
    """A sinusoidal day-curve with mean ``rate``.

    Non-homogeneous Poisson via thinning: draw a homogeneous stream at
    the peak rate ``rate * (1 + depth)`` and keep each arrival with
    probability ``r(t) / peak`` where

        ``r(t) = rate * (1 + depth * sin(2*pi*t/period - pi/2))``

    — the run starts at the trough and peaks mid-period, so a one-period
    run sweeps trough → peak → trough like a compressed day.
    """

    rate: float
    seed: int = 0
    depth: float = 0.8
    period_s: float | None = None
    kind: str = field(default="diurnal", init=False)

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if not 0 <= self.depth <= 1:
            raise WorkloadError(
                f"diurnal depth must be in [0, 1], got {self.depth}"
            )

    def schedule(self, duration_s: float) -> ArrivalSchedule:
        _check_duration(duration_s)
        period = self.period_s if self.period_s is not None else duration_s
        if not period > 0:
            raise WorkloadError(f"period_s must be positive, got {period}")
        rng = random.Random(f"diurnal:{self.seed}:{self.rate}")
        peak = self.rate * (1 + self.depth)
        arrivals = []
        for at in _poisson_stream(rng, peak, 0.0, duration_s):
            instantaneous = self.rate * (
                1
                + self.depth
                * math.sin(2 * math.pi * at / period - math.pi / 2)
            )
            if rng.random() * peak < instantaneous:
                arrivals.append(at)
        return ArrivalSchedule(
            kind=self.kind,
            rate=self.rate,
            seed=self.seed,
            duration_s=duration_s,
            timestamps=tuple(arrivals),
        )


@dataclass(frozen=True)
class FlashCrowdArrivals:
    """Steady baseline plus a mid-run spike aimed at one hot template.

    During ``[spike_start_frac, spike_start_frac + spike_frac)`` of the
    run the offered rate jumps to ``rate * spike_factor``; each *extra*
    spike arrival is marked hot with probability ``hot_fraction`` so the
    generator concentrates that share of the surge on a single hot page
    (baseline traffic keeps its normal page mix).
    """

    rate: float
    seed: int = 0
    spike_start_frac: float = 0.4
    spike_frac: float = 0.3
    spike_factor: float = 4.0
    hot_fraction: float = 0.8
    kind: str = field(default="flash_crowd", init=False)

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if not 0 <= self.spike_start_frac < 1:
            raise WorkloadError(
                f"spike_start_frac must be in [0, 1), got "
                f"{self.spike_start_frac}"
            )
        if not 0 < self.spike_frac <= 1 - self.spike_start_frac:
            raise WorkloadError(
                f"spike_frac={self.spike_frac} does not fit after "
                f"spike_start_frac={self.spike_start_frac}"
            )
        if not self.spike_factor >= 1:
            raise WorkloadError(
                f"spike_factor must be >= 1, got {self.spike_factor}"
            )
        if not 0 <= self.hot_fraction <= 1:
            raise WorkloadError(
                f"hot_fraction must be in [0, 1], got {self.hot_fraction}"
            )

    def spike_window(self, duration_s: float) -> tuple[float, float]:
        """The absolute ``[start, end)`` of the spike for this duration."""
        start = self.spike_start_frac * duration_s
        return start, start + self.spike_frac * duration_s

    def schedule(self, duration_s: float) -> ArrivalSchedule:
        _check_duration(duration_s)
        base_rng = random.Random(f"flash:base:{self.seed}:{self.rate}")
        spike_rng = random.Random(f"flash:spike:{self.seed}:{self.rate}")
        hot_rng = random.Random(f"flash:hot:{self.seed}:{self.rate}")
        merged = [
            (at, False)
            for at in _poisson_stream(base_rng, self.rate, 0.0, duration_s)
        ]
        spike_start, spike_end = self.spike_window(duration_s)
        extra_rate = self.rate * (self.spike_factor - 1)
        if extra_rate > 0:
            merged.extend(
                (at, hot_rng.random() < self.hot_fraction)
                for at in _poisson_stream(
                    spike_rng, extra_rate, spike_start, spike_end
                )
            )
        merged.sort(key=lambda pair: pair[0])
        return ArrivalSchedule(
            kind=self.kind,
            rate=self.rate,
            seed=self.seed,
            duration_s=duration_s,
            timestamps=tuple(at for at, _ in merged),
            hot=tuple(flag for _, flag in merged),
        )


def make_arrivals(kind: str, rate: float, seed: int = 0, **options):
    """Factory for the CLI's ``--arrival`` kinds.

    Extra keyword options pass through to the process constructor
    (e.g. ``spike_factor=6`` for ``flash_crowd``).
    """
    processes = {
        "poisson": PoissonArrivals,
        "onoff": OnOffArrivals,
        "diurnal": DiurnalArrivals,
        "flash_crowd": FlashCrowdArrivals,
    }
    if kind not in processes:
        raise WorkloadError(
            f"unknown arrival kind {kind!r}; pick one of "
            f"{', '.join(ARRIVAL_KINDS)}"
        )
    return processes[kind](rate=rate, seed=seed, **options)
