"""Canonical SQL text for AST nodes.

:func:`to_sql` emits a normalized rendering (uppercase keywords, lowercase
identifiers, single spaces) such that ``parse(to_sql(node)) == node`` — the
parser/formatter round-trip property the test suite checks exhaustively.

The canonical text also serves as the *plaintext* cache key for unencrypted
statements in the DSSP cache, so it must be a pure function of the AST.
"""

from __future__ import annotations

import math
from decimal import Decimal
from functools import lru_cache

from repro.errors import UnsupportedSqlError

from repro.sql.ast import (
    Aggregate,
    ColumnRef,
    Comparison,
    Delete,
    Insert,
    Literal,
    OrderByItem,
    Parameter,
    Select,
    SelectItem,
    Star,
    Statement,
    TableRef,
    Update,
    Value,
)

__all__ = ["to_sql"]


@lru_cache(maxsize=8192)
def to_sql(node: Statement) -> str:
    """Render any statement AST back to canonical SQL text.

    Memoized: nodes are frozen (value-hashable) and the rendering is pure,
    while the DSSP hot paths re-render the same popular bound statements on
    every cache lookup and invalidation pass.
    """
    if isinstance(node, Select):
        return _format_select(node)
    if isinstance(node, Insert):
        return _format_insert(node)
    if isinstance(node, Delete):
        return _format_delete(node)
    if isinstance(node, Update):
        return _format_update(node)
    raise TypeError(f"cannot format {type(node).__name__}")


def _format_value(value: Value) -> str:
    if isinstance(value, ColumnRef):
        return value.qualified()
    if isinstance(value, Parameter):
        return "?"
    return _format_literal(value)


def _format_literal(literal: Literal) -> str:
    value = literal.value
    if value is None:
        return "NULL"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float):
        return _format_float(value)
    return repr(value)


def _format_float(value: float) -> str:
    """Positional rendering the lexer can re-tokenize.

    ``repr`` switches to exponent notation outside ``1e-4 .. 1e16``
    (``1e-07``, ``1e+20``), which the dialect's number tokens cannot
    express — the round-trip property test caught exactly that drift.
    ``Decimal(repr(value))`` is the shortest decimal that round-trips to
    ``value``, so formatting it positionally preserves the float exactly.
    """
    if not math.isfinite(value):
        raise UnsupportedSqlError(
            f"non-finite float literal {value!r} has no SQL rendering"
        )
    text = repr(value)
    if "e" in text or "E" in text:
        text = format(Decimal(text), "f")
    if "." not in text:
        text += ".0"  # keep it a float token; bare digits lex as an integer
    return text


def _format_select_item(item: SelectItem) -> str:
    if isinstance(item, Star):
        return "*"
    if isinstance(item, Aggregate):
        arg = "*" if isinstance(item.argument, Star) else item.argument.qualified()
        if item.distinct:
            arg = f"DISTINCT {arg}"
        return f"{item.func.value.upper()}({arg})"
    return item.qualified()


def _format_table_ref(table: TableRef) -> str:
    if table.alias:
        return f"{table.name} AS {table.alias}"
    return table.name


def _format_comparison(comparison: Comparison) -> str:
    left = _format_value(comparison.left)
    right = _format_value(comparison.right)
    return f"{left} {comparison.op.value} {right}"


def _format_where(where: tuple[Comparison, ...]) -> str:
    if not where:
        return ""
    return " WHERE " + " AND ".join(_format_comparison(c) for c in where)


def _format_order_item(item: OrderByItem) -> str:
    text = item.column.qualified()
    if item.descending:
        text += " DESC"
    return text


def _format_select(select: Select) -> str:
    parts = [
        "SELECT ",
        ", ".join(_format_select_item(item) for item in select.items),
        " FROM ",
        ", ".join(_format_table_ref(t) for t in select.tables),
        _format_where(select.where),
    ]
    if select.group_by:
        parts.append(
            " GROUP BY " + ", ".join(c.qualified() for c in select.group_by)
        )
    if select.order_by:
        parts.append(
            " ORDER BY "
            + ", ".join(_format_order_item(item) for item in select.order_by)
        )
    if select.limit is not None:
        if isinstance(select.limit, Parameter):
            parts.append(" LIMIT ?")
        else:
            parts.append(f" LIMIT {select.limit}")
    return "".join(parts)


def _format_insert(insert: Insert) -> str:
    columns = ", ".join(insert.columns)
    values = ", ".join(_format_value(v) for v in insert.values)
    return f"INSERT INTO {insert.table} ({columns}) VALUES ({values})"


def _format_delete(delete: Delete) -> str:
    return f"DELETE FROM {delete.table}{_format_where(delete.where)}"


def _format_update(update: Update) -> str:
    assignments = ", ".join(
        f"{column} = {_format_value(value)}" for column, value in update.assignments
    )
    return f"UPDATE {update.table} SET {assignments}{_format_where(update.where)}"
