"""Abstract syntax tree for the paper's SQL dialect.

All nodes are immutable (frozen dataclasses with tuple-valued collections) so
that statements and templates can be hashed, compared, and used directly as
cache keys — a property the DSSP cache relies on.

Terminology used throughout the analysis code (paper Table 5):

* *selection predicates* of a statement are the conjuncts of its WHERE
  clause, each either attribute-vs-constant/parameter or attribute-vs-
  attribute (a join condition);
* a :class:`Select` is an SPJ query, optionally with ORDER BY, top-k
  (``limit``), and aggregation/GROUP BY;
* :class:`Insert` / :class:`Delete` / :class:`Update` are the three update
  statement kinds (classes I, D, M).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

__all__ = [
    "AggregateFunc",
    "Aggregate",
    "ColumnRef",
    "Comparison",
    "ComparisonOp",
    "Delete",
    "Insert",
    "Literal",
    "OrderByItem",
    "Parameter",
    "Select",
    "SelectItem",
    "Star",
    "Statement",
    "TableRef",
    "Update",
    "Value",
    "Scalar",
]

#: Python types a literal may carry.  ``None`` encodes SQL NULL.
Scalar = Union[int, float, str, None]


class ComparisonOp(enum.Enum):
    """The five comparison operators of the dialect (paper Section 2.1)."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "="

    def flip(self) -> "ComparisonOp":
        """Return the operator with sides swapped (e.g. ``<`` → ``>``)."""
        return _FLIPPED[self]

    def holds(self, left: Scalar, right: Scalar) -> bool:
        """Evaluate ``left op right`` with SQL NULL semantics (NULL → False)."""
        if left is None or right is None:
            return False
        if self is ComparisonOp.EQ:
            return left == right
        if self is ComparisonOp.LT:
            return left < right  # type: ignore[operator]
        if self is ComparisonOp.LE:
            return left <= right  # type: ignore[operator]
        if self is ComparisonOp.GT:
            return left > right  # type: ignore[operator]
        return left >= right  # type: ignore[operator]


_FLIPPED = {
    ComparisonOp.LT: ComparisonOp.GT,
    ComparisonOp.LE: ComparisonOp.GE,
    ComparisonOp.GT: ComparisonOp.LT,
    ComparisonOp.GE: ComparisonOp.LE,
    ComparisonOp.EQ: ComparisonOp.EQ,
}


class AggregateFunc(enum.Enum):
    """Aggregation functions of the evaluation extension (paper Section 5.1)."""

    MIN = "min"
    MAX = "max"
    COUNT = "count"
    SUM = "sum"
    AVG = "avg"


@dataclass(frozen=True, slots=True)
class ColumnRef:
    """A (possibly table-qualified) column reference, e.g. ``toys.qty``."""

    column: str
    table: str | None = None

    def qualified(self) -> str:
        """Return the display form, ``table.column`` or bare ``column``."""
        if self.table:
            return f"{self.table}.{self.column}"
        return self.column


@dataclass(frozen=True, slots=True)
class Literal:
    """A constant value embedded in a statement."""

    value: Scalar


@dataclass(frozen=True, slots=True)
class Parameter:
    """A ``?`` placeholder, numbered left-to-right from 0 within a statement."""

    index: int


#: Either side of a comparison, a VALUES entry, or a SET right-hand side.
Value = Union[ColumnRef, Literal, Parameter]


@dataclass(frozen=True, slots=True)
class Comparison:
    """A single conjunct ``left op right`` of a WHERE clause."""

    left: Value
    op: ComparisonOp
    right: Value

    def is_join(self) -> bool:
        """True if both sides are column references (a join condition)."""
        return isinstance(self.left, ColumnRef) and isinstance(self.right, ColumnRef)

    def column_refs(self) -> tuple[ColumnRef, ...]:
        """Return the column references appearing on either side."""
        refs = []
        if isinstance(self.left, ColumnRef):
            refs.append(self.left)
        if isinstance(self.right, ColumnRef):
            refs.append(self.right)
        return tuple(refs)


@dataclass(frozen=True, slots=True)
class Star:
    """``*`` in a select list or inside ``COUNT(*)``."""


@dataclass(frozen=True, slots=True)
class Aggregate:
    """An aggregate select item such as ``MAX(qty)`` or ``COUNT(*)``."""

    func: AggregateFunc
    argument: ColumnRef | Star
    distinct: bool = False


#: An entry of the select list.
SelectItem = Union[ColumnRef, Aggregate, Star]


@dataclass(frozen=True, slots=True)
class TableRef:
    """A FROM-clause entry, with optional alias (``toys AS t1``)."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name this table is known by inside the statement."""
        return self.alias or self.name


@dataclass(frozen=True, slots=True)
class OrderByItem:
    """One ORDER BY key with direction."""

    column: ColumnRef
    descending: bool = False


@dataclass(frozen=True, slots=True)
class Select:
    """An SPJ query with optional order-by, top-k, aggregation, group-by.

    ``where`` is a conjunction; the dialect has no OR / NOT.  ``limit`` is
    the top-k construct — an integer, a parameter, or None for no limit.
    """

    items: tuple[SelectItem, ...]
    tables: tuple[TableRef, ...]
    where: tuple[Comparison, ...] = ()
    group_by: tuple[ColumnRef, ...] = ()
    order_by: tuple[OrderByItem, ...] = ()
    limit: int | Parameter | None = None

    def has_aggregate(self) -> bool:
        """True if any select item is an aggregate function."""
        return any(isinstance(item, Aggregate) for item in self.items)

    def has_top_k(self) -> bool:
        """True if the query has a top-k (LIMIT) construct."""
        return self.limit is not None

    def join_conditions(self) -> tuple[Comparison, ...]:
        """Return the WHERE conjuncts that compare two columns."""
        return tuple(c for c in self.where if c.is_join())

    def only_equality_joins(self) -> bool:
        """True if every join condition uses ``=`` (query class E)."""
        return all(c.op is ComparisonOp.EQ for c in self.join_conditions())


@dataclass(frozen=True, slots=True)
class Insert:
    """``INSERT INTO table (col, ...) VALUES (v, ...)`` — fully specified row."""

    table: str
    columns: tuple[str, ...]
    values: tuple[Union[Literal, Parameter], ...]


@dataclass(frozen=True, slots=True)
class Delete:
    """``DELETE FROM table WHERE pred`` — rows matching an arithmetic predicate."""

    table: str
    where: tuple[Comparison, ...] = ()


@dataclass(frozen=True, slots=True)
class Update:
    """``UPDATE table SET col=v, ... WHERE pk = v`` — modification statement.

    The paper restricts modifications to non-key attributes of the row
    matching an equality predicate on the primary key; the schema layer
    enforces that restriction (the parser alone cannot know the keys).
    """

    table: str
    assignments: tuple[tuple[str, Union[Literal, Parameter]], ...]
    where: tuple[Comparison, ...] = ()


#: Any parsed statement.
Statement = Union[Select, Insert, Delete, Update]
