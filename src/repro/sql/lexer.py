"""Tokenizer for the paper's SQL dialect.

The lexer is deliberately small: identifiers, keywords, integer and float
literals, single-quoted string literals (with ``''`` escaping), the five
comparison operators, punctuation, and the ``?`` parameter marker.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TokenizeError

__all__ = ["Token", "TokenType", "tokenize", "KEYWORDS"]


class TokenType(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    OPERATOR = "operator"  # one of < <= > >= =
    PUNCT = "punct"  # ( ) , . *
    PARAMETER = "parameter"  # ?
    EOF = "eof"


#: Reserved words of the dialect.  Matched case-insensitively; identifiers
#: may not collide with these.
KEYWORDS = frozenset(
    {
        "select",
        "from",
        "where",
        "and",
        "order",
        "group",
        "by",
        "asc",
        "desc",
        "limit",
        "insert",
        "into",
        "values",
        "delete",
        "update",
        "set",
        "null",
        "min",
        "max",
        "count",
        "sum",
        "avg",
        "as",
        "distinct",
    }
)

_PUNCT_CHARS = frozenset("(),.*")
_OPERATOR_STARTS = frozenset("<>=!")


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexical token.

    Attributes:
        type: Lexical category.
        value: Normalized text.  Keywords and identifiers are lowercased;
            string literals hold the *unescaped* content; numbers hold the
            literal digits.
        position: Byte offset of the token's first character in the input.
    """

    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """Return True if this token is the given keyword."""
        return self.type is TokenType.KEYWORD and self.value == word


def tokenize(sql: str) -> list[Token]:
    """Split ``sql`` into tokens, ending with a single EOF token.

    Raises:
        TokenizeError: on characters outside the dialect (e.g. ``;``) or an
            unterminated string literal.
    """
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
        elif ch == "?":
            tokens.append(Token(TokenType.PARAMETER, "?", i))
            i += 1
        elif ch in _PUNCT_CHARS:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
        elif ch in _OPERATOR_STARTS:
            i = _lex_operator(sql, i, tokens)
        elif ch == "'":
            i = _lex_string(sql, i, tokens)
        elif ch.isdigit():
            i = _lex_number(sql, i, tokens)
        elif ch == "-" and sql[i + 1 : i + 2].isdigit():
            # The dialect has no arithmetic, so '-' can only introduce a
            # negative numeric literal.
            i = _lex_number(sql, i, tokens, negative=True)
        elif ch.isalpha() or ch == "_":
            i = _lex_word(sql, i, tokens)
        else:
            raise TokenizeError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _lex_operator(sql: str, i: int, tokens: list[Token]) -> int:
    """Lex a comparison operator starting at ``i``; return the next offset."""
    two = sql[i : i + 2]
    if two in ("<=", ">="):
        tokens.append(Token(TokenType.OPERATOR, two, i))
        return i + 2
    if two in ("<>", "!="):
        # Valid SQL, but the paper's language has only {<, <=, >, >=, =}.
        raise TokenizeError(
            f"operator {two!r} is outside the paper's dialect "
            "(only < <= > >= = are supported)",
            i,
        )
    ch = sql[i]
    if ch == "!":
        raise TokenizeError("unexpected character '!'", i)
    tokens.append(Token(TokenType.OPERATOR, ch, i))
    return i + 1


def _lex_string(sql: str, i: int, tokens: list[Token]) -> int:
    """Lex a single-quoted string literal with ``''`` escapes."""
    start = i
    i += 1  # skip opening quote
    parts: list[str] = []
    while i < len(sql):
        ch = sql[i]
        if ch == "'":
            if sql[i + 1 : i + 2] == "'":  # escaped quote
                parts.append("'")
                i += 2
                continue
            tokens.append(Token(TokenType.STRING, "".join(parts), start))
            return i + 1
        parts.append(ch)
        i += 1
    raise TokenizeError("unterminated string literal", start)


def _lex_number(sql: str, i: int, tokens: list[Token], negative: bool = False) -> int:
    """Lex an integer or float literal, optionally led by a minus sign."""
    start = i
    if negative:
        i += 1
    while i < len(sql) and sql[i].isdigit():
        i += 1
    is_float = False
    if i < len(sql) and sql[i] == "." and sql[i + 1 : i + 2].isdigit():
        is_float = True
        i += 1
        while i < len(sql) and sql[i].isdigit():
            i += 1
    kind = TokenType.FLOAT if is_float else TokenType.INTEGER
    tokens.append(Token(kind, sql[start:i], start))
    return i


def _lex_word(sql: str, i: int, tokens: list[Token]) -> int:
    """Lex a keyword or identifier (letters, digits, underscores)."""
    start = i
    while i < len(sql) and (sql[i].isalnum() or sql[i] == "_"):
        i += 1
    word = sql[start:i].lower()
    kind = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENTIFIER
    tokens.append(Token(kind, word, start))
    return i
