"""Dialect compiler: the paper's SQL AST → parameterized SQLite SQL.

This is the seam the pluggable-backend subsystem rests on (the pytrilogy
``Executor`` pattern: one interface, per-engine generators behind it).  The
compiler turns fully-bound :mod:`repro.sql.ast` statements into SQL text
plus a flat parameter list — every literal travels as a ``?`` bind, never
as inline text — and derives DDL from a :class:`~repro.schema.Schema`.

Semantics are the in-memory engine's, not stock SQLite's, so three rules
shape the output:

* **No compiled ORDER BY / LIMIT.**  Ordering is canonicalized in Python
  by the backend layer (:mod:`repro.storage.backends.base`) so that both
  engines break ties identically; the compiler refuses ordered selects.
* **Validation mirrors the executor.**  Unknown tables/columns, ambiguous
  bare columns, duplicate FROM bindings, aggregate/GROUP BY shape errors
  and unbound parameters raise the same exception types the in-memory
  executor raises, at compile time, before SQLite ever sees the text.
* **Constraints stay in Python.**  The generated DDL declares PRIMARY KEY
  and FOREIGN KEY clauses for documentation and tooling, but the backend
  enforces them Python-side (pre-checks mirroring :mod:`repro.storage.dml`)
  so that error ordering, error types, and the update model's semantics —
  e.g. modifications never FK-checked, exactly like the in-memory engine —
  are identical across backends.

Known divergence (documented, not worked around): SQLite applies column
*type affinity* inside comparisons, so ``text_column = 5`` can hold where
the Python engine's ``'5' == 5`` is False.  The workloads bind
type-correct parameters, so the divergence is unreachable through the
template layer; the differential fuzzer generates only type-correct
comparisons for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    ExecutionError,
    SchemaError,
    UnknownColumnError,
    UnknownTableError,
    UnsupportedSqlError,
)
from repro.schema.column import ColumnType
from repro.schema.schema import Schema
from repro.schema.table import TableSchema
from repro.sql.ast import (
    Aggregate,
    ColumnRef,
    Comparison,
    Literal,
    Parameter,
    Scalar,
    Select,
    Star,
    Value,
)

__all__ = ["CompiledSelect", "SqliteDialect"]

_TYPE_MAP = {
    ColumnType.INTEGER: "INTEGER",
    ColumnType.FLOAT: "REAL",
    ColumnType.TEXT: "TEXT",
}


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


@dataclass(frozen=True, slots=True)
class CompiledSelect:
    """One compiled SELECT: text, bind parameters, and output column names.

    ``columns`` uses exactly the in-memory executor's naming (qualified
    display names; ``*`` expanded per binding) so a
    :class:`~repro.storage.rows.ResultSet` built from the fetched rows is
    column-for-column comparable with the in-memory engine's.
    """

    sql: str
    params: tuple[Scalar, ...]
    columns: tuple[str, ...]


class _Scope:
    """Name resolution for one SELECT, mirroring the executor's scope."""

    def __init__(self, schema: Schema, select: Select) -> None:
        self.schema = schema
        self.bindings: list[str] = []
        self.tables: list[str] = []
        seen: set[str] = set()
        for table_ref in select.tables:
            if table_ref.name not in schema:
                raise UnknownTableError(table_ref.name)
            binding = table_ref.binding
            if binding in seen:
                raise SchemaError(f"duplicate binding {binding!r} in FROM clause")
            seen.add(binding)
            self.bindings.append(binding)
            self.tables.append(table_ref.name)

    def resolve(self, ref: ColumnRef) -> tuple[int, str]:
        """Resolve a column ref to (binding index, column name)."""
        if ref.table is not None:
            for index, binding in enumerate(self.bindings):
                if binding == ref.table:
                    self.schema.table(self.tables[index]).position(ref.column)
                    return index, ref.column
            raise UnknownTableError(ref.table)
        matches = []
        for index, table_name in enumerate(self.tables):
            table = self.schema.table(table_name)
            if table.has_column(ref.column):
                matches.append((index, ref.column))
        if not matches:
            raise UnknownColumnError(ref.column)
        if len(matches) > 1:
            raise SchemaError(f"ambiguous column {ref.column!r}")
        return matches[0]

    def sql_of(self, ref: ColumnRef) -> str:
        index, column = self.resolve(ref)
        return f"{_quote(self.bindings[index])}.{_quote(column)}"


class SqliteDialect:
    """Compiles the paper's dialect to SQLite SQL for one schema."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema

    # -- DDL -----------------------------------------------------------------

    def create_table(self, table: TableSchema) -> str:
        """``CREATE TABLE IF NOT EXISTS`` text for one relation."""
        pieces: list[str] = []
        for column in table.columns:
            not_null = (
                " NOT NULL"
                if not column.nullable or table.is_key_column(column.name)
                else ""
            )
            pieces.append(
                f"{_quote(column.name)} {_TYPE_MAP[column.type]}{not_null}"
            )
        if table.primary_key:
            keys = ", ".join(_quote(name) for name in table.primary_key)
            pieces.append(f"PRIMARY KEY ({keys})")
        for foreign_key in table.foreign_keys:
            pieces.append(
                f"FOREIGN KEY ({_quote(foreign_key.column)}) REFERENCES "
                f"{_quote(foreign_key.ref_table)} "
                f"({_quote(foreign_key.ref_column)})"
            )
        body = ", ".join(pieces)
        return f"CREATE TABLE IF NOT EXISTS {_quote(table.name)} ({body})"

    def create_schema(self) -> list[str]:
        """DDL statements for every table, in schema declaration order."""
        return [self.create_table(table) for table in self.schema]

    # -- SELECT --------------------------------------------------------------

    def compile_select(self, select: Select) -> CompiledSelect:
        """Compile an order/limit-free SELECT.

        Raises the same exception types the in-memory executor would for a
        malformed statement; ordered selects are the backend layer's job
        (it strips ORDER BY/LIMIT before calling this).
        """
        if select.order_by or select.limit is not None:
            raise ExecutionError(
                "compile_select takes canonical (order/limit-free) selects"
            )
        scope = _Scope(self.schema, select)
        params: list[Scalar] = []
        aggregate = select.has_aggregate() or bool(select.group_by)
        if aggregate:
            item_sql, columns = self._aggregate_items(scope, select)
        else:
            item_sql, columns = self._plain_items(scope, select)
        from_sql = ", ".join(
            f"{_quote(name)} AS {_quote(binding)}"
            if name != binding
            else _quote(name)
            for name, binding in zip(scope.tables, scope.bindings)
        )
        sql = f"SELECT {', '.join(item_sql)} FROM {from_sql}"
        where_sql = self._compile_where(scope, select.where, params)
        if where_sql:
            sql += f" WHERE {where_sql}"
        if select.group_by:
            sql += " GROUP BY " + ", ".join(
                scope.sql_of(ref) for ref in select.group_by
            )
        return CompiledSelect(sql, tuple(params), tuple(columns))

    def _plain_items(
        self, scope: _Scope, select: Select
    ) -> tuple[list[str], list[str]]:
        item_sql: list[str] = []
        columns: list[str] = []
        multi = len(scope.bindings) > 1
        for item in select.items:
            if isinstance(item, Star):
                for index, table_name in enumerate(scope.tables):
                    table = self.schema.table(table_name)
                    for column in table.columns:
                        binding = scope.bindings[index]
                        item_sql.append(
                            f"{_quote(binding)}.{_quote(column.name)}"
                        )
                        columns.append(
                            f"{binding}.{column.name}" if multi else column.name
                        )
            elif isinstance(item, ColumnRef):
                item_sql.append(scope.sql_of(item))
                columns.append(item.qualified())
            else:
                raise ExecutionError(
                    "aggregate in non-aggregate projection path"
                )  # pragma: no cover - aggregate selects take the other branch
        return item_sql, columns

    def _aggregate_items(
        self, scope: _Scope, select: Select
    ) -> tuple[list[str], list[str]]:
        group_slots = [scope.resolve(ref) for ref in select.group_by]
        item_sql: list[str] = []
        columns: list[str] = []
        for item in select.items:
            if isinstance(item, Star):
                raise ExecutionError("SELECT * cannot mix with aggregation")
            if isinstance(item, ColumnRef):
                if scope.resolve(item) not in group_slots:
                    raise ExecutionError(
                        f"non-aggregate column {item.qualified()!r} must "
                        "appear in GROUP BY"
                    )
                item_sql.append(scope.sql_of(item))
                columns.append(item.qualified())
                continue
            assert isinstance(item, Aggregate)
            if isinstance(item.argument, Star):
                arg_sql, arg_name = "*", "*"
            else:
                arg_sql = scope.sql_of(item.argument)
                arg_name = item.argument.qualified()
            if item.distinct:
                arg_sql = f"DISTINCT {arg_sql}"
                arg_name = f"DISTINCT {arg_name}"
            func = item.func.value.upper()
            item_sql.append(f"{func}({arg_sql})")
            columns.append(f"{func}({arg_name})")
        return item_sql, columns

    def _compile_where(
        self,
        scope: _Scope,
        where: tuple[Comparison, ...],
        params: list[Scalar],
    ) -> str:
        conjuncts = []
        for comparison in where:
            left = self._side(scope, comparison.left, params)
            right = self._side(scope, comparison.right, params)
            # NULL never satisfies a comparison in the dialect; SQLite's
            # three-valued logic agrees (NULL op x is not true), so a plain
            # comparison matches the engine's ``holds`` exactly.
            conjuncts.append(f"{left} {comparison.op.value} {right}")
        return " AND ".join(conjuncts)

    def _side(self, scope: _Scope, value: Value, params: list[Scalar]) -> str:
        if isinstance(value, Literal):
            params.append(value.value)
            return "?"
        if isinstance(value, Parameter):
            raise ExecutionError(
                "unbound parameter in WHERE clause; bind the template first"
            )
        return scope.sql_of(value)

    # -- DML -----------------------------------------------------------------

    def compile_insert_row(self, table: TableSchema) -> str:
        """``INSERT`` text for one full row of ``table``, in column order."""
        names = ", ".join(_quote(c.name) for c in table.columns)
        binds = ", ".join("?" for _ in table.columns)
        return f"INSERT INTO {_quote(table.name)} ({names}) VALUES ({binds})"

    def compile_delete(
        self, table: TableSchema, where: tuple[Comparison, ...]
    ) -> tuple[str, tuple[Scalar, ...]]:
        params: list[Scalar] = []
        sql = f"DELETE FROM {_quote(table.name)}"
        where_sql = self._single_table_where(table, where, params)
        if where_sql:
            sql += f" WHERE {where_sql}"
        return sql, tuple(params)

    def compile_select_column(
        self, table: TableSchema, column: str, where: tuple[Comparison, ...]
    ) -> tuple[str, tuple[Scalar, ...]]:
        """``SELECT column FROM table WHERE ...`` for backend pre-checks."""
        params: list[Scalar] = []
        sql = f"SELECT {_quote(column)} FROM {_quote(table.name)}"
        where_sql = self._single_table_where(table, where, params)
        if where_sql:
            sql += f" WHERE {where_sql}"
        return sql, tuple(params)

    def compile_update(
        self,
        table: TableSchema,
        assignments: tuple[tuple[str, Scalar], ...],
        where: tuple[Comparison, ...],
    ) -> tuple[str, tuple[Scalar, ...]]:
        """Compile a modification whose assignment values are pre-coerced.

        The WHERE clause gains an effective-change guard — ``AND NOT
        (col1 IS ? AND col2 IS ?)`` over the assigned columns — so the
        statement's rows-affected count matches the in-memory engine,
        which counts only rows a modification actually changed.
        """
        params: list[Scalar] = []
        set_sql = []
        for column, scalar in assignments:
            set_sql.append(f"{_quote(column)} = ?")
            params.append(scalar)
        sql = f"UPDATE {_quote(table.name)} SET {', '.join(set_sql)}"
        conjuncts: list[str] = []
        where_sql = self._single_table_where(table, where, params)
        if where_sql:
            conjuncts.append(where_sql)
        guard = " AND ".join(
            f"{_quote(column)} IS ?" for column, _ in assignments
        )
        for _, scalar in assignments:
            params.append(scalar)
        conjuncts.append(f"NOT ({guard})")
        return sql + " WHERE " + " AND ".join(conjuncts), tuple(params)

    def _single_table_where(
        self,
        table: TableSchema,
        where: tuple[Comparison, ...],
        params: list[Scalar],
    ) -> str:
        def side(value: Value) -> str:
            if isinstance(value, Literal):
                params.append(value.value)
                return "?"
            if isinstance(value, Parameter):
                raise ExecutionError("unbound parameter in update predicate")
            if value.table is not None and value.table != table.name:
                raise UnsupportedSqlError(
                    f"update predicate references foreign table {value.table!r}"
                )
            table.position(value.column)  # raises UnknownColumnError
            return _quote(value.column)

        return " AND ".join(
            f"{side(c.left)} {c.op.value} {side(c.right)}" for c in where
        )
