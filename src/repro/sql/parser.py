"""Recursive-descent parser for the paper's SQL dialect.

Grammar (keywords case-insensitive)::

    statement   := select | insert | delete | update
    select      := SELECT [DISTINCT] select_list FROM table_list
                   [WHERE conjunction] [GROUP BY column_list]
                   [ORDER BY order_list] [LIMIT (int | ?)]
    select_list := '*' | select_item (',' select_item)*
    select_item := column | agg '(' ('*' | [DISTINCT] column) ')'
    table_list  := table_ref (',' table_ref)*
    table_ref   := name [AS alias | alias]
    conjunction := comparison (AND comparison)*
    comparison  := operand op operand           -- op in < <= > >= =
    operand     := column | literal | '?'
    insert      := INSERT INTO name '(' names ')' VALUES '(' operands ')'
    delete      := DELETE FROM name [WHERE conjunction]
    update      := UPDATE name SET assignments [WHERE conjunction]

Parameters (``?``) are numbered left-to-right from zero across the whole
statement, in the same order the tokens appear, so that a bound statement's
parameter list lines up positionally.
"""

from __future__ import annotations

from repro.errors import ParseError, UnsupportedSqlError
from repro.sql.ast import (
    Aggregate,
    AggregateFunc,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Delete,
    Insert,
    Literal,
    OrderByItem,
    Parameter,
    Select,
    SelectItem,
    Star,
    Statement,
    TableRef,
    Update,
    Value,
)
from repro.sql.lexer import Token, TokenType, tokenize

__all__ = ["parse", "parse_query", "parse_update"]

_AGG_KEYWORDS = {f.value for f in AggregateFunc}


def parse(sql: str) -> Statement:
    """Parse a statement of any kind; raise :class:`ParseError` on junk."""
    return _Parser(sql).parse_statement()


def parse_query(sql: str) -> Select:
    """Parse a statement and require it to be a query."""
    statement = parse(sql)
    if not isinstance(statement, Select):
        raise ParseError(f"expected a query, got {type(statement).__name__}")
    return statement


def parse_update(sql: str) -> Insert | Delete | Update:
    """Parse a statement and require it to be an update of some kind."""
    statement = parse(sql)
    if isinstance(statement, Select):
        raise ParseError("expected an update statement, got a query")
    return statement


class _Parser:
    """One-shot recursive-descent parser over a token list."""

    def __init__(self, sql: str) -> None:
        self._tokens = tokenize(sql)
        self._pos = 0
        self._next_param = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._advance()
        if not token.is_keyword(word):
            raise ParseError(
                f"expected {word.upper()!r}, got {token.value!r}", token.position
            )
        return token

    def _expect_punct(self, char: str) -> Token:
        token = self._advance()
        if token.type is not TokenType.PUNCT or token.value != char:
            raise ParseError(
                f"expected {char!r}, got {token.value!r}", token.position
            )
        return token

    def _expect_identifier(self) -> str:
        token = self._advance()
        if token.type is not TokenType.IDENTIFIER:
            raise ParseError(
                f"expected identifier, got {token.value!r}", token.position
            )
        return token.value

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._pos += 1
            return True
        return False

    def _accept_punct(self, char: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == char:
            self._pos += 1
            return True
        return False

    def _expect_eof(self) -> None:
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input {token.value!r}", token.position
            )

    def _make_parameter(self) -> Parameter:
        parameter = Parameter(self._next_param)
        self._next_param += 1
        return parameter

    # -- entry point --------------------------------------------------------

    def parse_statement(self) -> Statement:
        token = self._peek()
        if token.is_keyword("select"):
            statement: Statement = self._parse_select()
        elif token.is_keyword("insert"):
            statement = self._parse_insert()
        elif token.is_keyword("delete"):
            statement = self._parse_delete()
        elif token.is_keyword("update"):
            statement = self._parse_update()
        else:
            raise ParseError(
                f"expected SELECT/INSERT/DELETE/UPDATE, got {token.value!r}",
                token.position,
            )
        self._expect_eof()
        return statement

    # -- SELECT --------------------------------------------------------------

    def _parse_select(self) -> Select:
        self._expect_keyword("select")
        if self._accept_keyword("distinct"):
            # The paper's model is multiset; projection keeps duplicates.
            raise UnsupportedSqlError(
                "SELECT DISTINCT is outside the paper's multiset model"
            )
        items = self._parse_select_list()
        self._expect_keyword("from")
        tables = self._parse_table_list()
        where = self._parse_optional_where()
        group_by = self._parse_optional_group_by()
        order_by = self._parse_optional_order_by()
        limit = self._parse_optional_limit()
        return Select(
            items=items,
            tables=tables,
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
        )

    def _parse_select_list(self) -> tuple[SelectItem, ...]:
        items: list[SelectItem] = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == "*":
            self._advance()
            return Star()
        if token.type is TokenType.KEYWORD and token.value in _AGG_KEYWORDS:
            return self._parse_aggregate()
        return self._parse_column_ref()

    def _parse_aggregate(self) -> Aggregate:
        func = AggregateFunc(self._advance().value)
        self._expect_punct("(")
        distinct = self._accept_keyword("distinct")
        if self._accept_punct("*"):
            if func is not AggregateFunc.COUNT:
                raise ParseError(f"{func.value.upper()}(*) is not valid")
            argument: ColumnRef | Star = Star()
        else:
            argument = self._parse_column_ref()
        self._expect_punct(")")
        return Aggregate(func=func, argument=argument, distinct=distinct)

    def _parse_column_ref(self) -> ColumnRef:
        first = self._expect_identifier()
        if self._accept_punct("."):
            column = self._expect_identifier()
            return ColumnRef(column=column, table=first)
        return ColumnRef(column=first)

    def _parse_table_list(self) -> tuple[TableRef, ...]:
        tables = [self._parse_table_ref()]
        while self._accept_punct(","):
            tables.append(self._parse_table_ref())
        return tuple(tables)

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_identifier()
        alias: str | None = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return TableRef(name=name, alias=alias)

    # -- WHERE / GROUP BY / ORDER BY / LIMIT ----------------------------------

    def _parse_optional_where(self) -> tuple[Comparison, ...]:
        if not self._accept_keyword("where"):
            return ()
        comparisons = [self._parse_comparison()]
        while self._accept_keyword("and"):
            comparisons.append(self._parse_comparison())
        return tuple(comparisons)

    def _parse_comparison(self) -> Comparison:
        left = self._parse_operand()
        token = self._advance()
        if token.type is not TokenType.OPERATOR:
            raise ParseError(
                f"expected comparison operator, got {token.value!r}",
                token.position,
            )
        op = ComparisonOp(token.value)
        right = self._parse_operand()
        return Comparison(left=left, op=op, right=right)

    def _parse_operand(self) -> Value:
        token = self._peek()
        if token.type is TokenType.PARAMETER:
            self._advance()
            return self._make_parameter()
        if token.type is TokenType.INTEGER:
            self._advance()
            return Literal(int(token.value))
        if token.type is TokenType.FLOAT:
            self._advance()
            return Literal(float(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.is_keyword("null"):
            self._advance()
            return Literal(None)
        if token.type is TokenType.IDENTIFIER:
            return self._parse_column_ref()
        raise ParseError(f"expected operand, got {token.value!r}", token.position)

    def _parse_optional_group_by(self) -> tuple[ColumnRef, ...]:
        if not self._accept_keyword("group"):
            return ()
        self._expect_keyword("by")
        columns = [self._parse_column_ref()]
        while self._accept_punct(","):
            columns.append(self._parse_column_ref())
        return tuple(columns)

    def _parse_optional_order_by(self) -> tuple[OrderByItem, ...]:
        if not self._accept_keyword("order"):
            return ()
        self._expect_keyword("by")
        items = [self._parse_order_item()]
        while self._accept_punct(","):
            items.append(self._parse_order_item())
        return tuple(items)

    def _parse_order_item(self) -> OrderByItem:
        column = self._parse_column_ref()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return OrderByItem(column=column, descending=descending)

    def _parse_optional_limit(self) -> int | Parameter | None:
        if not self._accept_keyword("limit"):
            return None
        token = self._advance()
        if token.type is TokenType.INTEGER:
            return int(token.value)
        if token.type is TokenType.PARAMETER:
            self._pos -= 1  # _make_parameter path needs no token re-read
            self._advance()
            return self._make_parameter()
        raise ParseError(
            f"expected integer or '?' after LIMIT, got {token.value!r}",
            token.position,
        )

    # -- INSERT ----------------------------------------------------------------

    def _parse_insert(self) -> Insert:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_identifier()
        self._expect_punct("(")
        columns = [self._expect_identifier()]
        while self._accept_punct(","):
            columns.append(self._expect_identifier())
        self._expect_punct(")")
        self._expect_keyword("values")
        self._expect_punct("(")
        values = [self._parse_insert_value()]
        while self._accept_punct(","):
            values.append(self._parse_insert_value())
        self._expect_punct(")")
        if len(columns) != len(values):
            raise ParseError(
                f"INSERT lists {len(columns)} columns but {len(values)} values"
            )
        return Insert(table=table, columns=tuple(columns), values=tuple(values))

    def _parse_insert_value(self) -> Literal | Parameter:
        value = self._parse_operand()
        if isinstance(value, ColumnRef):
            raise ParseError(
                "INSERT values must be literals or parameters "
                "(each insertion fully specifies a row)"
            )
        return value

    # -- DELETE ----------------------------------------------------------------

    def _parse_delete(self) -> Delete:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._expect_identifier()
        where = self._parse_optional_where()
        return Delete(table=table, where=where)

    # -- UPDATE ----------------------------------------------------------------

    def _parse_update(self) -> Update:
        self._expect_keyword("update")
        table = self._expect_identifier()
        self._expect_keyword("set")
        assignments = [self._parse_assignment()]
        while self._accept_punct(","):
            assignments.append(self._parse_assignment())
        where = self._parse_optional_where()
        return Update(table=table, assignments=tuple(assignments), where=where)

    def _parse_assignment(self) -> tuple[str, Literal | Parameter]:
        column = self._expect_identifier()
        token = self._advance()
        if token.type is not TokenType.OPERATOR or token.value != "=":
            raise ParseError(
                f"expected '=' in SET clause, got {token.value!r}", token.position
            )
        value = self._parse_operand()
        if isinstance(value, ColumnRef):
            raise UnsupportedSqlError(
                "SET right-hand sides must be literals or parameters"
            )
        return (column, value)
