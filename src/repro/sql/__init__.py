"""SQL front end for the paper's restricted dialect.

The dialect (paper Section 2.1) covers:

* **Queries** — select-project-join (SPJ) statements with conjunctive
  selection predicates built from the five comparison operators
  ``< <= > >= =``, optional ``ORDER BY`` and top-k (``LIMIT k``), plus the
  aggregation / ``GROUP BY`` extension the paper's evaluation uses
  (``MIN MAX COUNT SUM AVG``).
* **Updates** — fully-specified ``INSERT`` statements, predicate ``DELETE``
  statements, and ``UPDATE`` statements that modify non-key attributes of
  rows selected by an equality predicate on the primary key.
* **Parameters** — ``?`` placeholders bound at execution time, which is what
  turns a statement into a *template* (see :mod:`repro.templates`).

The public surface is :func:`parse` (text → AST) and :func:`to_sql`
(AST → canonical text).  ``parse(to_sql(ast)) == ast`` holds for every AST
the parser can produce; the property-based tests rely on it.
"""

from repro.sql.ast import (
    Aggregate,
    AggregateFunc,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Delete,
    Insert,
    Literal,
    OrderByItem,
    Parameter,
    Select,
    SelectItem,
    Star,
    Statement,
    TableRef,
    Update,
)
from repro.sql.formatter import to_sql
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse, parse_query, parse_update

__all__ = [
    "Aggregate",
    "AggregateFunc",
    "ColumnRef",
    "Comparison",
    "ComparisonOp",
    "Delete",
    "Insert",
    "Literal",
    "OrderByItem",
    "Parameter",
    "Select",
    "SelectItem",
    "Star",
    "Statement",
    "TableRef",
    "Token",
    "TokenType",
    "Update",
    "parse",
    "parse_query",
    "parse_update",
    "to_sql",
    "tokenize",
]
