"""Scalability search: the paper's "max users within SLA" metric.

Two evaluation paths share the SLA search:

* **DES** — run :func:`~repro.simulation.client.simulate_users` per probe.
  Faithful but costly: use for spot checks and validation.
* **Analytic** (default for the benchmark sweeps) — stream a sample
  workload through the *real* DSSP once to measure per-page cache
  behaviour (:func:`measure_cache_behavior`), then predict the p90 page
  time at any user count with an M/M/1-style fixed point over the two
  stations (:func:`predict_p90`) and binary-search the SLA crossing.

The analytic model intentionally keeps only the effects the paper's
experiments turn on: WAN round trips paid per miss/update, home-server
queueing as the bottleneck, and the hit rate set by the invalidation
strategy.  Absolute user counts are calibration-dependent; orderings and
ratios between strategies are not.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.dssp.homeserver import HomeServer
from repro.dssp.proxy import DsspNode
from repro.simulation.params import SimulationParams

__all__ = [
    "CacheBehavior",
    "find_scalability",
    "measure_cache_behavior",
    "predict_p90",
]


@dataclass(frozen=True)
class CacheBehavior:
    """Per-page workload profile measured on the real DSSP.

    Attributes:
        pages: Pages streamed during measurement.
        queries_per_page: Mean DB queries per page.
        hits_per_page: Mean cache hits per page.
        misses_per_page: Mean misses (home round trips) per page.
        updates_per_page: Mean updates per page.
        invalidations_per_update: Mean cache entries dropped per update.
    """

    pages: int
    queries_per_page: float
    hits_per_page: float
    misses_per_page: float
    updates_per_page: float
    invalidations_per_update: float

    @property
    def hit_rate(self) -> float:
        """Fraction of queries served from cache."""
        if self.queries_per_page <= 0:
            return 0.0
        return self.hits_per_page / self.queries_per_page


def measure_cache_behavior(
    node: DsspNode,
    home: HomeServer,
    sampler,
    pages: int = 2000,
    seed: int = 0,
    cold_start: bool = True,
) -> CacheBehavior:
    """Stream ``pages`` sampled pages through the DSSP; return the profile.

    The stream is functional (no virtual time): with a single closed-loop
    population the interleaving of queries and updates is the same as in a
    timed run, so hit/invalidation statistics transfer.
    Starts from a cold cache (like every paper experiment) unless
    ``cold_start=False``, which keeps the cache warm and only resets the
    counters — used by the warm-cache ablation.
    """
    if cold_start:
        node.cold_start()
    else:
        node.stats.reset()
    rng = random.Random(seed)
    queries = updates = 0
    for _ in range(pages):
        for operation in sampler.sample_page(rng):
            if operation.is_update:
                level = home.policy.update_level(operation.bound.template.name)
                node.update(home.codec.seal_update(operation.bound, level))
                updates += 1
            else:
                level = home.policy.query_level(operation.bound.template.name)
                node.query(home.codec.seal_query(operation.bound, level))
                queries += 1
    stats = node.stats
    return CacheBehavior(
        pages=pages,
        queries_per_page=queries / pages,
        hits_per_page=stats.hits / pages,
        misses_per_page=stats.misses / pages,
        updates_per_page=updates / pages,
        invalidations_per_update=(
            stats.invalidations / stats.updates if stats.updates else 0.0
        ),
    )


# -- analytic model --------------------------------------------------------------------


def _station_response(arrival_rate: float, service_s: float, workers: int) -> float:
    """Mean response time (wait + service) of an M/M/c-approximated station.

    Uses the standard M/M/1 form with pooled capacity; returns ``inf`` at
    or beyond saturation.
    """
    utilization = arrival_rate * service_s / workers
    if utilization >= 1.0:
        return math.inf
    return service_s / (1.0 - utilization)


def predict_p90(
    users: int, params: SimulationParams, behavior: CacheBehavior
) -> float:
    """Predicted p90 page response time at ``users`` concurrent clients."""
    client_rt = params.client_dssp.round_trip(
        params.request_bytes, params.response_bytes
    )
    wan_rt = params.dssp_home.round_trip(
        params.request_bytes, params.response_bytes
    )
    ops_per_page = behavior.queries_per_page + behavior.updates_per_page
    if ops_per_page == 0:
        return 0.0

    # Invalidation work rides on the DSSP station, proportional to the
    # entries each update drops.
    invalidation_s = params.dssp_invalidation_s * max(
        1.0, behavior.invalidations_per_update
    )

    page_time = 0.5  # initial guess; fixed point converges quickly
    for _ in range(50):
        cycle = params.think_time_mean_s + page_time
        page_rate = users / cycle
        home_rate = page_rate * (
            behavior.misses_per_page + behavior.updates_per_page
        )
        dssp_rate = page_rate * (
            behavior.queries_per_page + behavior.updates_per_page
        )

        # Weighted average service at each station.
        home_service = _weighted_service(
            (behavior.misses_per_page, params.home_query_s),
            (behavior.updates_per_page, params.home_update_s),
        )
        dssp_service = _weighted_service(
            (behavior.queries_per_page, params.dssp_lookup_s),
            (behavior.updates_per_page, invalidation_s),
        )
        home_t = _station_response(home_rate, home_service, params.home_workers)
        dssp_t = _station_response(dssp_rate, dssp_service, params.dssp_workers)
        if math.isinf(home_t) or math.isinf(dssp_t):
            return math.inf

        hit_t = client_rt + dssp_t
        miss_t = client_rt + dssp_t + wan_rt + home_t
        update_t = client_rt + dssp_t + wan_rt + home_t

        mean = (
            behavior.hits_per_page * hit_t
            + behavior.misses_per_page * miss_t
            + behavior.updates_per_page * update_t
        )
        # Dispersion of the page time around its mean: the page is a sum of
        # ops drawn from the {hit, miss, update} mixture, so the per-op
        # variance is the mixture's central second moment E[X²] − E[X]²
        # (NOT the raw second moment — that would double-count the mean and
        # inflate every predicted p90), and the page-level variance scales
        # with the number of ops.
        op_second_moment = (
            behavior.hits_per_page * hit_t**2
            + behavior.misses_per_page * miss_t**2
            + behavior.updates_per_page * update_t**2
        ) / ops_per_page
        op_mean = mean / ops_per_page
        variance = ops_per_page * max(0.0, op_second_moment - op_mean**2)
        new_page_time = mean
        if abs(new_page_time - page_time) < 1e-6:
            page_time = new_page_time
            break
        page_time = new_page_time

    return mean + 1.282 * math.sqrt(variance)


def _weighted_service(*pairs: tuple[float, float]) -> float:
    total_weight = sum(weight for weight, _ in pairs)
    if total_weight <= 0:
        return 0.0
    return sum(weight * service for weight, service in pairs) / total_weight


# -- the search --------------------------------------------------------------------------


def find_scalability(
    params: SimulationParams,
    behavior: CacheBehavior | None = None,
    des_probe=None,
    max_users: int = 200_000,
) -> int:
    """Max users meeting the SLA (p90 ≤ threshold); 0 if even one user misses.

    Exactly one of ``behavior`` (analytic mode) or ``des_probe`` (a
    callable ``users -> SimulationReport``) must be given.
    """
    if (behavior is None) == (des_probe is None):
        raise ValueError("provide exactly one of behavior / des_probe")

    def meets(users: int) -> bool:
        if users == 0:
            return True
        if behavior is not None:
            return predict_p90(users, params, behavior) <= params.sla_seconds
        report = des_probe(users)
        return report.meets_sla(params)

    if not meets(1):
        return 0
    # Exponential growth to bracket, then binary search.
    low, high = 1, 2
    while high <= max_users and meets(high):
        low, high = high, high * 2
    if high > max_users:
        # The bracket overshot the search ceiling: every probe up to
        # ``low`` met the SLA, but ``max_users`` itself is untested.
        # Returning it blindly would overstate scalability whenever the
        # true crossing lies in (low, max_users).
        if meets(max_users):
            return max_users
        high = max_users
    while high - low > 1:
        middle = (low + high) // 2
        if meets(middle):
            low = middle
        else:
            high = middle
    return low
