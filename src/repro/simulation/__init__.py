"""Scalability simulation (paper Section 5.2's testbed, reproduced in software).

The paper measures scalability as *the maximum number of concurrent users
supported while 90% of HTTP requests complete within two seconds*, on an
Emulab deployment with

* client ↔ DSSP links of 5 ms latency / 20 Mbps,
* a DSSP ↔ home link of 100 ms latency / 2 Mbps,
* clients with negative-exponential think time (mean 7 s),
* a cold DSSP cache at the start of every run.

We reproduce that harness two ways, both driving the **real** DSSP code
(cache, strategies, encryption) rather than a model of it:

* :mod:`~repro.simulation.events` + :mod:`~repro.simulation.client` — a
  discrete-event simulation with queueing stations for the home server and
  DSSP node; faithful but O(events).
* :mod:`~repro.simulation.scalability` — the benchmark path: measure cache
  behaviour (hit/miss/update mix) by streaming a sample workload through
  the real DSSP, then locate the SLA-crossing user count with an M/M/1
  fixed-point model of the two stations.  Fast enough for the full
  parameter sweeps of Figures 3 and 8; validated against the DES in tests.
"""

from repro.simulation.events import Simulator
from repro.simulation.metrics import LatencyStats, percentile
from repro.simulation.network import Link
from repro.simulation.params import SimulationParams
from repro.simulation.servers import Station
from repro.simulation.client import SimulationReport, simulate_users
from repro.simulation.scalability import (
    CacheBehavior,
    find_scalability,
    measure_cache_behavior,
    predict_p90,
)
from repro.simulation.sweep import SweepResult, SweepTask, run_sweep, run_task

__all__ = [
    "CacheBehavior",
    "LatencyStats",
    "Link",
    "SimulationParams",
    "SimulationReport",
    "Simulator",
    "Station",
    "SweepResult",
    "SweepTask",
    "find_scalability",
    "measure_cache_behavior",
    "percentile",
    "predict_p90",
    "run_sweep",
    "run_task",
    "simulate_users",
]
