"""FIFO multi-worker queueing stations for the DES."""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.simulation.events import Simulator

__all__ = ["Station"]


class Station:
    """A server with ``workers`` parallel slots and a FIFO queue.

    ``submit(service_time, done)`` enqueues a job; ``done()`` fires when
    the job completes (after queueing + service).  Utilization statistics
    are tracked for reporting.
    """

    def __init__(self, sim: Simulator, workers: int, name: str = "") -> None:
        if workers < 1:
            raise ValueError("a station needs at least one worker")
        self._sim = sim
        self._workers = workers
        self._busy = 0
        self._queue: deque[tuple[float, Callable[[], None]]] = deque()
        self.name = name
        self.jobs_completed = 0
        self.busy_time = 0.0

    @property
    def queue_length(self) -> int:
        """Jobs waiting (not yet in service)."""
        return len(self._queue)

    @property
    def busy_workers(self) -> int:
        """Workers currently serving a job."""
        return self._busy

    def submit(self, service_time: float, done: Callable[[], None]) -> None:
        """Enqueue a job; ``done`` runs when service completes."""
        if self._busy < self._workers:
            self._start(service_time, done)
        else:
            self._queue.append((service_time, done))

    def _start(self, service_time: float, done: Callable[[], None]) -> None:
        self._busy += 1
        self.busy_time += service_time

        def finish() -> None:
            self._busy -= 1
            self.jobs_completed += 1
            if self._queue:
                next_service, next_done = self._queue.popleft()
                self._start(next_service, next_done)
            done()

        self._sim.schedule(service_time, finish)

    def utilization(self, elapsed: float) -> float:
        """Average fraction of worker capacity used over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / (elapsed * self._workers))
