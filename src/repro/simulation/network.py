"""Network links with latency + bandwidth (the paper's Emulab settings)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Link"]


@dataclass(frozen=True)
class Link:
    """A duplex link: one-way delay = latency + size / bandwidth.

    The paper's deployment uses a high-latency low-bandwidth DSSP↔home link
    (100 ms, 2 Mbps) and low-latency high-bandwidth client↔DSSP links
    (5 ms, 20 Mbps), modelling DSSP nodes near the clients and far from the
    single home server.
    """

    latency_s: float
    bandwidth_bytes_per_s: float

    def one_way(self, payload_bytes: float = 0.0) -> float:
        """Seconds for one message of ``payload_bytes`` to cross the link."""
        return self.latency_s + payload_bytes / self.bandwidth_bytes_per_s

    def round_trip(
        self, request_bytes: float = 0.0, response_bytes: float = 0.0
    ) -> float:
        """Seconds for a request/response exchange."""
        return self.one_way(request_bytes) + self.one_way(response_bytes)


#: Paper Section 5.2 link parameters.
def client_link() -> Link:
    """Client ↔ DSSP: 5 ms, 20 Mbps."""
    return Link(latency_s=0.005, bandwidth_bytes_per_s=20e6 / 8)


def wan_link() -> Link:
    """DSSP ↔ home server: 100 ms, 2 Mbps."""
    return Link(latency_s=0.100, bandwidth_bytes_per_s=2e6 / 8)
