"""Latency statistics for the scalability metric."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LatencyStats", "percentile"]


def percentile(samples: list[float], q: float) -> float:
    """The q-quantile (0..1) of samples by linear interpolation.

    Returns 0.0 for an empty sample list (an idle run meets any SLA).
    """
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    if ordered[low] == ordered[high]:
        return ordered[low]  # avoids float round-off in the interpolation
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


@dataclass
class LatencyStats:
    """Accumulates page response times."""

    samples: list[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        """Add one page's response time."""
        self.samples.append(seconds)

    @property
    def count(self) -> int:
        """Number of pages recorded."""
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Mean response time (0 when empty)."""
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def quantile(self, q: float) -> float:
        """The q-quantile of recorded response times."""
        return percentile(self.samples, q)

    def meets_sla(self, threshold_s: float, quantile: float) -> bool:
        """True if the q-quantile response time is within the threshold."""
        return self.quantile(quantile) <= threshold_s
