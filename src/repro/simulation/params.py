"""Simulation parameters, defaulted to the paper's experimental setup."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.network import Link, client_link, wan_link

__all__ = ["SimulationParams"]


@dataclass(frozen=True)
class SimulationParams:
    """Knobs of the scalability harness (paper Section 5.2).

    Network and client-behaviour defaults follow the paper exactly; service
    times are calibrated stand-ins for the paper's hardware (P-III 850 MHz
    home server, Xeon DSSP node) — scalability *shapes* depend on their
    ratios, not their absolute values.

    Attributes:
        think_time_mean_s: Mean of the negative-exponential think time.
        sla_seconds: Response-time threshold of the scalability metric.
        sla_quantile: Fraction of requests that must meet the threshold.
        client_dssp: Client ↔ DSSP link.
        dssp_home: DSSP ↔ home link.
        dssp_lookup_s: DSSP service time per cache lookup (hit or miss).
        dssp_invalidation_s: DSSP service time per invalidation decision.
        home_query_s: Home-server service time per query (miss service).
        home_update_s: Home-server service time per update.
        dssp_workers: Concurrency of the DSSP node.
        home_workers: Concurrency of the home server.
        request_bytes: Size of a query/update request on the wire.
        response_bytes: Size of a query response on the wire.
        duration_s: Virtual seconds simulated per run.
        warmup_s: Initial span excluded from latency statistics (cold cache
            still applies — the paper's runs start cold, so keep this 0 to
            match; raise it to study steady state).
    """

    think_time_mean_s: float = 7.0
    sla_seconds: float = 2.0
    sla_quantile: float = 0.90
    client_dssp: Link = field(default_factory=client_link)
    dssp_home: Link = field(default_factory=wan_link)
    dssp_lookup_s: float = 0.0015
    dssp_invalidation_s: float = 0.0002
    home_query_s: float = 0.018
    home_update_s: float = 0.010
    dssp_workers: int = 8
    home_workers: int = 2
    request_bytes: float = 400.0
    response_bytes: float = 4000.0
    duration_s: float = 600.0
    warmup_s: float = 0.0
    #: Draw service times from an exponential with the configured mean
    #: (matching the analytic M/M/1 model); False = deterministic times.
    stochastic_service: bool = True
