"""Closed-loop client simulation over the real DSSP (the DES harness).

Each emulated client mirrors the TPC-W browser model the paper uses: issue
a page request, wait for the response, think for Exp(mean 7 s), repeat.  A
page request fans out into the application's database operations, each of
which traverses the simulated network and queueing stations while the
*real* DSSP code decides hits, misses, and invalidations.

The operations come from a *page sampler* — any object with
``sample_page(rng) -> list`` of operations, where an operation exposes
``is_update`` and ``bound`` (see :mod:`repro.workloads.base`).

Consistency note: like the paper's prototype ("non-transactional
invalidation of cached query results", Section 5.2), the DES models real
invalidation latency — an update is applied at the home server first and
the DSSP-side invalidation completes after a WAN hop plus queueing, so a
concurrent query can briefly observe the pre-update view.  The functional
path (:meth:`repro.dssp.proxy.DsspNode.update`) is atomic; only the timed
simulation exhibits the window, exactly as the real deployment would.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.dssp.homeserver import HomeServer
from repro.dssp.proxy import DsspNode
from repro.dssp.stats import DsspStats
from repro.simulation.events import Simulator
from repro.simulation.metrics import LatencyStats
from repro.simulation.params import SimulationParams
from repro.simulation.servers import Station

__all__ = ["SimulationReport", "simulate_users"]


@dataclass(frozen=True)
class SimulationReport:
    """Outcome of one DES run at a fixed number of concurrent users."""

    users: int
    duration_s: float
    pages_completed: int
    latency: LatencyStats
    dssp: DsspStats
    home_utilization: float
    dssp_utilization: float

    @property
    def p90(self) -> float:
        """90th-percentile page response time."""
        return self.latency.quantile(0.90)

    def meets_sla(self, params: SimulationParams) -> bool:
        """Whether this run satisfies the paper's SLA."""
        return self.latency.meets_sla(params.sla_seconds, params.sla_quantile)


class _ClientDriver:
    """Shared machinery: stations, links, and the per-operation pipeline."""

    def __init__(
        self,
        node: DsspNode,
        home: HomeServer,
        params: SimulationParams,
        sim: Simulator,
        rng: random.Random | None = None,
    ) -> None:
        self.node = node
        self.home = home
        self.params = params
        self.sim = sim
        self.rng = rng or random.Random(0)
        self.dssp_station = Station(sim, params.dssp_workers, "dssp")
        self.home_station = Station(sim, params.home_workers, "home")
        self.latency = LatencyStats()
        self.pages_completed = 0

    def service_time(self, mean_s: float) -> float:
        """One service-time draw (exponential or deterministic)."""
        if self.params.stochastic_service:
            return self.rng.expovariate(1.0 / mean_s) if mean_s > 0 else 0.0
        return mean_s

    # -- one operation ------------------------------------------------------

    def perform_operation(self, operation, done) -> None:
        """Run one DB operation through network + stations; call done()."""
        params = self.params
        to_dssp = params.client_dssp.one_way(params.request_bytes)
        if operation.is_update:
            self.sim.schedule(to_dssp, lambda: self._update_at_dssp(operation, done))
        else:
            self.sim.schedule(to_dssp, lambda: self._query_at_dssp(operation, done))

    def _seal_query(self, bound):
        level = self.home.policy.query_level(bound.template.name)
        return self.home.codec.seal_query(bound, level)

    def _seal_update(self, bound):
        level = self.home.policy.update_level(bound.template.name)
        return self.home.codec.seal_update(bound, level)

    def _query_at_dssp(self, operation, done) -> None:
        params = self.params
        envelope = self._seal_query(operation.bound)

        def after_lookup() -> None:
            cached = self.node.lookup(envelope)
            if cached is not None:
                self.sim.schedule(
                    params.client_dssp.one_way(params.response_bytes), done
                )
                return
            # Miss: WAN to home, queue at the home server, WAN back.
            wan_out = params.dssp_home.one_way(params.request_bytes)

            def at_home() -> None:
                def served() -> None:
                    self.node.fill(envelope)
                    back = params.dssp_home.one_way(
                        params.response_bytes
                    ) + params.client_dssp.one_way(params.response_bytes)
                    self.sim.schedule(back, done)

                self.home_station.submit(self.service_time(params.home_query_s), served)

            self.sim.schedule(wan_out, at_home)

        self.dssp_station.submit(self.service_time(params.dssp_lookup_s), after_lookup)

    def _update_at_dssp(self, operation, done) -> None:
        params = self.params
        envelope = self._seal_update(operation.bound)
        wan_out = params.dssp_home.one_way(params.request_bytes)

        def at_home() -> None:
            def applied() -> None:
                self.node.forward_update(envelope)
                back = params.dssp_home.one_way(params.request_bytes)
                self.sim.schedule(back, at_dssp_again)

            self.home_station.submit(self.service_time(params.home_update_s), applied)

        def at_dssp_again() -> None:
            def invalidated() -> None:
                self.node.invalidate_for(envelope)
                self.sim.schedule(
                    params.client_dssp.one_way(params.request_bytes), done
                )

            self.dssp_station.submit(self.service_time(params.dssp_invalidation_s), invalidated)

        self.sim.schedule(wan_out, at_home)


class _Client:
    """One closed-loop emulated browser."""

    def __init__(
        self, index: int, driver: _ClientDriver, sampler, rng: random.Random
    ) -> None:
        self.driver = driver
        self.sampler = sampler
        self.rng = rng
        # Stagger arrivals across one think period to avoid a thundering herd.
        start = rng.uniform(0, driver.params.think_time_mean_s)
        driver.sim.schedule(start, self.start_page)

    def start_page(self) -> None:
        driver = self.driver
        if driver.sim.now >= driver.params.duration_s:
            return
        operations = list(self.sampler.sample_page(self.rng))
        began = driver.sim.now

        def next_operation() -> None:
            if not operations:
                self.finish_page(began)
                return
            operation = operations.pop(0)
            driver.perform_operation(operation, next_operation)

        next_operation()

    def finish_page(self, began: float) -> None:
        driver = self.driver
        elapsed = driver.sim.now - began
        if began >= driver.params.warmup_s:
            driver.latency.record(elapsed)
        driver.pages_completed += 1
        think = self.rng.expovariate(1.0 / driver.params.think_time_mean_s)
        driver.sim.schedule(think, self.start_page)


def simulate_users(
    node: DsspNode,
    home: HomeServer,
    sampler,
    users: int,
    params: SimulationParams | None = None,
    seed: int = 0,
) -> SimulationReport:
    """Run the DES with ``users`` concurrent clients; cold cache start."""
    params = params or SimulationParams()
    sim = Simulator()
    node.cold_start()
    rng = random.Random(seed)
    driver = _ClientDriver(node, home, params, sim, random.Random(rng.getrandbits(64)))
    for index in range(users):
        _Client(index, driver, sampler, random.Random(rng.getrandbits(64)))
    sim.run_until(params.duration_s)
    return SimulationReport(
        users=users,
        duration_s=params.duration_s,
        pages_completed=driver.pages_completed,
        latency=driver.latency,
        dssp=node.stats,
        home_utilization=driver.home_station.utilization(params.duration_s),
        dssp_utilization=driver.dssp_station.utilization(params.duration_s),
    )
