"""A minimal discrete-event simulator (calendar heap)."""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.errors import SimulationError

__all__ = ["Simulator"]


class Simulator:
    """Virtual clock + event heap.

    Events are ``(time, sequence, callback)``; the sequence number breaks
    ties FIFO so simultaneous events run in scheduling order, which keeps
    runs deterministic.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay`` virtual seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self.now + delay, self._sequence, callback))
        self._sequence += 1

    def run_until(self, end_time: float) -> None:
        """Process events in time order until the clock reaches ``end_time``."""
        while self._heap and self._heap[0][0] <= end_time:
            time, _, callback = heapq.heappop(self._heap)
            self.now = time
            callback()
        self.now = end_time

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)
