"""Parallel scalability sweeps (strategies × apps × policies × knobs).

The benchmark figures are grids of independent cells: deploy an
application under some exposure policy, stream a sample workload through
the real DSSP, and search for the SLA-crossing user count.  Cells share
nothing (each worker builds its own database instance), so the grid is
embarrassingly parallel — a :class:`~concurrent.futures.ProcessPoolExecutor`
runs one cell per process and results come back in task order.

A :class:`SweepTask` is a plain picklable description of one cell; the
worker function :func:`run_task` is importable at module top level, so the
pool works under both ``fork`` and ``spawn`` start methods.  With
``workers <= 1`` (or a single-CPU host) the sweep degrades to an in-process
loop with identical results, so callers never need two code paths.

The worker count defaults to ``REPRO_SWEEP_WORKERS`` (0 = auto) and then
to the machine's CPU count.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial

from repro.analysis.exposure import ExposurePolicy
from repro.crypto import Keyring
from repro.dssp import DsspNode, HomeServer, StrategyClass
from repro.simulation.params import SimulationParams
from repro.simulation.scalability import (
    CacheBehavior,
    find_scalability,
    measure_cache_behavior,
)

__all__ = ["SweepResult", "SweepTask", "run_sweep", "run_task", "sweep_workers"]


@dataclass(frozen=True)
class SweepTask:
    """One cell of a benchmark grid, fully describing its deployment.

    Exactly one of ``strategy`` (uniform exposure) or ``policy`` (explicit
    per-template levels) must be given.  ``tag`` is an opaque picklable
    identifier echoed back on the result so callers can re-key the grid.
    """

    app_name: str
    strategy: StrategyClass | None = None
    policy: ExposurePolicy | None = None
    pages: int = 1500
    scale: float = 0.2
    seed: int = 5
    data_seed: int = 1
    use_integrity_constraints: bool = True
    equality_only_independence: bool = False
    cache_capacity: int | None = None
    zipf_exponent: float | None = None
    tag: object = None


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one task: measured behaviour plus the SLA search."""

    task: SweepTask
    behavior: CacheBehavior
    users: int | None
    resident_views: int

    @property
    def tag(self) -> object:
        """The task's identifier, for re-keying result grids."""
        return self.task.tag


def run_task(
    task: SweepTask, params: SimulationParams | None = None
) -> SweepResult:
    """Execute one sweep cell (this is the process-pool worker)."""
    if (task.strategy is None) == (task.policy is None):
        raise ValueError("provide exactly one of strategy / policy")
    from repro.workloads import get_application

    app = get_application(task.app_name)
    instance = app.instantiate(scale=task.scale, seed=task.data_seed)
    policy = task.policy
    if policy is None:
        policy = ExposurePolicy.uniform(
            app.registry, task.strategy.exposure_level
        )
    if task.zipf_exponent is not None:
        from repro.workloads.zipf import ZipfSampler

        instance.sampler.zipf = ZipfSampler(
            instance.sampler.zipf.n, task.zipf_exponent
        )
    home = HomeServer(
        task.app_name,
        instance.database,
        app.registry,
        policy,
        Keyring(
            task.app_name,
            b"bench-key-" + task.app_name.encode().ljust(22, b"0"),
        ),
    )
    node = DsspNode(
        cache_capacity=task.cache_capacity,
        use_integrity_constraints=task.use_integrity_constraints,
        equality_only_independence=task.equality_only_independence,
    )
    node.register_application(home)
    behavior = measure_cache_behavior(
        node, home, instance.sampler, pages=task.pages, seed=task.seed
    )
    users = None
    if params is not None:
        users = find_scalability(params, behavior=behavior)
    return SweepResult(
        task=task,
        behavior=behavior,
        users=users,
        resident_views=len(node.cache),
    )


def sweep_workers(workers: int | None = None) -> int:
    """Resolve the worker count: explicit arg → env knob → CPU count."""
    if workers is None:
        workers = int(os.environ.get("REPRO_SWEEP_WORKERS", "0"))
    if workers <= 0:
        workers = os.cpu_count() or 1
    return workers


def run_sweep(
    tasks: Sequence[SweepTask],
    params: SimulationParams | None = None,
    workers: int | None = None,
) -> list[SweepResult]:
    """Run every task, in parallel where the host allows.

    Results are returned in task order.  When ``params`` is given each
    result carries the analytic scalability search's user count; otherwise
    ``users`` is None and only the cache behaviour is measured.
    """
    tasks = list(tasks)
    count = sweep_workers(workers)
    if count <= 1 or len(tasks) <= 1:
        return [run_task(task, params) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(count, len(tasks))) as pool:
        return list(pool.map(partial(run_task, params=params), tasks))
