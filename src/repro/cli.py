"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``apps`` — list the built-in benchmark applications.
* ``templates APP`` — print an application's query/update templates.
* ``ipm APP`` — print the full IPM characterization matrix (Table 4 style).
* ``analyze APP`` — print the Table 7 style summary and the free-encryption
  count.
* ``methodology APP`` — run the three-step design methodology and print
  initial → final exposure levels (Figure 7 style).
* ``scalability APP`` — measure cache behaviour per strategy class and
  report max users within the SLA (Figure 8 style).
* ``simulate APP --users N`` — one discrete-event simulation run.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import (
    characterize_application,
    design_exposure_policy,
    format_ipm_table,
    format_summary_table,
    summarize_characterization,
)
from repro.analysis.exposure import ExposurePolicy
from repro.crypto import Keyring
from repro.dssp import DsspNode, HomeServer, StrategyClass
from repro.simulation import (
    SimulationParams,
    find_scalability,
    simulate_users,
)
from repro.workloads import APPLICATIONS, get_application

__all__ = ["main"]


def _add_app_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "app",
        choices=sorted(APPLICATIONS),
        help="benchmark application name",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Simultaneous Scalability and Security for "
            "Data-Intensive Web Applications' (SIGMOD 2006)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("apps", help="list benchmark applications")

    templates = commands.add_parser(
        "templates", help="print an application's templates"
    )
    _add_app_argument(templates)

    ipm = commands.add_parser("ipm", help="print the IPM characterization")
    _add_app_argument(ipm)
    ipm.add_argument(
        "--no-constraints",
        action="store_true",
        help="disable the Section 4.5 integrity-constraint rules",
    )

    analyze = commands.add_parser("analyze", help="Table 7 style summary")
    _add_app_argument(analyze)
    analyze.add_argument("--no-constraints", action="store_true")

    methodology = commands.add_parser(
        "methodology", help="run the security design methodology"
    )
    _add_app_argument(methodology)

    scalability = commands.add_parser(
        "scalability", help="Figure 8 style scalability per strategy"
    )
    _add_app_argument(scalability)
    scalability.add_argument(
        "--pages", type=int, default=1500, help="measurement length"
    )
    scalability.add_argument(
        "--scale", type=float, default=0.2, help="data-size multiplier"
    )
    scalability.add_argument(
        "--nodes",
        type=int,
        default=1,
        help="DSSP fleet size (clients partitioned; invalidation fans out)",
    )
    scalability.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for the per-strategy sweep "
            "(default: REPRO_SWEEP_WORKERS or the CPU count; single-node only)"
        ),
    )

    simulate = commands.add_parser(
        "simulate", help="one discrete-event simulation run"
    )
    _add_app_argument(simulate)
    simulate.add_argument("--users", type=int, default=25)
    simulate.add_argument("--duration", type=float, default=120.0)
    simulate.add_argument(
        "--strategy",
        choices=[s.name for s in StrategyClass],
        default="MVIS",
    )
    simulate.add_argument("--scale", type=float, default=0.2)
    simulate.add_argument("--seed", type=int, default=0)

    diagnose = commands.add_parser(
        "diagnose",
        help="check the paper's runtime assumptions on a sampled workload",
    )
    _add_app_argument(diagnose)
    diagnose.add_argument("--pages", type=int, default=300)
    diagnose.add_argument("--scale", type=float, default=0.2)
    diagnose.add_argument("--seed", type=int, default=0)

    export = commands.add_parser(
        "export", help="emit analysis results as CSV on stdout"
    )
    _add_app_argument(export)
    export.add_argument(
        "what",
        choices=["characterization", "methodology", "policy"],
        help="which artifact to export",
    )
    return parser


# -- command implementations ---------------------------------------------------------


def _cmd_apps(args, out) -> int:
    for name in sorted(APPLICATIONS):
        registry = get_application(name).registry
        print(
            f"{name:<12} {len(registry.queries):>3} query templates, "
            f"{len(registry.updates):>3} update templates",
            file=out,
        )
    return 0


def _cmd_templates(args, out) -> int:
    registry = get_application(args.app).registry
    print(f"# {args.app}: query templates", file=out)
    for template in registry.queries:
        print(f"{template.name:<28} {template.sql}", file=out)
    print(f"\n# {args.app}: update templates", file=out)
    for template in registry.updates:
        print(f"{template.name:<28} {template.sql}", file=out)
    return 0


def _cmd_ipm(args, out) -> int:
    registry = get_application(args.app).registry
    characterization = characterize_application(
        registry, use_integrity_constraints=not args.no_constraints
    )
    print(format_ipm_table(characterization), file=out)
    return 0


def _cmd_analyze(args, out) -> int:
    registry = get_application(args.app).registry
    characterization = characterize_application(
        registry, use_integrity_constraints=not args.no_constraints
    )
    summary = summarize_characterization(args.app, characterization)
    print(format_summary_table([summary]), file=out)
    result = design_exposure_policy(registry)
    print(
        f"\nquery results encryptable at zero scalability cost: "
        f"{result.encrypted_result_count()} of {len(registry.queries)}",
        file=out,
    )
    return 0


def _cmd_methodology(args, out) -> int:
    registry = get_application(args.app).registry
    result = design_exposure_policy(registry)
    print(f"# {args.app}: exposure levels (initial -> final)", file=out)
    for name, (initial, final) in sorted(
        result.exposure_reduction_summary().items()
    ):
        marker = "   [reduced]" if initial != final else ""
        print(f"{name:<28} {initial:>8} -> {final}{marker}", file=out)
    print(
        f"\nresidual (Step 3) queries: {', '.join(result.residual_queries)}",
        file=out,
    )
    return 0


def _deploy(app_name: str, strategy: StrategyClass, scale: float, seed: int = 1):
    spec = get_application(app_name)
    instance = spec.instantiate(scale=scale, seed=seed)
    policy = ExposurePolicy.uniform(spec.registry, strategy.exposure_level)
    home = HomeServer(
        app_name, instance.database, spec.registry, policy, Keyring(app_name)
    )
    node = DsspNode()
    node.register_application(home)
    return node, home, instance.sampler


def _cmd_scalability(args, out) -> int:
    params = SimulationParams()
    print(
        f"{'strategy':<8} {'hit rate':>9} {'inval/upd':>10} {'max users':>10}",
        file=out,
    )
    rows: list[tuple[StrategyClass, object, int]] = []
    if args.nodes > 1:
        for strategy in StrategyClass:
            behavior = _cluster_behavior(args, strategy)
            users = find_scalability(params, behavior=behavior)
            rows.append((strategy, behavior, users))
    else:
        # Single-node strategies are independent cells: sweep them across
        # worker processes when the host has the CPUs for it.
        from repro.simulation.sweep import SweepTask, run_sweep

        tasks = [
            SweepTask(
                app_name=args.app,
                strategy=strategy,
                pages=args.pages,
                scale=args.scale,
                tag=strategy,
            )
            for strategy in StrategyClass
        ]
        for cell in run_sweep(tasks, params=params, workers=args.workers):
            rows.append((cell.tag, cell.behavior, cell.users))
    for strategy, behavior, users in rows:
        print(
            f"{strategy.name:<8} {behavior.hit_rate:>9.3f} "
            f"{behavior.invalidations_per_update:>10.2f} {users:>10}",
            file=out,
        )
    return 0


def _cluster_behavior(args, strategy: StrategyClass):
    from repro.dssp.cluster import DsspCluster, measure_cluster_behavior

    spec = get_application(args.app)
    instance = spec.instantiate(scale=args.scale, seed=1)
    policy = ExposurePolicy.uniform(spec.registry, strategy.exposure_level)
    home = HomeServer(
        args.app, instance.database, spec.registry, policy, Keyring(args.app)
    )
    cluster = DsspCluster(nodes=args.nodes)
    cluster.register_application(home)
    return measure_cluster_behavior(
        cluster, home, instance.sampler, pages=args.pages, seed=5
    )


def _cmd_simulate(args, out) -> int:
    strategy = StrategyClass[args.strategy]
    node, home, sampler = _deploy(args.app, strategy, args.scale, args.seed)
    params = SimulationParams(duration_s=args.duration)
    report = simulate_users(
        node, home, sampler, args.users, params, seed=args.seed
    )
    print(
        f"app={args.app} strategy={strategy.name} users={args.users} "
        f"duration={args.duration:.0f}s",
        file=out,
    )
    print(
        f"pages={report.pages_completed} p90={report.p90:.3f}s "
        f"mean={report.latency.mean:.3f}s hit_rate={report.dssp.hit_rate:.3f}",
        file=out,
    )
    print(
        f"home_utilization={report.home_utilization:.2f} "
        f"dssp_utilization={report.dssp_utilization:.2f} "
        f"sla_met={report.meets_sla(params)}",
        file=out,
    )
    return 0


def _cmd_diagnose(args, out) -> int:
    from repro.analysis.diagnostics import check_runtime_assumptions

    spec = get_application(args.app)
    instance = spec.instantiate(scale=args.scale, seed=args.seed)
    report = check_runtime_assumptions(
        instance.database, instance.sampler, pages=args.pages, seed=args.seed
    )
    print(report.summary(), file=out)
    if report.ineffective_update_examples:
        print("ineffective update examples:", file=out)
        for name, params in report.ineffective_update_examples[:10]:
            print(f"  {name}{params}", file=out)
    if report.empty_result_examples:
        print("empty result examples:", file=out)
        for name, params in report.empty_result_examples[:10]:
            print(f"  {name}{params}", file=out)
    return 0


def _cmd_export(args, out) -> int:
    from repro.export import (
        characterization_to_csv,
        exposure_policy_to_csv,
        methodology_to_csv,
    )

    registry = get_application(args.app).registry
    if args.what == "characterization":
        print(
            characterization_to_csv(characterize_application(registry)),
            file=out,
            end="",
        )
    elif args.what == "methodology":
        print(
            methodology_to_csv(design_exposure_policy(registry)),
            file=out,
            end="",
        )
    else:
        print(
            exposure_policy_to_csv(design_exposure_policy(registry).final),
            file=out,
            end="",
        )
    return 0


_COMMANDS = {
    "apps": _cmd_apps,
    "templates": _cmd_templates,
    "ipm": _cmd_ipm,
    "analyze": _cmd_analyze,
    "methodology": _cmd_methodology,
    "scalability": _cmd_scalability,
    "simulate": _cmd_simulate,
    "diagnose": _cmd_diagnose,
    "export": _cmd_export,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)
