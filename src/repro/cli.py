"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``apps`` — list the built-in benchmark applications.
* ``templates APP`` — print an application's query/update templates.
* ``ipm APP`` — print the full IPM characterization matrix (Table 4 style).
* ``analyze APP`` — print the Table 7 style summary and the free-encryption
  count.
* ``methodology APP`` — run the three-step design methodology and print
  initial → final exposure levels (Figure 7 style).
* ``scalability APP`` — measure cache behaviour per strategy class and
  report max users within the SLA (Figure 8 style).
* ``simulate APP --users N`` — one discrete-event simulation run.
* ``serve-home APP`` / ``serve-dssp APP`` — run the networked service
  layer (home organization / DSSP node) on real sockets.
* ``loadgen APP`` — closed-loop load generator against live DSSP nodes
  (optionally with deterministic fault injection via ``--chaos-seed``).
* ``chaos APP`` — stand up a chaos-proxied cluster in-process, replay a
  recorded trace through it, and run the consistency oracle.
* ``stats HOST:PORT [HOST:PORT ...]`` — dump live STATS snapshots as JSON
  (several targets merge into a fleet view; ``--prom`` renders
  Prometheus text exposition instead).
* ``trace LOG [LOG ...]`` — assemble per-node span logs into trace
  trees, print phase aggregates and critical paths.

Global flags ``--log-level`` and ``--log-json`` configure structured
logging for every command (key=value text or JSON lines on stderr).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys

from repro.analysis import (
    characterize_application,
    design_exposure_policy,
    format_ipm_table,
    format_summary_table,
    summarize_characterization,
)
from repro.analysis.exposure import ExposurePolicy
from repro.crypto import Keyring
from repro.dssp import DsspNode, HomeServer, StrategyClass
from repro.simulation import (
    SimulationParams,
    find_scalability,
    simulate_users,
)
from repro.workloads import APPLICATIONS, get_application

__all__ = ["main"]


def _add_app_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "app",
        choices=sorted(APPLICATIONS),
        help="benchmark application name",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Simultaneous Scalability and Security for "
            "Data-Intensive Web Applications' (SIGMOD 2006)"
        ),
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default="warning",
        help="structured-log threshold on stderr",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit logs as JSON lines instead of key=value text",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("apps", help="list benchmark applications")

    templates = commands.add_parser(
        "templates", help="print an application's templates"
    )
    _add_app_argument(templates)

    ipm = commands.add_parser("ipm", help="print the IPM characterization")
    _add_app_argument(ipm)
    ipm.add_argument(
        "--no-constraints",
        action="store_true",
        help="disable the Section 4.5 integrity-constraint rules",
    )

    analyze = commands.add_parser("analyze", help="Table 7 style summary")
    _add_app_argument(analyze)
    analyze.add_argument("--no-constraints", action="store_true")

    methodology = commands.add_parser(
        "methodology", help="run the security design methodology"
    )
    _add_app_argument(methodology)

    scalability = commands.add_parser(
        "scalability", help="Figure 8 style scalability per strategy"
    )
    _add_app_argument(scalability)
    scalability.add_argument(
        "--pages", type=int, default=1500, help="measurement length"
    )
    scalability.add_argument(
        "--scale", type=float, default=0.2, help="data-size multiplier"
    )
    scalability.add_argument(
        "--nodes",
        type=int,
        default=1,
        help="DSSP fleet size (clients partitioned; invalidation fans out)",
    )
    scalability.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for the per-strategy sweep "
            "(default: REPRO_SWEEP_WORKERS or the CPU count; single-node only)"
        ),
    )

    simulate = commands.add_parser(
        "simulate", help="one discrete-event simulation run"
    )
    _add_app_argument(simulate)
    simulate.add_argument("--users", type=int, default=25)
    simulate.add_argument("--duration", type=float, default=120.0)
    simulate.add_argument(
        "--strategy",
        choices=[s.name for s in StrategyClass],
        default="MVIS",
    )
    simulate.add_argument("--scale", type=float, default=0.2)
    simulate.add_argument("--seed", type=int, default=0)

    diagnose = commands.add_parser(
        "diagnose",
        help="check the paper's runtime assumptions on a sampled workload",
    )
    _add_app_argument(diagnose)
    diagnose.add_argument("--pages", type=int, default=300)
    diagnose.add_argument("--scale", type=float, default=0.2)
    diagnose.add_argument("--seed", type=int, default=0)

    export = commands.add_parser(
        "export", help="emit analysis results as CSV on stdout"
    )
    _add_app_argument(export)
    export.add_argument(
        "what",
        choices=["characterization", "methodology", "policy"],
        help="which artifact to export",
    )

    serve_home = commands.add_parser(
        "serve-home", help="run an application's home server on a socket"
    )
    _add_app_argument(serve_home)
    _add_serve_arguments(serve_home)
    serve_home.add_argument(
        "--strategy",
        choices=[s.name for s in StrategyClass],
        default="MVIS",
        help="uniform exposure policy for sealing results",
    )
    serve_home.add_argument("--scale", type=float, default=0.2)
    serve_home.add_argument("--seed", type=int, default=1)
    serve_home.add_argument(
        "--backend",
        choices=["memory", "sqlite"],
        default="memory",
        help="master-copy storage engine (sqlite is durable with --db-path)",
    )
    serve_home.add_argument(
        "--db-path",
        default=None,
        metavar="PATH",
        help="SQLite database file; an existing non-empty file is resumed "
        "as-is (restart durability) instead of regenerating data",
    )
    serve_home.add_argument(
        "--master",
        default="repro-demo",
        help="shared demo master secret (derives the application keyring; "
        "the DSSP never sees it)",
    )

    serve_dssp = commands.add_parser(
        "serve-dssp", help="run a DSSP cache node on a socket"
    )
    _add_app_argument(serve_dssp)
    _add_serve_arguments(serve_dssp)
    serve_dssp.add_argument(
        "--home",
        required=True,
        metavar="HOST:PORT",
        help="address of the application's home server",
    )
    serve_dssp.add_argument(
        "--node-id", default="dssp-0", help="identity on the invalidation stream"
    )
    serve_dssp.add_argument(
        "--capacity", type=int, default=None, help="cache capacity (views)"
    )
    serve_dssp.add_argument("--no-constraints", action="store_true")
    serve_dssp.add_argument(
        "--predicate-index",
        action="store_true",
        help="index cached views by bound selection values so stmt-level "
        "invalidation visits only matching entries (O(affected), not "
        "O(bucket)); off = classic bucket sweep",
    )
    serve_dssp.add_argument(
        "--shards",
        default=None,
        metavar="ID,ID,...",
        help="comma-separated node ids of the whole sharded cluster "
        "(must include --node-id); enables consistent-hash placement: "
        "this node only admits keys it owns and the home narrows "
        "invalidation fan-out to owning shards",
    )
    serve_dssp.add_argument(
        "--vnodes",
        type=int,
        default=None,
        metavar="N",
        help="virtual nodes per shard on the hash ring "
        "(must match across the cluster and the load generator)",
    )

    from repro.net.scenarios import SCENARIOS
    from repro.net.traffic import ARRIVAL_KINDS

    loadgen = commands.add_parser(
        "loadgen",
        help="load generator against live DSSP nodes (closed-loop by "
        "default; --arrival switches to open-loop, --scenario runs a "
        "named in-process scenario)",
    )
    loadgen.add_argument(
        "app",
        nargs="?",
        default="bookstore",
        choices=sorted(APPLICATIONS),
        help="benchmark application name (default: bookstore)",
    )
    loadgen.add_argument(
        "--dssp",
        action="append",
        metavar="HOST:PORT",
        help="DSSP node address (repeat for a fleet); required unless "
        "--scenario deploys its own in-process topology",
    )
    loadgen.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default=None,
        help="deploy and drive a named scenario in-process (ignores "
        "--dssp); reports offered vs achieved rate and, with --sweep, "
        "the knee",
    )
    loadgen.add_argument(
        "--arrival",
        choices=list(ARRIVAL_KINDS),
        default=None,
        help="open-loop arrival process driving the run (default: "
        "closed loop); pages launch on the schedule regardless of "
        "completions",
    )
    loadgen.add_argument(
        "--rate",
        type=float,
        default=50.0,
        metavar="PAGES_S",
        help="offered arrival rate for --arrival/--scenario (pages/s)",
    )
    loadgen.add_argument(
        "--arrival-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="arrival-schedule seed (default: --seed); the report carries "
        "the schedule's sha256 digest for byte-for-byte reproducibility",
    )
    loadgen.add_argument(
        "--max-outstanding",
        type=int,
        default=64,
        metavar="N",
        help="open-loop guard: arrivals beyond N in-flight pages are "
        "dropped and counted, not queued",
    )
    loadgen.add_argument(
        "--sweep",
        default=None,
        metavar="R1,R2,...",
        help="ascending offered rates for a knee sweep (scenario mode)",
    )
    loadgen.add_argument(
        "--deadline",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="p99 deadline the knee is detected against (sweep mode)",
    )
    loadgen.add_argument(
        "--service-latency",
        type=float,
        default=0.004,
        metavar="SECONDS",
        help="injected per-request service latency in scenario "
        "deployments (stands in for the WAN/database round trip)",
    )
    loadgen.add_argument(
        "--strategy",
        choices=[s.name for s in StrategyClass],
        default="MVIS",
        help="uniform exposure level used to seal requests "
        "(must match the home server's)",
    )
    loadgen.add_argument("--clients", type=int, default=8)
    loadgen.add_argument(
        "--pipeline",
        type=int,
        default=None,
        metavar="N",
        help="open-loop pipelined mode: keep N pages in flight per client "
        "over one multiplexed connection (default: serial closed loop)",
    )
    loadgen.add_argument(
        "--pages", type=int, default=None, help="page budget (default: none)"
    )
    loadgen.add_argument(
        "--duration", type=float, default=None, help="wall-clock budget (s)"
    )
    loadgen.add_argument("--scale", type=float, default=0.2)
    loadgen.add_argument("--seed", type=int, default=1)
    loadgen.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="trace file: replayed if it exists, else recorded there first",
    )
    loadgen.add_argument(
        "--trace-pages",
        type=int,
        default=400,
        help="pages to record when creating a new trace",
    )
    loadgen.add_argument(
        "--master",
        default="repro-demo",
        help="shared demo master secret (must match serve-home)",
    )
    loadgen.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the combined client+server report as JSON",
    )
    loadgen.add_argument(
        "--no-server-stats",
        action="store_true",
        help="skip the post-run STATS fetch from each DSSP node",
    )
    loadgen.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="inject deterministic frame faults through in-process proxies",
    )
    loadgen.add_argument(
        "--fault-rate",
        type=float,
        default=0.05,
        help="aggregate frame-fault probability (split across drop/delay/"
        "duplicate/truncate; used with --chaos-seed)",
    )
    loadgen.add_argument(
        "--kill-every",
        type=int,
        default=None,
        metavar="N",
        help="sever every proxied connection after each N completed pages "
        "(used with --chaos-seed)",
    )
    loadgen.add_argument(
        "--shards",
        default=None,
        metavar="ID,ID,...",
        help="route through a ShardRouter instead of partitioning clients: "
        "comma-separated node ids, one per --dssp address in order "
        "(must match the servers' --node-id/--shards)",
    )
    loadgen.add_argument(
        "--vnodes",
        type=int,
        default=None,
        metavar="N",
        help="virtual nodes per shard (must match the servers')",
    )
    _add_trace_arguments(loadgen)

    chaos = commands.add_parser(
        "chaos",
        help="run the chaos + consistency-oracle harness on a live "
        "in-process cluster",
    )
    _add_app_argument(chaos)
    chaos.add_argument("--nodes", type=int, default=2)
    chaos.add_argument("--clients", type=int, default=4)
    chaos.add_argument(
        "--pipeline",
        type=int,
        default=None,
        metavar="N",
        help="route oracle clients through a pipelined channel with an "
        "N-request window (default: serial pooled transport)",
    )
    chaos.add_argument(
        "--pages", type=int, default=60, help="trace length to record/replay"
    )
    chaos.add_argument("--chaos-seed", type=int, default=0, metavar="SEED")
    chaos.add_argument(
        "--fault-rate",
        type=float,
        default=0.1,
        help="aggregate frame-fault probability",
    )
    chaos.add_argument(
        "--kill-every",
        type=int,
        default=None,
        metavar="N",
        help="kill/restart a server every N pages",
    )
    chaos.add_argument(
        "--kill-target",
        choices=["all", "home", "dssp"],
        default="all",
        help="which servers the kill schedule rotates over",
    )
    chaos.add_argument(
        "--strategy",
        choices=[s.name for s in StrategyClass],
        default="MVIS",
    )
    chaos.add_argument("--scale", type=float, default=0.2)
    chaos.add_argument(
        "--shards",
        action="store_true",
        help="run the nodes as a consistent-hash sharded cluster: "
        "placement-routed queries, no-admit gating, filtered fan-out",
    )
    chaos.add_argument(
        "--vnodes",
        type=int,
        default=None,
        metavar="N",
        help="virtual nodes per shard (sharded mode)",
    )
    chaos.add_argument(
        "--predicate-index",
        action="store_true",
        help="enable the predicate index on every DSSP node (the oracle "
        "then covers the indexed invalidation path)",
    )
    chaos.add_argument(
        "--seed", type=int, default=1, help="workload/trace seed"
    )
    chaos.add_argument(
        "--scenario",
        choices=["flash_crowd"],
        default=None,
        help="reshape the recorded trace before replay: flash_crowd "
        "concentrates the mid-run pages on the hottest query template, "
        "so the oracle covers hot-key invalidation at the spike",
    )
    chaos.add_argument(
        "--backend",
        choices=["memory", "sqlite"],
        default="memory",
        help="home master-copy storage engine",
    )
    chaos.add_argument(
        "--db-path",
        default=None,
        metavar="PATH",
        help="SQLite file for the home's master copy (sqlite backend); "
        "home kills then restart from the durable file",
    )
    chaos.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the oracle report + canonical fault log as JSON",
    )
    chaos.add_argument(
        "--span-log",
        default=None,
        metavar="DIR",
        help="write per-node span logs (one JSON-lines file per node) "
        "into this directory",
    )
    chaos.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="head-sampling rate by trace id, 0..1",
    )

    stats = commands.add_parser(
        "stats",
        help="dump live STATS snapshots as JSON (or Prometheus text)",
    )
    stats.add_argument(
        "addresses",
        nargs="+",
        metavar="HOST:PORT",
        help="wire servers (home or DSSP); several merge into a fleet view",
    )
    stats.add_argument(
        "--timeout", type=float, default=5.0, help="request timeout (s)"
    )
    stats.add_argument(
        "--prom",
        action="store_true",
        help="render the Prometheus text exposition format instead of "
        "JSON (per-node series labeled node=..., no merging)",
    )

    trace = commands.add_parser(
        "trace",
        help="assemble span logs into trace trees with critical paths",
    )
    trace.add_argument(
        "logs",
        nargs="+",
        metavar="SPAN_LOG",
        help="JSON-lines span log files (one per node, from --span-log)",
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="emit the full machine-readable report instead of tables",
    )
    trace.add_argument(
        "--trace",
        default=None,
        metavar="ID",
        help="print the span tree of one trace id",
    )
    trace.add_argument(
        "--slowest",
        type=int,
        default=5,
        metavar="N",
        help="slowest traces to summarize (default 5)",
    )
    return parser


def _add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 picks an ephemeral port"
    )
    parser.add_argument(
        "--max-in-flight",
        type=int,
        default=64,
        help="requests processed concurrently before shedding (OVERLOADED)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="per-request timeout in seconds",
    )
    _add_trace_arguments(parser)


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--span-log",
        default=None,
        metavar="PATH",
        help="write sampled request spans as JSON lines to this file "
        "(enables tracing; assemble with `repro trace`)",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="head-sampling rate by trace id, 0..1 (must match across "
        "the fleet so traces assemble whole)",
    )


# -- command implementations ---------------------------------------------------------


def _cmd_apps(args, out) -> int:
    for name in sorted(APPLICATIONS):
        registry = get_application(name).registry
        print(
            f"{name:<12} {len(registry.queries):>3} query templates, "
            f"{len(registry.updates):>3} update templates",
            file=out,
        )
    return 0


def _cmd_templates(args, out) -> int:
    registry = get_application(args.app).registry
    print(f"# {args.app}: query templates", file=out)
    for template in registry.queries:
        print(f"{template.name:<28} {template.sql}", file=out)
    print(f"\n# {args.app}: update templates", file=out)
    for template in registry.updates:
        print(f"{template.name:<28} {template.sql}", file=out)
    return 0


def _cmd_ipm(args, out) -> int:
    registry = get_application(args.app).registry
    characterization = characterize_application(
        registry, use_integrity_constraints=not args.no_constraints
    )
    print(format_ipm_table(characterization), file=out)
    return 0


def _cmd_analyze(args, out) -> int:
    registry = get_application(args.app).registry
    characterization = characterize_application(
        registry, use_integrity_constraints=not args.no_constraints
    )
    summary = summarize_characterization(args.app, characterization)
    print(format_summary_table([summary]), file=out)
    result = design_exposure_policy(registry)
    print(
        f"\nquery results encryptable at zero scalability cost: "
        f"{result.encrypted_result_count()} of {len(registry.queries)}",
        file=out,
    )
    return 0


def _cmd_methodology(args, out) -> int:
    registry = get_application(args.app).registry
    result = design_exposure_policy(registry)
    print(f"# {args.app}: exposure levels (initial -> final)", file=out)
    for name, (initial, final) in sorted(
        result.exposure_reduction_summary().items()
    ):
        marker = "   [reduced]" if initial != final else ""
        print(f"{name:<28} {initial:>8} -> {final}{marker}", file=out)
    print(
        f"\nresidual (Step 3) queries: {', '.join(result.residual_queries)}",
        file=out,
    )
    return 0


def _deploy(app_name: str, strategy: StrategyClass, scale: float, seed: int = 1):
    spec = get_application(app_name)
    instance = spec.instantiate(scale=scale, seed=seed)
    policy = ExposurePolicy.uniform(spec.registry, strategy.exposure_level)
    home = HomeServer(
        app_name, instance.database, spec.registry, policy, Keyring(app_name)
    )
    node = DsspNode()
    node.register_application(home)
    return node, home, instance.sampler


def _cmd_scalability(args, out) -> int:
    params = SimulationParams()
    print(
        f"{'strategy':<8} {'hit rate':>9} {'inval/upd':>10} {'max users':>10}",
        file=out,
    )
    rows: list[tuple[StrategyClass, object, int]] = []
    if args.nodes > 1:
        for strategy in StrategyClass:
            behavior = _cluster_behavior(args, strategy)
            users = find_scalability(params, behavior=behavior)
            rows.append((strategy, behavior, users))
    else:
        # Single-node strategies are independent cells: sweep them across
        # worker processes when the host has the CPUs for it.
        from repro.simulation.sweep import SweepTask, run_sweep

        tasks = [
            SweepTask(
                app_name=args.app,
                strategy=strategy,
                pages=args.pages,
                scale=args.scale,
                tag=strategy,
            )
            for strategy in StrategyClass
        ]
        for cell in run_sweep(tasks, params=params, workers=args.workers):
            rows.append((cell.tag, cell.behavior, cell.users))
    for strategy, behavior, users in rows:
        print(
            f"{strategy.name:<8} {behavior.hit_rate:>9.3f} "
            f"{behavior.invalidations_per_update:>10.2f} {users:>10}",
            file=out,
        )
    return 0


def _cluster_behavior(args, strategy: StrategyClass):
    from repro.dssp.cluster import DsspCluster, measure_cluster_behavior

    spec = get_application(args.app)
    instance = spec.instantiate(scale=args.scale, seed=1)
    policy = ExposurePolicy.uniform(spec.registry, strategy.exposure_level)
    home = HomeServer(
        args.app, instance.database, spec.registry, policy, Keyring(args.app)
    )
    cluster = DsspCluster(nodes=args.nodes)
    cluster.register_application(home)
    return measure_cluster_behavior(
        cluster, home, instance.sampler, pages=args.pages, seed=5
    )


def _cmd_simulate(args, out) -> int:
    strategy = StrategyClass[args.strategy]
    node, home, sampler = _deploy(args.app, strategy, args.scale, args.seed)
    params = SimulationParams(duration_s=args.duration)
    report = simulate_users(
        node, home, sampler, args.users, params, seed=args.seed
    )
    print(
        f"app={args.app} strategy={strategy.name} users={args.users} "
        f"duration={args.duration:.0f}s",
        file=out,
    )
    print(
        f"pages={report.pages_completed} p90={report.p90:.3f}s "
        f"mean={report.latency.mean:.3f}s hit_rate={report.dssp.hit_rate:.3f}",
        file=out,
    )
    print(
        f"home_utilization={report.home_utilization:.2f} "
        f"dssp_utilization={report.dssp_utilization:.2f} "
        f"sla_met={report.meets_sla(params)}",
        file=out,
    )
    return 0


def _cmd_diagnose(args, out) -> int:
    from repro.analysis.diagnostics import check_runtime_assumptions

    spec = get_application(args.app)
    instance = spec.instantiate(scale=args.scale, seed=args.seed)
    report = check_runtime_assumptions(
        instance.database, instance.sampler, pages=args.pages, seed=args.seed
    )
    print(report.summary(), file=out)
    if report.ineffective_update_examples:
        print("ineffective update examples:", file=out)
        for name, params in report.ineffective_update_examples[:10]:
            print(f"  {name}{params}", file=out)
    if report.empty_result_examples:
        print("empty result examples:", file=out)
        for name, params in report.empty_result_examples[:10]:
            print(f"  {name}{params}", file=out)
    return 0


def _cmd_export(args, out) -> int:
    from repro.export import (
        characterization_to_csv,
        exposure_policy_to_csv,
        methodology_to_csv,
    )

    registry = get_application(args.app).registry
    if args.what == "characterization":
        print(
            characterization_to_csv(characterize_application(registry)),
            file=out,
            end="",
        )
    elif args.what == "methodology":
        print(
            methodology_to_csv(design_exposure_policy(registry)),
            file=out,
            end="",
        )
    else:
        print(
            exposure_policy_to_csv(design_exposure_policy(registry).final),
            file=out,
            end="",
        )
    return 0


# -- networked service layer ---------------------------------------------------------


def _demo_keyring(app: str, master: str):
    """Deterministic keyring both endpoints of a demo can derive."""
    from repro.crypto import Keyring

    digest = hashlib.sha256(f"{master}:{app}".encode()).digest()
    return Keyring(app, digest)


def _parse_address(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"bad address {text!r}: expected HOST:PORT")
    return host, int(port)


def _parse_shards(text: str | None) -> tuple[str, ...] | None:
    if text is None:
        return None
    shards = tuple(part.strip() for part in text.split(",") if part.strip())
    if not shards:
        raise SystemExit(f"bad shard list {text!r}: expected ID,ID,...")
    return shards


def _node_tracer(node_id: str, args):
    """SpanRecorder for a traced process, or None when --span-log is unset."""
    if getattr(args, "span_log", None) is None:
        return None
    from repro.obs import SpanRecorder, SpanSink

    return SpanRecorder(
        node_id, SpanSink(args.span_log), sample_rate=args.trace_sample
    )


def _serve(server, banner: str, out) -> int:
    """Run a wire server until SIGINT/SIGTERM; returns an exit code."""
    import asyncio
    import signal

    async def run() -> None:
        host, port = await server.start()
        print(banner.format(host=host, port=port), file=out, flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # non-Unix event loops
                pass
        try:
            await stop.wait()
        finally:
            await server.stop()
        print("clean shutdown", file=out, flush=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("clean shutdown", file=out, flush=True)
    return 0


def _cmd_serve_home(args, out) -> int:
    from repro.net.home_server import HomeNetServer
    from repro.storage.backends import wrap_database

    strategy = StrategyClass[args.strategy]
    spec = get_application(args.app)
    instance = spec.instantiate(scale=args.scale, seed=args.seed)
    policy = ExposurePolicy.uniform(spec.registry, strategy.exposure_level)
    # The backend seam: memory serves the generated instance directly;
    # sqlite copies it into a durable store — unless --db-path already
    # holds data, in which case the file's contents win (restart).
    if args.backend == "memory":
        database = instance.database
    else:
        database = wrap_database(
            args.backend, instance.database, path=args.db_path
        )
    home = HomeServer(
        args.app,
        database,
        spec.registry,
        policy,
        _demo_keyring(args.app, args.master),
    )
    server = HomeNetServer(
        home,
        args.host,
        args.port,
        max_in_flight=args.max_in_flight,
        request_timeout_s=args.timeout,
        tracer=_node_tracer("home", args),
    )
    return _serve(
        server,
        f"home[{args.app}] strategy={strategy.name} "
        "listening on {host}:{port}",
        out,
    )


def _cmd_serve_dssp(args, out) -> int:
    from repro.dssp.ring import DEFAULT_VNODES
    from repro.net.dssp_server import DsspNetServer

    registry = get_application(args.app).registry
    node = DsspNode(
        cache_capacity=args.capacity,
        use_integrity_constraints=not args.no_constraints,
        predicate_index=args.predicate_index,
    )
    shards = _parse_shards(args.shards)
    server = DsspNetServer(
        node,
        args.host,
        args.port,
        node_id=args.node_id,
        max_in_flight=args.max_in_flight,
        request_timeout_s=args.timeout,
        shards=shards,
        vnodes=args.vnodes or DEFAULT_VNODES,
        tracer=_node_tracer(args.node_id, args),
    )
    server.register_application(args.app, registry, _parse_address(args.home))
    role = f"shard {args.node_id}/{len(shards)}" if shards else args.node_id
    return _serve(
        server,
        f"dssp[{role}] app={args.app} home={args.home} "
        "listening on {host}:{port}",
        out,
    )


def _parse_sweep(text: str) -> list[float]:
    try:
        rates = [float(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"bad sweep {text!r}: expected R1,R2,...")
    if not rates or rates != sorted(rates):
        raise SystemExit(f"sweep rates must ascend, got {text!r}")
    return rates


def _cmd_loadgen_scenario(args, out) -> int:
    """In-process scenario run or knee sweep (``--scenario``)."""
    import asyncio
    import pathlib

    from repro.net.scenarios import (
        deploy_scenario,
        run_scenario,
        sweep_scenario,
    )

    duration = args.duration or 2.0
    arrival_seed = (
        args.seed if args.arrival_seed is None else args.arrival_seed
    )
    rates = _parse_sweep(args.sweep) if args.sweep else None

    async def run():
        deployment = await deploy_scenario(
            args.scenario,
            heavy_app=args.app,
            scale=args.scale,
            seed=args.seed,
            trace_pages=args.trace_pages,
            service_latency_s=args.service_latency,
        )
        try:
            if rates is not None:
                return await sweep_scenario(
                    deployment,
                    rates=rates,
                    duration_s=duration,
                    deadline_s=args.deadline,
                    seed=arrival_seed,
                    max_outstanding=args.max_outstanding,
                )
            report = await run_scenario(
                deployment,
                rate=args.rate,
                duration_s=duration,
                seed=arrival_seed,
                max_outstanding=args.max_outstanding,
            )
            return report
        finally:
            await deployment.stop()

    result = asyncio.run(run())
    if rates is not None:
        print(
            f"scenario={args.scenario} app={args.app} "
            f"deadline={args.deadline * 1000:.0f}ms "
            f"duration={result['duration_s']:.1f}s/point",
            file=out,
        )
        print(
            f"{'offered/s':>10} {'achieved/s':>11} {'drop':>6} "
            f"{'p50 ms':>8} {'p90 ms':>8} {'p99 ms':>8} {'errors':>7}",
            file=out,
        )
        for point in result["points"]:
            print(
                f"{point['offered_rate_s']:>10.1f} "
                f"{point['achieved_rate_s']:>11.1f} "
                f"{point['drop_rate']:>6.1%} "
                f"{point['p50_s'] * 1000:>8.1f} "
                f"{point['p90_s'] * 1000:>8.1f} "
                f"{point['p99_s'] * 1000:>8.1f} "
                f"{point['errors']:>7}",
                file=out,
            )
        knee = result["knee_rate_s"]
        print(
            "knee: "
            + (
                f"{knee:.1f} pages/s offered with p99 under the deadline"
                if knee is not None
                else "not reached (first point already over the deadline)"
            ),
            file=out,
        )
    else:
        report = result
        print(
            f"scenario={args.scenario} app={args.app} "
            f"rate={args.rate:.1f}/s seed={arrival_seed}",
            file=out,
        )
        print(report.summary(), file=out)
        print(f"arrival digest: {report.arrival['digest']}", file=out)
        if report.per_app:
            for app, books in sorted(report.per_app.items()):
                print(
                    f"  app[{app}] offered={books['offered']} "
                    f"pages={books['pages']} dropped={books['dropped']} "
                    f"errors={books['errors']}",
                    file=out,
                )
        result = report.to_dict()
    if args.report is not None:
        pathlib.Path(args.report).write_text(
            json.dumps(result, indent=2, default=str)
        )
        print(f"report written to {args.report}", file=out)
    return 0


def _cmd_loadgen(args, out) -> int:
    import asyncio
    import pathlib

    from repro.crypto.envelope import EnvelopeCodec
    from repro.net.client import WireClient
    from repro.net.loadgen import TenantWorkload, run_load, run_open_load
    from repro.simulation import SimulationParams
    from repro.simulation.scalability import predict_p90
    from repro.workloads.trace import Trace, record_trace

    if args.scenario is not None:
        return _cmd_loadgen_scenario(args, out)
    if not args.dssp:
        raise SystemExit("loadgen needs --dssp HOST:PORT (or --scenario)")
    if args.pages is None and args.duration is None:
        args.duration = 5.0
    strategy = StrategyClass[args.strategy]
    spec = get_application(args.app)
    policy = ExposurePolicy.uniform(spec.registry, strategy.exposure_level)
    codec = EnvelopeCodec(_demo_keyring(args.app, args.master))

    trace_path = pathlib.Path(args.trace) if args.trace else None
    if trace_path is not None and trace_path.exists():
        trace = Trace.from_json(trace_path.read_text())
        print(f"replaying {len(trace)}-page trace {trace_path}", file=out)
    else:
        sampler = spec.instantiate(scale=args.scale, seed=args.seed).sampler
        trace = record_trace(
            sampler, args.trace_pages, seed=args.seed, application=args.app
        )
        if trace_path is not None:
            trace_path.write_text(trace.to_json())
            print(f"recorded {len(trace)}-page trace to {trace_path}", file=out)
    trace.bind(spec.registry)

    chaos_log = None
    chaos_plan = None
    if args.chaos_seed is not None:
        from repro.net.chaos import ChaosLog, FaultPlan

        chaos_plan = FaultPlan.uniform(args.chaos_seed, args.fault_rate)
        chaos_log = ChaosLog()

    shard_ids = _parse_shards(args.shards)
    if shard_ids is not None and len(shard_ids) != len(args.dssp):
        raise SystemExit(
            f"--shards names {len(shard_ids)} shards but --dssp gives "
            f"{len(args.dssp)} addresses; they must pair up in order"
        )

    tracer = _node_tracer("client", args)

    async def run():
        endpoints = []
        proxies = []
        on_page = None
        if chaos_plan is None:
            endpoints = [
                WireClient(
                    *_parse_address(address),
                    pipeline=args.pipeline,
                    tracer=tracer,
                )
                for address in args.dssp
            ]
        else:
            from repro.net.chaos import ChaosProxy

            for address in args.dssp:
                proxy = ChaosProxy(
                    _parse_address(address),
                    chaos_plan,
                    f"client->{address}",
                    chaos_log,
                )
                host, port = await proxy.start()
                proxies.append(proxy)
                endpoints.append(
                    WireClient(
                        host, port, pipeline=args.pipeline, tracer=tracer
                    )
                )
            if args.kill_every:

                async def on_page(completed, _proxies=proxies):
                    if completed % args.kill_every == 0:
                        for proxy in _proxies:
                            await proxy.kill_connections()

        drivers = endpoints
        if shard_ids is not None:
            from repro.dssp.ring import DEFAULT_VNODES
            from repro.net.router import ShardRouter

            # One router fronts the whole cluster: every client lane
            # routes by placement key instead of pinning to one node.
            drivers = [
                ShardRouter(
                    dict(zip(shard_ids, endpoints)),
                    vnodes=args.vnodes or DEFAULT_VNODES,
                )
            ]
        try:
            if args.arrival is not None:
                from repro.net.scenarios import hot_query_page
                from repro.net.traffic import make_arrivals

                arrival_seed = (
                    args.seed
                    if args.arrival_seed is None
                    else args.arrival_seed
                )
                schedule = make_arrivals(
                    args.arrival, args.rate, arrival_seed
                ).schedule(args.duration or 5.0)
                hot_page = None
                if args.arrival == "flash_crowd":
                    hot_page = hot_query_page(trace, spec.registry)
                tenant = TenantWorkload(
                    app=args.app,
                    codec=codec,
                    policy=policy,
                    trace=trace,
                    hot_page=hot_page,
                )
                return await run_open_load(
                    drivers,
                    [tenant],
                    schedule,
                    max_outstanding=args.max_outstanding,
                    on_page=on_page,
                )
            return await run_load(
                drivers,
                codec,
                policy,
                trace,
                clients=args.clients,
                pages=args.pages,
                duration_s=args.duration,
                pipeline=args.pipeline or 1,
                on_page=on_page,
            )
        finally:
            for endpoint in endpoints:
                await endpoint.aclose()
            for proxy in proxies:
                await proxy.stop()

    async def fetch_stats():
        snapshots = []
        for address in args.dssp:
            client = WireClient(*_parse_address(address))
            try:
                snapshots.append(await client.stats())
            finally:
                await client.aclose()
        return snapshots

    def sum_invalidations(snapshots) -> int:
        return sum(
            int(
                snapshot.get("dssp", {}).get("stats", {}).get(
                    "invalidations", 0
                )
            )
            for snapshot in snapshots
        )

    # The nodes' counters are cumulative, so the run's own invalidation
    # count is the delta between a pre-run baseline and the post-run
    # snapshot; both fetches are best-effort reporting.
    baseline_invalidations = None
    if not args.no_server_stats:
        try:
            baseline_invalidations = sum_invalidations(
                asyncio.run(fetch_stats())
            )
        except Exception as error:
            print(f"server stats baseline unavailable: {error}", file=out)

    report = asyncio.run(run())
    if tracer is not None:
        from repro.obs.assemble import phase_aggregates

        tracer.close()
        report = report.with_phases(
            phase_aggregates(list(tracer.sink.spans))
        )
        print(
            f"span log: {args.span_log} ({len(tracer.sink)} spans)", file=out
        )
    print(
        f"app={args.app} strategy={strategy.name} clients={args.clients} "
        f"pipeline={args.pipeline or 1} "
        f"nodes={len(args.dssp)} duration={report.duration_s:.2f}s",
        file=out,
    )
    print(report.summary(), file=out)
    # Server-side view of the same run: the nodes' own counters should
    # corroborate what the client loops observed.
    server_snapshots = []
    if not args.no_server_stats:
        try:
            server_snapshots = asyncio.run(fetch_stats())
        except Exception as error:  # stats are best-effort reporting
            print(f"server stats unavailable: {error}", file=out)
        if server_snapshots and baseline_invalidations is not None:
            delta = (
                sum_invalidations(server_snapshots) - baseline_invalidations
            )
            if delta >= 0:
                report = report.with_invalidations(delta)
    predicted = None
    profilable = report.pages and (
        not report.updates or report.invalidations is not None
    )
    if profilable:
        behavior = report.behavior()
        predicted = predict_p90(args.clients, SimulationParams(), behavior)
        print(
            f"analytic cross-check: predict_p90({args.clients} users) = "
            f"{predicted:.3f}s with invalidations_per_update="
            f"{behavior.invalidations_per_update:.2f} "
            f"(model WAN/SLA units, not localhost time)",
            file=out,
        )
    elif report.pages:
        print(
            "analytic cross-check skipped: updates ran but server-side "
            "invalidations were not measured",
            file=out,
        )
    if not args.no_server_stats:
        for snapshot in server_snapshots:
            dssp = snapshot.get("dssp", {}).get("stats", {})
            print(
                f"server[{snapshot.get('node_id', '?')}] "
                f"hits={dssp.get('hits', 0)} "
                f"misses={dssp.get('misses', 0)} "
                f"hit_rate={dssp.get('hit_rate', 0.0):.3f} "
                f"invalidations={dssp.get('invalidations', 0)}",
                file=out,
            )
    if chaos_log is not None:
        print(f"chaos faults: {chaos_log.counts() or 'none'}", file=out)
    if args.report is not None:
        combined = {
            "client": report.to_dict(),
            "servers": server_snapshots,
            "predict_p90_s": predicted,
        }
        if chaos_log is not None:
            combined["chaos"] = json.loads(chaos_log.to_json())
        pathlib.Path(args.report).write_text(
            json.dumps(combined, indent=2, default=str)
        )
        print(f"report written to {args.report}", file=out)
    return 0


def _cmd_chaos(args, out) -> int:
    import asyncio
    import pathlib

    from repro.net.chaos import FaultPlan
    from repro.net.oracle import run_chaos
    from repro.workloads.trace import record_trace

    strategy = StrategyClass[args.strategy]
    spec = get_application(args.app)
    instance = spec.instantiate(scale=args.scale, seed=args.seed)
    policy = ExposurePolicy.uniform(spec.registry, strategy.exposure_level)
    trace = record_trace(
        instance.sampler, args.pages, seed=args.seed, application=args.app
    )
    if args.scenario == "flash_crowd":
        from repro.net.scenarios import flash_crowd_trace

        # Same seeded reshaping the open-loop scenario uses: mid-run
        # pages pile onto the hottest query, and the oracle's reference
        # replay sees the identical stream.
        trace = flash_crowd_trace(trace, spec.registry, seed=args.seed)
    if args.kill_target == "home":
        targets: tuple[str, ...] = ("home",)
    elif args.kill_target == "dssp":
        targets = tuple(f"dssp-{i}" for i in range(args.nodes))
    else:
        targets = ("home",) + tuple(f"dssp-{i}" for i in range(args.nodes))
    plan = FaultPlan.uniform(
        args.chaos_seed,
        args.fault_rate,
        kill_every=args.kill_every,
        kill_targets=targets if args.kill_every else (),
    )
    from repro.dssp.ring import DEFAULT_VNODES

    report, log = asyncio.run(
        run_chaos(
            args.app,
            spec.registry,
            instance.database,
            policy,
            trace,
            plan,
            nodes=args.nodes,
            clients=args.clients,
            pipeline=args.pipeline,
            shards=args.shards,
            vnodes=args.vnodes or DEFAULT_VNODES,
            backend=args.backend,
            db_path=args.db_path,
            trace_dir=args.span_log,
            trace_sample=args.trace_sample,
            predicate_index=args.predicate_index,
        )
    )
    print(
        f"app={args.app} strategy={strategy.name} nodes={args.nodes} "
        f"sharded={args.shards} predicate_index={args.predicate_index} "
        f"clients={args.clients} pipeline={args.pipeline or 1} "
        f"fault_rate={args.fault_rate} kill_every={args.kill_every}"
        + (f" scenario={args.scenario}" if args.scenario else ""),
        file=out,
    )
    print(report.summary(), file=out)
    print(f"fault counts: {log.counts() or 'none'}", file=out)
    for violation in report.violations:
        print(f"VIOLATION: {violation.to_dict()}", file=out)
    phases = None
    if args.span_log is not None:
        from repro.obs.assemble import load_spans, phase_aggregates

        span_logs = sorted(pathlib.Path(args.span_log).glob("*.spans.jsonl"))
        phases = phase_aggregates(load_spans(span_logs))
        print(
            f"span logs: {len(span_logs)} files in {args.span_log}", file=out
        )
    if args.report is not None:
        path = pathlib.Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        combined = {
            "oracle": report.to_dict(),
            "fault_log": json.loads(log.to_json()),
        }
        if phases is not None:
            combined["phases"] = phases
        path.write_text(json.dumps(combined, indent=2, default=str))
        print(f"report written to {args.report}", file=out)
    return 0 if report.ok else 1


def _cmd_stats(args, out) -> int:
    import asyncio

    from repro.net.client import WireClient

    async def fetch_all():
        snapshots = []
        for address in args.addresses:
            client = WireClient(
                *_parse_address(address), request_timeout_s=args.timeout
            )
            try:
                snapshots.append(await client.stats())
            finally:
                await client.aclose()
        return snapshots

    snapshots = asyncio.run(fetch_all())
    if args.prom:
        from repro.obs import render_prometheus_fleet

        parts = [
            (
                snapshot.get("metrics", {}),
                {"node": str(snapshot.get("node_id", "unknown"))},
            )
            for snapshot in snapshots
        ]
        print(render_prometheus_fleet(parts), file=out, end="")
        return 0
    if len(snapshots) == 1:
        print(json.dumps(snapshots[0], indent=2, sort_keys=True), file=out)
        return 0
    from repro.obs import merge_snapshots

    combined = {
        "nodes": snapshots,
        "fleet": merge_snapshots(
            *(snapshot.get("metrics", {}) for snapshot in snapshots)
        ),
    }
    print(json.dumps(combined, indent=2, sort_keys=True), file=out)
    return 0


def _print_trace_tree(tree, out) -> None:
    print(
        f"trace {tree.trace_id}: {tree.duration_s * 1000:.2f}ms, "
        f"{len(tree.spans)} spans on {len(tree.node_ids)} nodes",
        file=out,
    )

    def walk(node, depth):
        span = node.span
        line = (
            f"{'  ' * depth}{span.name} [{span.node}] "
            f"{span.duration_s * 1000:.2f}ms"
        )
        if span.status != "ok":
            line += f" status={span.status}"
        if span.attrs:
            details = " ".join(
                f"{key}={value}" for key, value in sorted(span.attrs.items())
            )
            line += f" {details}"
        print(line, file=out)
        for child in node.children:
            walk(child, depth + 1)

    for root in sorted(tree.roots, key=lambda node: node.span.start_s):
        walk(root, 0)


def _cmd_trace(args, out) -> int:
    from repro.obs.assemble import (
        assemble,
        critical_path,
        load_spans,
        summarize,
    )

    trees = assemble(load_spans(args.logs))
    if args.trace is not None:
        tree = trees.get(args.trace)
        if tree is None:
            print(f"trace {args.trace!r} not found in span logs", file=out)
            return 1
        path = critical_path(tree)
        if args.json:
            report = {
                "trace": tree.trace_id,
                "duration_s": tree.duration_s,
                "complete_update": tree.is_complete_update(),
                "spans": [span.to_dict() for span in tree.spans],
                "critical_path": path,
            }
            print(json.dumps(report, indent=2), file=out)
            return 0
        _print_trace_tree(tree, out)
        print(
            f"\ncritical path (covers {path['covered_s'] * 1000:.2f}ms of "
            f"{path['total_s'] * 1000:.2f}ms):",
            file=out,
        )
        for entry in path["entries"]:
            print(
                f"  {entry['name']:<22} {entry['node']:<10} "
                f"{entry['self_s'] * 1000:>9.3f}ms "
                f"{entry['share'] * 100:>5.1f}%",
                file=out,
            )
        return 0
    summary = summarize(trees, slowest=args.slowest)
    if args.json:
        print(json.dumps(summary, indent=2), file=out)
        return 0
    print(
        f"traces={summary['traces']} spans={summary['spans']} "
        f"nodes={','.join(summary['nodes']) or 'none'} "
        f"complete_update_traces={summary['complete_update_traces']}",
        file=out,
    )
    print(
        f"\n{'phase':<22} {'count':>6} {'mean ms':>9} {'p50 ms':>9} "
        f"{'p90 ms':>9} {'p99 ms':>9} {'max ms':>9}",
        file=out,
    )
    for name, aggregate in summary["phases"].items():
        print(
            f"{name:<22} {aggregate['count']:>6} "
            f"{aggregate['mean_s'] * 1000:>9.3f} "
            f"{aggregate['p50_s'] * 1000:>9.3f} "
            f"{aggregate['p90_s'] * 1000:>9.3f} "
            f"{aggregate['p99_s'] * 1000:>9.3f} "
            f"{aggregate['max_s'] * 1000:>9.3f}",
            file=out,
        )
    if summary["slowest"]:
        print("\nslowest traces (self-time critical path):", file=out)
    for entry in summary["slowest"]:
        print(
            f"  {entry['trace']} {entry['duration_s'] * 1000:>8.2f}ms "
            f"root={entry['root']} spans={entry['spans']}",
            file=out,
        )
        for step in entry["critical_path"]:
            print(
                f"      {step['name']:<22} {step['node']:<10} "
                f"{step['self_s'] * 1000:>8.3f}ms "
                f"({step['share'] * 100:.0f}%)",
                file=out,
            )
    return 0


_COMMANDS = {
    "apps": _cmd_apps,
    "templates": _cmd_templates,
    "ipm": _cmd_ipm,
    "analyze": _cmd_analyze,
    "methodology": _cmd_methodology,
    "scalability": _cmd_scalability,
    "simulate": _cmd_simulate,
    "diagnose": _cmd_diagnose,
    "export": _cmd_export,
    "serve-home": _cmd_serve_home,
    "serve-dssp": _cmd_serve_dssp,
    "loadgen": _cmd_loadgen,
    "chaos": _cmd_chaos,
    "stats": _cmd_stats,
    "trace": _cmd_trace,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    from repro.obs import configure_logging

    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    configure_logging(level=args.log_level, json_mode=args.log_json)
    return _COMMANDS[args.command](args, out)
