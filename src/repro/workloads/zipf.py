"""Zipf-distributed popularity sampling.

The paper modifies TPC-W's uniform book popularity to a Zipf distribution,
citing Brynjolfsson et al.'s measurement of amazon.com sales:
``log Q = 10.526 - 0.871 log R`` (Q copies sold at sales rank R), i.e. a
power law with exponent ≈ 0.871.  :class:`ZipfSampler` draws ranks from
that law over a finite catalogue.
"""

from __future__ import annotations

import bisect
import itertools
import random

from repro.errors import WorkloadError

__all__ = ["ZipfSampler", "BRYNJOLFSSON_EXPONENT"]

#: Slope of the Amazon book-sales power law measured by Brynjolfsson et al.
BRYNJOLFSSON_EXPONENT = 0.871


class ZipfSampler:
    """Samples ranks 1..n with P(rank r) ∝ 1 / r**exponent.

    Precomputes the CDF once; each draw is a binary search.
    """

    def __init__(self, n: int, exponent: float = BRYNJOLFSSON_EXPONENT) -> None:
        if n < 1:
            raise WorkloadError("Zipf support must be at least 1")
        if exponent < 0:
            raise WorkloadError("Zipf exponent must be non-negative")
        self.n = n
        self.exponent = exponent
        weights = [1.0 / (rank**exponent) for rank in range(1, n + 1)]
        self._cdf = list(itertools.accumulate(weights))
        self._total = self._cdf[-1]

    def sample_rank(self, rng: random.Random) -> int:
        """Draw a rank in 1..n (1 = most popular)."""
        point = rng.random() * self._total
        return bisect.bisect_left(self._cdf, point) + 1

    def probability(self, rank: int) -> float:
        """Exact probability mass of a rank."""
        if not 1 <= rank <= self.n:
            raise WorkloadError(f"rank {rank} outside 1..{self.n}")
        return (1.0 / rank**self.exponent) / self._total
