"""Common workload interfaces.

An :class:`AppSpec` is the static description of a benchmark application:
schema, template registry, and a recipe for synthetic data + page mix.
``instantiate`` produces an :class:`AppInstance`: a populated master
database plus a :class:`PageSampler` that emits page requests — sequences
of :class:`Operation` (bound queries/updates) — mimicking the benchmark's
interaction mix.

Samplers are stateful: they track live primary keys so deletes/inserts stay
constraint-consistent, exactly as a real client population would.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.storage.database import Database
from repro.templates.registry import TemplateRegistry
from repro.templates.template import BoundQuery, BoundUpdate

__all__ = ["AppInstance", "AppSpec", "Operation", "PageClass", "PageSampler"]


@dataclass(frozen=True)
class Operation:
    """One database operation inside a page request."""

    bound: BoundQuery | BoundUpdate

    @property
    def is_update(self) -> bool:
        """True for updates, False for queries."""
        return isinstance(self.bound, BoundUpdate)

    @classmethod
    def query(cls, bound: BoundQuery) -> "Operation":
        """Wrap a bound query."""
        return cls(bound=bound)

    @classmethod
    def update(cls, bound: BoundUpdate) -> "Operation":
        """Wrap a bound update."""
        return cls(bound=bound)


@dataclass(frozen=True)
class PageClass:
    """One interaction class of the benchmark's page mix.

    ``build(sampler, rng)`` returns the page's operations; ``weight`` is
    its relative frequency in the mix.
    """

    name: str
    weight: float
    build: Callable[["PageSampler", random.Random], list[Operation]]


class PageSampler:
    """Draws page requests according to a weighted page mix.

    Subclasses (one per application) add id-pool state and helper methods;
    the page-class builders call back into those helpers.
    """

    def __init__(self, registry: TemplateRegistry, pages: Sequence[PageClass]):
        if not pages:
            raise WorkloadError("page mix cannot be empty")
        self.registry = registry
        self._pages = list(pages)
        self._weights = [p.weight for p in pages]

    def sample_page(self, rng: random.Random) -> list[Operation]:
        """Draw one page request (a list of operations)."""
        page = rng.choices(self._pages, weights=self._weights, k=1)[0]
        return page.build(self, rng)

    def page_names(self) -> list[str]:
        """Names of the interaction classes in the mix."""
        return [p.name for p in self._pages]

    # -- binding helpers ------------------------------------------------------

    def query(self, name: str, *params) -> Operation:
        """Bind a query template into an operation."""
        return Operation.query(self.registry.query(name).bind(list(params)))

    def update(self, name: str, *params) -> Operation:
        """Bind an update template into an operation."""
        return Operation.update(self.registry.update(name).bind(list(params)))


@dataclass
class AppInstance:
    """A populated application ready to deploy behind a DSSP."""

    spec: "AppSpec"
    database: Database
    sampler: PageSampler


@dataclass(frozen=True)
class AppSpec:
    """Static description of one benchmark application."""

    name: str
    registry: TemplateRegistry
    #: (registry, database, scale, rng) -> PageSampler; also loads the data.
    _factory: Callable[[TemplateRegistry, Database, float, random.Random], PageSampler] = field(
        repr=False
    )

    def instantiate(self, scale: float = 1.0, seed: int = 0) -> AppInstance:
        """Generate synthetic data at ``scale`` and build the page sampler.

        ``scale=1.0`` targets a few hundred rows per major relation —
        small enough for fast simulation, large enough for meaningful
        selectivities.  Scale multiplies row counts.
        """
        if scale <= 0:
            raise WorkloadError("scale must be positive")
        database = Database(self.registry.schema)
        rng = random.Random(seed)
        sampler = self._factory(self.registry, database, scale, rng)
        return AppInstance(spec=self, database=database, sampler=sampler)
