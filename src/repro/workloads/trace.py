"""Workload traces: record a sampled page stream, replay it bit-for-bit.

Comparing two DSSP configurations is only fair if both see *exactly* the
same operation stream.  Seeded samplers already guarantee that, but a
recorded trace makes the guarantee explicit, portable (JSON on disk), and
independent of sampler implementation changes.

A trace stores pages as lists of ``(kind, template, params)`` triples; on
replay it binds them against a registry, so a trace can be replayed against
any deployment of the same application.
"""

from __future__ import annotations

import json
import random
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.templates.registry import TemplateRegistry
from repro.workloads.base import Operation

__all__ = ["Trace", "record_trace"]

_FORMAT_VERSION = 1


@dataclass
class Trace:
    """A recorded sequence of page requests.

    Replays cyclically if asked for more pages than recorded (``sample_page``
    keeps a cursor), so a short trace can still drive a long measurement —
    with a warning-free, fully deterministic stream.
    """

    application: str
    pages: list[list[tuple[str, str, list]]]
    _registry: TemplateRegistry | None = field(default=None, repr=False)
    _cursor: int = field(default=0, repr=False)

    def __len__(self) -> int:
        return len(self.pages)

    # -- replay ----------------------------------------------------------------

    def bind(self, registry: TemplateRegistry) -> "Trace":
        """Attach a registry so the trace can act as a page sampler."""
        self._registry = registry
        self._cursor = 0
        return self

    def sample_page(self, rng: random.Random | None = None) -> list[Operation]:
        """Next recorded page as bound operations (PageSampler protocol).

        The ``rng`` argument is accepted for interface compatibility and
        ignored — a trace is deterministic by definition.
        """
        if self._registry is None:
            raise WorkloadError("bind(registry) before replaying a trace")
        if not self.pages:
            raise WorkloadError("empty trace")
        page = self.pages[self._cursor % len(self.pages)]
        self._cursor += 1
        operations = []
        for kind, template_name, params in page:
            if kind == "query":
                bound = self._registry.query(template_name).bind(params)
                operations.append(Operation.query(bound))
            else:
                bound = self._registry.update(template_name).bind(params)
                operations.append(Operation.update(bound))
        return operations

    def iter_pages(self) -> Iterator[list[tuple[str, str, list]]]:
        """Iterate over the raw recorded pages."""
        return iter(self.pages)

    # -- (de)serialization --------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to a JSON document."""
        return json.dumps(
            {
                "version": _FORMAT_VERSION,
                "application": self.application,
                "pages": self.pages,
            },
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        """Load a trace from :meth:`to_json` output.

        Raises:
            WorkloadError: on wrong version or malformed payload.
        """
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise WorkloadError(f"malformed trace: {error}") from error
        if payload.get("version") != _FORMAT_VERSION:
            raise WorkloadError(
                f"unsupported trace version {payload.get('version')!r}"
            )
        pages = [
            [(kind, name, list(params)) for kind, name, params in page]
            for page in payload["pages"]
        ]
        return cls(application=payload["application"], pages=pages)


def record_trace(
    sampler,
    pages: int,
    seed: int = 0,
    application: str = "",
) -> Trace:
    """Sample ``pages`` pages from a live sampler into a trace.

    The sampler's own stateful id-pools advance exactly as they would in a
    live run, so the recorded stream is constraint-consistent.
    """
    rng = random.Random(seed)
    recorded: list[list[tuple[str, str, list]]] = []
    for _ in range(pages):
        page = []
        for operation in sampler.sample_page(rng):
            kind = "update" if operation.is_update else "query"
            page.append(
                (kind, operation.bound.template.name, list(operation.bound.params))
            )
        recorded.append(page)
    return Trace(application=application, pages=recorded)
