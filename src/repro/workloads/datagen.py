"""Shared synthetic-data helpers for the benchmark generators."""

from __future__ import annotations

import random

__all__ = [
    "person_name",
    "random_date_int",
    "random_text",
    "sequential_ids",
]

_FIRST = (
    "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
    "ivan", "judy", "mallory", "niaj", "olivia", "peggy", "rupert", "sybil",
)
_LAST = (
    "smith", "jones", "lee", "patel", "garcia", "kim", "chen", "muller",
    "rossi", "silva", "sato", "novak", "olsen", "kumar", "ali", "brown",
)
_WORDS = (
    "swift", "quiet", "red", "lucky", "bright", "deep", "grand", "wild",
    "amber", "noble", "rapid", "solid", "vivid", "young", "zesty", "calm",
)


def person_name(rng: random.Random) -> tuple[str, str]:
    """A (first, last) name pair."""
    return rng.choice(_FIRST), rng.choice(_LAST)


def random_text(rng: random.Random, words: int) -> str:
    """A short pseudo-sentence of dictionary words."""
    return " ".join(rng.choice(_WORDS) for _ in range(words))


def random_date_int(rng: random.Random, start: int = 20000101, end: int = 20061231) -> int:
    """A date encoded as an int YYYYMMDD (ordering-compatible)."""
    year = rng.randint(start // 10000, end // 10000)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return year * 10000 + month * 100 + day


def sequential_ids(count: int, start: int = 1) -> list[int]:
    """The ids 1..count (or shifted), as a list."""
    return list(range(start, start + count))
