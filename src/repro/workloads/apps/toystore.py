"""The paper's running toystore examples (Tables 1 and 3).

Small but complete: used by the quickstart example, the Table 2 / Table 4
benchmarks, and as a light workload for exercising the simulator.
"""

from __future__ import annotations

from repro.schema import Column, ColumnType, ForeignKey, Schema, TableSchema
from repro.storage.database import Database
from repro.templates import QueryTemplate, TemplateRegistry, UpdateTemplate
from repro.templates.template import Sensitivity
from repro.workloads.base import AppSpec, PageClass, PageSampler

__all__ = ["simple_toystore_spec", "toystore_spec", "toystore_schema"]


def toystore_schema() -> Schema:
    """Schema shared by both toystore variants (paper Table 3)."""
    return Schema(
        [
            TableSchema(
                "toys",
                (
                    Column("toy_id", ColumnType.INTEGER),
                    Column("toy_name", ColumnType.TEXT),
                    Column("qty", ColumnType.INTEGER),
                ),
                primary_key=("toy_id",),
            ),
            TableSchema(
                "customers",
                (
                    Column("cust_id", ColumnType.INTEGER),
                    Column("cust_name", ColumnType.TEXT),
                ),
                primary_key=("cust_id",),
            ),
            TableSchema(
                "credit_card",
                (
                    Column("cid", ColumnType.INTEGER),
                    Column("number", ColumnType.TEXT),
                    Column("zip_code", ColumnType.TEXT),
                ),
                primary_key=("cid",),
                foreign_keys=(ForeignKey("cid", "customers", "cust_id"),),
            ),
        ]
    )


def _simple_registry(schema: Schema) -> TemplateRegistry:
    return TemplateRegistry(
        schema,
        queries=[
            QueryTemplate.from_sql(
                "Q1", "SELECT toy_id FROM toys WHERE toy_name = ?"
            ),
            QueryTemplate.from_sql("Q2", "SELECT qty FROM toys WHERE toy_id = ?"),
            QueryTemplate.from_sql(
                "Q3", "SELECT cust_name FROM customers WHERE cust_id = ?"
            ),
        ],
        updates=[
            UpdateTemplate.from_sql("U1", "DELETE FROM toys WHERE toy_id = ?"),
        ],
    )


def _elaborate_registry(schema: Schema) -> TemplateRegistry:
    return TemplateRegistry(
        schema,
        queries=[
            QueryTemplate.from_sql(
                "Q1", "SELECT toy_id FROM toys WHERE toy_name = ?"
            ),
            QueryTemplate.from_sql(
                "Q2",
                "SELECT qty FROM toys WHERE toy_id = ?",
                sensitivity=Sensitivity.MODERATE,  # inventory levels
            ),
            QueryTemplate.from_sql(
                "Q3",
                "SELECT cust_name FROM customers, credit_card "
                "WHERE cust_id = cid AND zip_code = ?",
                sensitivity=Sensitivity.MODERATE,  # customer demographics
            ),
        ],
        updates=[
            UpdateTemplate.from_sql("U1", "DELETE FROM toys WHERE toy_id = ?"),
            UpdateTemplate.from_sql(
                "U2",
                "INSERT INTO credit_card (cid, number, zip_code) "
                "VALUES (?, ?, ?)",
                sensitivity=Sensitivity.HIGH,  # credit-card data
            ),
        ],
    )


class _ToystoreSampler(PageSampler):
    """Page mix over the elaborate toystore."""

    def __init__(self, registry, database: Database, scale: float, rng):
        self.toy_count = max(8, int(40 * scale))
        customer_count = max(4, int(20 * scale))
        database.load(
            "toys",
            [
                (i, f"toy{i}", rng.randint(0, 50))
                for i in range(1, self.toy_count + 1)
            ],
        )
        database.load(
            "customers",
            [(i, f"customer{i}") for i in range(1, customer_count + 1)],
        )
        database.load(
            "credit_card",
            [
                (i, f"4111-{i:04d}", f"{15000 + i}")
                for i in range(1, customer_count // 2 + 1)
            ],
        )
        self.customer_count = customer_count
        self._next_card = customer_count // 2 + 1
        self._live_toys = set(range(1, self.toy_count + 1))
        pages = [
            PageClass("browse", 0.70, _browse_page),
            PageClass("checkout", 0.25, _checkout_page),
            PageClass("retire-toy", 0.05, _retire_page),
        ]
        super().__init__(registry, pages)

    def random_toy(self, rng) -> int:
        if not self._live_toys:
            return 1
        return rng.choice(sorted(self._live_toys))

    def retire_toy(self, rng) -> int:
        toy = self.random_toy(rng)
        self._live_toys.discard(toy)
        return toy

    def new_card_holder(self, rng) -> int:
        if self._next_card > self.customer_count:
            return 0  # no more customers without cards
        holder = self._next_card
        self._next_card += 1
        return holder


def _browse_page(sampler: _ToystoreSampler, rng) -> list:
    toy = sampler.random_toy(rng)
    return [
        sampler.query("Q1", f"toy{toy}"),
        sampler.query("Q2", toy),
    ]


def _checkout_page(sampler: _ToystoreSampler, rng) -> list:
    operations = [
        sampler.query("Q3", f"{15000 + rng.randint(1, sampler.customer_count)}"),
    ]
    holder = sampler.new_card_holder(rng)
    if holder:
        operations.append(
            sampler.update(
                "U2", holder, f"4111-{holder:04d}", f"{15000 + holder}"
            )
        )
    return operations


def _retire_page(sampler: _ToystoreSampler, rng) -> list:
    return [sampler.update("U1", sampler.retire_toy(rng))]


def toystore_spec() -> AppSpec:
    """The elaborate toystore application (paper Table 3) as a workload."""
    schema = toystore_schema()
    return AppSpec(
        name="toystore",
        registry=_elaborate_registry(schema),
        _factory=_ToystoreSampler,
    )


class _SimpleSampler(PageSampler):
    """Minimal mix over the simple toystore (paper Table 1)."""

    def __init__(self, registry, database: Database, scale: float, rng):
        toy_count = max(8, int(40 * scale))
        customer_count = max(4, int(20 * scale))
        database.load(
            "toys",
            [(i, f"toy{i}", rng.randint(0, 50)) for i in range(1, toy_count + 1)],
        )
        database.load(
            "customers",
            [(i, f"customer{i}") for i in range(1, customer_count + 1)],
        )
        self.toy_count = toy_count
        self.customer_count = customer_count
        self._live_toys = set(range(1, toy_count + 1))
        pages = [
            PageClass("lookup", 0.9, _simple_lookup),
            PageClass("retire", 0.1, _simple_retire),
        ]
        super().__init__(registry, pages)

    def random_toy(self, rng) -> int:
        if not self._live_toys:
            return 1
        return rng.choice(sorted(self._live_toys))

    def retire_toy(self, rng) -> int:
        toy = self.random_toy(rng)
        self._live_toys.discard(toy)
        return toy


def _simple_lookup(sampler: _SimpleSampler, rng) -> list:
    toy = sampler.random_toy(rng)
    return [
        sampler.query("Q1", f"toy{toy}"),
        sampler.query("Q2", toy),
        sampler.query("Q3", rng.randint(1, sampler.customer_count)),
    ]


def _simple_retire(sampler: _SimpleSampler, rng) -> list:
    return [sampler.update("U1", sampler.retire_toy(rng))]


def simple_toystore_spec() -> AppSpec:
    """The simple-toystore application (paper Table 1) as a workload."""
    schema = toystore_schema()
    return AppSpec(
        name="simple-toystore",
        registry=_simple_registry(schema),
        _factory=_SimpleSampler,
    )
