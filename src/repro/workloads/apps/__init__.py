"""Benchmark application definitions (one module per application)."""

from repro.workloads.apps.auction import auction_spec
from repro.workloads.apps.bboard import bboard_spec
from repro.workloads.apps.bookstore import bookstore_spec
from repro.workloads.apps.toystore import simple_toystore_spec, toystore_spec

__all__ = [
    "auction_spec",
    "bboard_spec",
    "bookstore_spec",
    "simple_toystore_spec",
    "toystore_spec",
]
