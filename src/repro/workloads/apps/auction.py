"""The auction application — a RUBiS-style auction site (eBay model).

Relations, template set and interaction mix modelled on RUBiS: browsing by
category/region, item views with bid history, bidding, selling, and
user-to-user comments.

Sensitivity labels follow the paper's Section 5.4 example for the auction
application: the **historical record of user bids** ("user A bid B dollars
on item C at time D") is moderately sensitive; passwords are highly
sensitive.
"""

from __future__ import annotations

from repro.schema import Column, ColumnType, ForeignKey, Schema, TableSchema
from repro.storage.database import Database
from repro.templates import QueryTemplate, TemplateRegistry, UpdateTemplate
from repro.templates.template import Sensitivity
from repro.workloads import datagen
from repro.workloads.base import AppSpec, PageClass, PageSampler
from repro.workloads.zipf import ZipfSampler

__all__ = ["auction_spec", "auction_schema", "CATEGORY_COUNT", "REGION_COUNT"]

CATEGORY_COUNT = 20
REGION_COUNT = 12

_INT = ColumnType.INTEGER
_TXT = ColumnType.TEXT
_FLT = ColumnType.FLOAT


def auction_schema() -> Schema:
    """RUBiS relations: regions, categories, users, items, bids, comments."""
    return Schema(
        [
            TableSchema(
                "regions",
                (Column("r_id", _INT), Column("r_name", _TXT)),
                primary_key=("r_id",),
            ),
            TableSchema(
                "categories",
                (Column("cat_id", _INT), Column("cat_name", _TXT)),
                primary_key=("cat_id",),
            ),
            TableSchema(
                "users",
                (
                    Column("u_id", _INT),
                    Column("nickname", _TXT),
                    Column("password", _TXT),
                    Column("rating", _INT),
                    Column("balance", _FLT),
                    Column("region", _INT),
                ),
                primary_key=("u_id",),
                foreign_keys=(ForeignKey("region", "regions", "r_id"),),
            ),
            TableSchema(
                "items",
                (
                    Column("item_id", _INT),
                    Column("item_name", _TXT),
                    Column("description", _TXT),
                    Column("initial_price", _FLT),
                    Column("max_bid", _FLT),
                    Column("nb_of_bids", _INT),
                    Column("end_date", _INT),
                    Column("seller", _INT),
                    Column("category", _INT),
                ),
                primary_key=("item_id",),
                foreign_keys=(
                    ForeignKey("seller", "users", "u_id"),
                    ForeignKey("category", "categories", "cat_id"),
                ),
            ),
            TableSchema(
                "bids",
                (
                    Column("bid_id", _INT),
                    Column("bidder", _INT),
                    Column("bid_item", _INT),
                    Column("bid", _FLT),
                    Column("qty", _INT),
                    Column("bid_date", _INT),
                ),
                primary_key=("bid_id",),
                foreign_keys=(
                    ForeignKey("bidder", "users", "u_id"),
                    ForeignKey("bid_item", "items", "item_id"),
                ),
            ),
            TableSchema(
                "comments",
                (
                    Column("comment_id", _INT),
                    Column("from_user", _INT),
                    Column("to_user", _INT),
                    Column("comment_item", _INT),
                    Column("c_rating", _INT),
                    Column("c_text", _TXT),
                ),
                primary_key=("comment_id",),
                foreign_keys=(
                    ForeignKey("from_user", "users", "u_id"),
                    ForeignKey("to_user", "users", "u_id"),
                    ForeignKey("comment_item", "items", "item_id"),
                ),
            ),
        ]
    )


def _query_templates() -> list[QueryTemplate]:
    low, moderate, high = Sensitivity.LOW, Sensitivity.MODERATE, Sensitivity.HIGH
    q = QueryTemplate.from_sql
    return [
        q("getCategories", "SELECT cat_id, cat_name FROM categories", low),
        q("getRegions", "SELECT r_id, r_name FROM regions", low),
        q(
            "getCategoryName",
            "SELECT cat_name FROM categories WHERE cat_id = ?",
            low,
        ),
        q("getRegionName", "SELECT r_name FROM regions WHERE r_id = ?", low),
        q(
            "searchItemsByCategory",
            "SELECT item_id, item_name, initial_price, max_bid, nb_of_bids, "
            "end_date FROM items WHERE category = ? "
            "ORDER BY end_date LIMIT 25",
            low,
        ),
        q(
            "searchItemsByRegion",
            "SELECT item_id, item_name, initial_price FROM items, users "
            "WHERE seller = u_id AND region = ? AND category = ? "
            "ORDER BY item_id LIMIT 25",
            low,
        ),
        q(
            "getItem",
            "SELECT item_name, description, initial_price, max_bid, "
            "nb_of_bids, end_date, seller FROM items WHERE item_id = ?",
            low,
        ),
        q(
            "getUserInfo",
            "SELECT nickname, rating, region FROM users WHERE u_id = ?",
            moderate,
        ),
        q(
            "getAuthUser",
            "SELECT u_id, password FROM users WHERE nickname = ?",
            high,
        ),
        q(
            "getBidHistory",
            "SELECT bidder, bid, bid_date FROM bids WHERE bid_item = ?",
            moderate,  # Sec 5.4: the historical record of user bids
        ),
        q(
            "getItemBids",
            "SELECT nickname, bid FROM bids, users "
            "WHERE bidder = u_id AND bid_item = ?",
            moderate,
        ),
        q(
            "getMaxBid",
            "SELECT MAX(bid) FROM bids WHERE bid_item = ?",
            low,
        ),
        q(
            "getBidCount",
            "SELECT COUNT(*) FROM bids WHERE bid_item = ?",
            low,
        ),
        q(
            "getUserBids",
            "SELECT bid_item, bid, qty FROM bids WHERE bidder = ?",
            moderate,
        ),
        q(
            "getUserComments",
            "SELECT from_user, c_rating, c_text FROM comments WHERE to_user = ?",
            moderate,
        ),
        q(
            "getItemsSoldByUser",
            "SELECT item_id, item_name, end_date FROM items WHERE seller = ?",
            low,
        ),
    ]


def _update_templates() -> list[UpdateTemplate]:
    low, moderate, high = Sensitivity.LOW, Sensitivity.MODERATE, Sensitivity.HIGH
    u = UpdateTemplate.from_sql
    return [
        u(
            "registerUser",
            "INSERT INTO users (u_id, nickname, password, rating, balance, "
            "region) VALUES (?, ?, ?, ?, ?, ?)",
            high,  # carries the password
        ),
        u(
            "registerItem",
            "INSERT INTO items (item_id, item_name, description, "
            "initial_price, max_bid, nb_of_bids, end_date, seller, category) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            low,
        ),
        u(
            "storeBid",
            "INSERT INTO bids (bid_id, bidder, bid_item, bid, qty, bid_date) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            moderate,  # a bid record
        ),
        u(
            "updateItemBids",
            "UPDATE items SET max_bid = ?, nb_of_bids = ? WHERE item_id = ?",
            low,
        ),
        u(
            "storeComment",
            "INSERT INTO comments (comment_id, from_user, to_user, "
            "comment_item, c_rating, c_text) VALUES (?, ?, ?, ?, ?, ?)",
            moderate,
        ),
        u(
            "updateUserRating",
            "UPDATE users SET rating = ? WHERE u_id = ?",
            moderate,
        ),
    ]


def _registry(schema: Schema) -> TemplateRegistry:
    return TemplateRegistry(
        schema, queries=_query_templates(), updates=_update_templates()
    )


class _AuctionSampler(PageSampler):
    """RUBiS bidding mix (browse-heavy with ~15% write interactions)."""

    def __init__(self, registry, database: Database, scale: float, rng):
        self.user_count = max(30, int(200 * scale))
        self.item_count = max(50, int(300 * scale))
        bid_count = max(60, int(400 * scale))
        comment_count = max(20, int(100 * scale))
        _load_data(self, database, bid_count, comment_count, rng)
        self.zipf = ZipfSampler(self.item_count)
        pages = [
            PageClass("browse-categories", 0.12, _browse_categories_page),
            PageClass("browse-items", 0.26, _browse_items_page),
            PageClass("view-item", 0.28, _view_item_page),
            PageClass("view-user", 0.10, _view_user_page),
            PageClass("bid", 0.12, _bid_page),
            PageClass("sell", 0.05, _sell_page),
            PageClass("comment", 0.04, _comment_page),
            PageClass("register", 0.03, _register_page),
        ]
        super().__init__(registry, pages)

    def popular_item(self, rng) -> int:
        return self.zipf.sample_rank(rng)

    def random_user(self, rng) -> int:
        return rng.randint(1, self.user_count)

    def next_user(self) -> int:
        self.user_count += 1
        return self.user_count

    def next_item(self) -> int:
        self._next_item += 1
        return self._next_item

    def next_bid(self) -> int:
        self._next_bid += 1
        return self._next_bid

    def next_comment(self) -> int:
        self._next_comment += 1
        return self._next_comment


def _load_data(
    sampler: _AuctionSampler, database: Database, bid_count, comment_count, rng
) -> None:
    database.load(
        "regions", [(i, f"region{i}") for i in range(1, REGION_COUNT + 1)]
    )
    database.load(
        "categories", [(i, f"category{i}") for i in range(1, CATEGORY_COUNT + 1)]
    )
    database.load(
        "users",
        [
            (
                i,
                f"bidder{i}",
                f"pw{i}",
                rng.randint(-5, 20),
                round(rng.random() * 500, 2),
                1 + i % REGION_COUNT,
            )
            for i in range(1, sampler.user_count + 1)
        ],
    )
    database.load(
        "items",
        [
            (
                i,
                f"item {i}",
                datagen.random_text(rng, 5),
                round(1 + rng.random() * 100, 2),
                round(1 + rng.random() * 200, 2),
                rng.randint(0, 30),
                datagen.random_date_int(rng),
                1 + i % sampler.user_count,
                1 + i % CATEGORY_COUNT,
            )
            for i in range(1, sampler.item_count + 1)
        ],
    )
    zipf = ZipfSampler(sampler.item_count)
    database.load(
        "bids",
        [
            (
                i,
                1 + rng.randrange(sampler.user_count),
                zipf.sample_rank(rng),
                round(1 + rng.random() * 200, 2),
                1,
                datagen.random_date_int(rng),
            )
            for i in range(1, bid_count + 1)
        ],
    )
    database.load(
        "comments",
        [
            (
                i,
                1 + rng.randrange(sampler.user_count),
                1 + rng.randrange(sampler.user_count),
                1 + rng.randrange(sampler.item_count),
                rng.randint(-1, 5),
                datagen.random_text(rng, 8),
            )
            for i in range(1, comment_count + 1)
        ],
    )
    sampler._next_item = sampler.item_count
    sampler._next_bid = bid_count
    sampler._next_comment = comment_count


# -- page builders -------------------------------------------------------------------


def _browse_categories_page(s: _AuctionSampler, rng) -> list:
    return [s.query("getCategories"), s.query("getRegions")]


def _browse_items_page(s: _AuctionSampler, rng) -> list:
    category = rng.randint(1, CATEGORY_COUNT)
    if rng.random() < 0.7:
        return [
            s.query("getCategoryName", category),
            s.query("searchItemsByCategory", category),
        ]
    region = rng.randint(1, REGION_COUNT)
    return [
        s.query("getRegionName", region),
        s.query("searchItemsByRegion", region, category),
    ]


def _view_item_page(s: _AuctionSampler, rng) -> list:
    item = s.popular_item(rng)
    return [
        s.query("getItem", item),
        s.query("getMaxBid", item),
        s.query("getBidCount", item),
        s.query("getBidHistory", item),
    ]


def _view_user_page(s: _AuctionSampler, rng) -> list:
    user = s.random_user(rng)
    return [
        s.query("getUserInfo", user),
        s.query("getUserComments", user),
        s.query("getItemsSoldByUser", user),
    ]


def _bid_page(s: _AuctionSampler, rng) -> list:
    item = s.popular_item(rng)
    bidder = s.random_user(rng)
    amount = round(1 + rng.random() * 300, 2)
    return [
        s.query("getItem", item),
        s.query("getMaxBid", item),
        s.update(
            "storeBid",
            s.next_bid(),
            bidder,
            item,
            amount,
            1,
            datagen.random_date_int(rng),
        ),
        s.update("updateItemBids", amount, rng.randint(1, 40), item),
    ]


def _sell_page(s: _AuctionSampler, rng) -> list:
    seller = s.random_user(rng)
    item = s.next_item()
    return [
        s.query("getCategories"),
        s.update(
            "registerItem",
            item,
            f"item {item}",
            datagen.random_text(rng, 5),
            round(1 + rng.random() * 100, 2),
            0.0,
            0,
            datagen.random_date_int(rng),
            seller,
            rng.randint(1, CATEGORY_COUNT),
        ),
    ]


def _comment_page(s: _AuctionSampler, rng) -> list:
    target = s.random_user(rng)
    rating = rng.randint(-1, 5)
    return [
        s.query("getUserInfo", target),
        s.update(
            "storeComment",
            s.next_comment(),
            s.random_user(rng),
            target,
            s.popular_item(rng),
            rating,
            datagen.random_text(rng, 8),
        ),
        s.update("updateUserRating", rng.randint(-5, 25), target),
    ]


def _register_page(s: _AuctionSampler, rng) -> list:
    user = s.next_user()
    return [
        s.query("getRegions"),
        s.update(
            "registerUser",
            user,
            f"bidder{user}",
            f"pw{user}",
            0,
            0.0,
            rng.randint(1, REGION_COUNT),
        ),
        s.query("getAuthUser", f"bidder{user}"),
    ]


def auction_spec() -> AppSpec:
    """The RUBiS-style auction application."""
    schema = auction_schema()
    return AppSpec(
        name="auction", registry=_registry(schema), _factory=_AuctionSampler
    )
